#!/usr/bin/env python3
"""Beyond the paper's evaluation: the Sec. 4.5 generalization and two
extensions.

1. **Capture** — the paper's takeaway says remote memory near the data
   *producer* works like the DRFB near the consumer. We run a camera
   capture + viewfinder session both ways.
2. **DSC-assisted bursting** — a fixed-rate link compressor halves the
   burst and unlocks high-refresh modes on a stock eDP 1.4 link (with a
   real line codec demo).
3. **Battery framing** — what the headline reductions mean in hours on
   the evaluated tablet's 45 Wh battery.

Run:  python examples/generalization_study.py
"""

import numpy as np

from repro.analysis.battery import compare_battery_life
from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core import BurstLinkScheme
from repro.core.capture import (
    BurstCaptureScheme,
    ConventionalCaptureScheme,
)
from repro.display.dsc import DscConfig, DscLineCodec, with_dsc
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PlatformExtras, PowerModel
from repro.video.frames import FrameType
from repro.video.source import AnalyticContentModel, FrameDescriptor


def capture_study() -> None:
    model = PowerModel(
        extras=PlatformExtras(streaming=False, local_playback=True)
    )
    raw = float(FHD.frame_bytes())
    frames = [
        FrameDescriptor(i, FrameType.I, raw / 30.0, raw)
        for i in range(24)
    ]
    conventional = model.report(
        FrameWindowSimulator(
            skylake_tablet(FHD), ConventionalCaptureScheme()
        ).run(frames, 30.0)
    )
    burst = model.report(
        FrameWindowSimulator(
            skylake_tablet(FHD).with_drfb(), BurstCaptureScheme()
        ).run(frames, 30.0)
    )
    saving = 1 - burst.average_power_mw / conventional.average_power_mw
    print("1. Capture generalization (FHD 30FPS record + viewfinder):")
    print(f"   conventional {conventional.average_power_mw:.0f} mW -> "
          f"producer-side staging {burst.average_power_mw:.0f} mW "
          f"(-{saving:.0%})")
    print(f"   raw sensor frames through DRAM: "
          f"{conventional.dram_read_bytes / 2**30:.2f} GiB read vs "
          f"{burst.dram_read_bytes / 2**30:.3f} GiB with the chain")
    print()


def dsc_study() -> None:
    # The functional line codec on a synthetic scan line.
    codec = DscLineCodec(DscConfig(ratio=2.0))
    x = np.arange(384)
    line = np.stack(
        [x % 240, (x // 2) % 240, 240 - x % 240], axis=-1
    ).astype(np.uint8)
    encoded = codec.encode_line(line)
    decoded = codec.decode_line(encoded, len(line))
    error = np.abs(decoded.astype(int) - line.astype(int)).max()
    print("2. DSC extension:")
    print(f"   line codec: {line.nbytes} B -> {len(encoded)} B "
          f"(budget {codec.budget(len(line))}), max error {error}")

    # ...and its system-level effect on BurstLink at 4K60.
    model = PowerModel()
    frames = AnalyticContentModel().frames(UHD_4K, 20)
    for label, config in (
        ("stock eDP 1.4 ", skylake_tablet(UHD_4K).with_drfb()),
        ("+DSC 2:1      ", with_dsc(skylake_tablet(UHD_4K)).with_drfb()),
    ):
        run = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 60.0
        )
        report = model.report(run)
        print(f"   BurstLink 4K60, {label}: "
              f"{report.average_power_mw:.0f} mW")
    print()


def battery_study() -> None:
    model = PowerModel()
    frames = AnalyticContentModel().frames(UHD_4K, 24)
    base = model.report(
        FrameWindowSimulator(
            skylake_tablet(UHD_4K), ConventionalScheme()
        ).run(frames, 60.0)
    )
    burst = model.report(
        FrameWindowSimulator(
            skylake_tablet(UHD_4K).with_drfb(), BurstLinkScheme()
        ).run(frames, 60.0)
    )
    comparison = compare_battery_life(base, burst)
    print("3. Battery framing (4K60 streaming, 45 Wh tablet):")
    print(f"   {comparison.summary()}")


def main() -> None:
    capture_study()
    dsc_study()
    battery_study()


if __name__ == "__main__":
    main()
