#!/usr/bin/env python3
"""Functional datapath demo: a real frame travels the whole pipeline.

Everything here moves actual bytes: a synthetic clip is encoded with the
macroblock codec (I/P/B frames, motion vectors, Exp-Golomb entropy
coding), buffered through the DRAM jitter buffer, decoded by the VD IP —
whose destination selector routes the output — pushed through the
interconnect's P2P path into the display controller, burst over the eDP
link into the panel's DRFB, and scanned out by the pixel formatter.

Run:  python examples/codec_pipeline_demo.py
"""

import numpy as np

from repro.config import PanelConfig, Resolution
from repro.display import DisplayPanel, EdpLink
from repro.soc.interconnect import Interconnect
from repro.soc.registers import RegisterFile
from repro.units import gb_per_s, to_ms
from repro.video import Codec, CodecConfig, GopStructure, VideoDecoderIP
from repro.video.frames import DecodedFrame


def make_clip(width: int, height: int, count: int) -> list[np.ndarray]:
    """A moving-gradient clip with a drifting bright blob."""
    frames = []
    ys, xs = np.mgrid[0:height, 0:width]
    for t in range(count):
        base = (xs * 2 + ys * 3 + 7 * t) % 256
        blob = 90 * np.exp(
            -(((xs - 20 - 3 * t) ** 2 + (ys - 24) ** 2) / 120.0)
        )
        frame = np.stack(
            [base, 255 - base, (base + blob) % 256], axis=-1
        ) + blob[..., None] * 0.3
        frames.append(np.clip(frame, 0, 255).astype(np.uint8))
    return frames


def main() -> None:
    resolution = Resolution(96, 64, "demo")
    clip = make_clip(resolution.width, resolution.height, 8)

    # Encode with an IPBP GOP.
    codec = Codec(CodecConfig(qstep=10.0, gop=GopStructure("IPBP")))
    encoded = codec.encode_sequence(clip)
    total_encoded = sum(e.size_bytes for e in encoded)
    print(f"Encoded {len(encoded)} frames: {total_encoded} bytes "
          f"({clip[0].nbytes * len(clip) / total_encoded:.1f}x "
          f"compression)")
    for frame in encoded:
        print(f"  frame {frame.index}: {frame.frame_type.value} "
              f"{frame.size_bytes:5d} B")

    # The hardware assembly: fabric, VD with bypass-eligible registers,
    # eDP link, and a DRFB panel.
    fabric = Interconnect()
    vd_port = fabric.attach("vd", gb_per_s(12.0))
    dc_port = fabric.attach("dc", gb_per_s(6.0))
    registers = RegisterFile.full_screen_video()
    decoder = VideoDecoderIP(codec=codec, registers=registers)
    panel = DisplayPanel(
        PanelConfig(resolution=resolution, remote_buffers=2)
    )
    link = EdpLink()

    # Decode in coding order (anchors before the B frames that
    # bi-predict from them), then display in presentation order through
    # P2P -> eDP -> DRFB -> scan-out.
    from repro.soc.interconnect import P2PEngine
    from repro.video.frames import FrameType

    decoded: dict[int, DecodedFrame] = {}
    anchors: list[int] = []
    for enc in encoded:
        if enc.frame_type is FrameType.B:
            continue
        past = decoded[anchors[-1]].pixels if anchors else None
        decoded[enc.index] = decoder.decode(enc, past=past)
        anchors.append(enc.index)
    for enc in encoded:
        if enc.frame_type is not FrameType.B:
            continue
        past_anchor = max(a for a in anchors if a < enc.index)
        future_anchor = min(a for a in anchors if a > enc.index)
        decoded[enc.index] = decoder.decode(
            enc,
            past=decoded[past_anchor].pixels,
            future=decoded[future_anchor].pixels,
        )

    p2p = P2PEngine(vd_port)
    for enc in encoded:
        frame = decoded[enc.index]
        p2p.send(dc_port, frame.size_bytes)  # Frame Buffer Bypass
        transfer = link.transmit(frame.size_bytes, link.config.max_bandwidth)
        panel.receive_frame(enc.index, frame.size_bytes)
        panel.swap_buffers()
        scanned = panel.refresh()
        print(f"  displayed frame {enc.index}: burst "
              f"{to_ms(transfer.duration):.3f} ms, scanned "
              f"{scanned:.0f} B from the DRFB")

    # Quality + datapath accounting.
    worst = min(
        decoded[e.index].psnr(
            DecodedFrame(e.index, e.frame_type, clip[e.index])
        )
        for e in encoded
    )
    print(f"\nWorst-frame PSNR: {worst:.1f} dB")
    print(f"DRAM bytes via fabric: {fabric.dram_read_bytes:.0f} read / "
          f"{fabric.dram_write_bytes:.0f} written "
          f"(bypass moved {fabric.p2p_bytes:.0f} B peer-to-peer)")
    print(f"Decoder routed {decoder.bytes_to_dc:.0f} B to the DC and "
          f"{decoder.bytes_to_dram:.0f} B to DRAM")
    print(f"Panel DRFB swaps: {panel.remote_buffer.swaps}, "
          f"refreshes: {panel.refreshes}")


if __name__ == "__main__":
    main()
