#!/usr/bin/env python3
"""Windowed video and the fallback policy (paper Sec. 4.1).

Shows three things:

1. the hardware's scheme selection from register state — full-screen
   video engages BurstLink, a video-in-a-browser engages the windowed
   PSR2 path, a busy desktop falls back to conventional composition;
2. the two-stage windowed playback: composition windows first, then
   PSR2 selective updates once the GUI goes static — with the energy
   saved in steady state;
3. a fallback event mid-session (the user touches the screen).

Run:  python examples/windowed_video.py
"""

from repro import (
    ConventionalScheme,
    FHD,
    FrameWindowSimulator,
    PowerModel,
    skylake_tablet,
)
from repro.core import WindowedVideoScheme, select_scheme
from repro.soc.registers import RegisterFile
from repro.video.source import AnalyticContentModel


def selection_demo() -> None:
    print("Scheme selection from DC/VD register state:")
    for label, registers in (
        ("full-screen video", RegisterFile.full_screen_video()),
        ("video in a browser", RegisterFile.windowed_video()),
        ("busy desktop", RegisterFile.multi_plane_desktop()),
    ):
        scheme = select_scheme(registers)
        print(f"  {label:20s} -> {scheme.name}")
    # A PSR2 exit (user input) forces the conventional path.
    touched = RegisterFile.windowed_video()
    touched.psr2_exited = True
    print(f"  {'after user input':20s} -> {select_scheme(touched).name}")
    print()


def windowed_energy_demo() -> None:
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, 60)
    model = PowerModel()

    conventional = model.report(
        FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, video_fps=30.0
        )
    )
    windowed = FrameWindowSimulator(
        config,
        WindowedVideoScheme(video_fraction=0.25, composition_windows=12),
    ).run(frames, video_fps=30.0)
    windowed_report = model.report(windowed)

    print("Windowed playback (25% of the screen, browser chrome "
          "static after 12 windows):")
    print(f"  conventional composition: "
          f"{conventional.average_power_mw:.0f} mW")
    print(f"  windowed PSR2 path:       "
          f"{windowed_report.average_power_mw:.0f} mW "
          f"(-{(1 - windowed_report.average_power_mw / conventional.average_power_mw) * 100:.1f}%)")
    print(f"  PSR-assisted windows: {windowed.stats.psr_windows} of "
          f"{windowed.stats.windows}")
    print()


def main() -> None:
    selection_demo()
    windowed_energy_demo()
    print(
        "Takeaway: BurstLink engages opportunistically from state the "
        "hardware already tracks, and degrades gracefully to the "
        "conventional path the moment composition is actually needed."
    )


if __name__ == "__main__":
    main()
