#!/usr/bin/env python3
"""Planar streaming study: the paper's Figs. 9, 10, and 12 in one run.

Sweeps display resolution (FHD -> 5K) at 30 and 60 FPS, comparing the
conventional pipeline against Frame Bursting alone, Frame Buffer Bypass
alone, and full BurstLink, and prints the energy-reduction series plus
the DRAM/Display/Others breakdown shift.

Run:  python examples/planar_streaming_study.py
"""

from repro.analysis import (
    fig09_planar_reduction_30fps,
    fig10_energy_breakdown_comparison,
    fig12_planar_reduction_60fps,
    format_table,
)


def print_reduction_sweep(title: str, result) -> None:
    rows = []
    for resolution, reductions in result.reductions.items():
        rows.append(
            (
                resolution,
                f"{result.baseline_power_mw[resolution]:.0f}",
                f"-{reductions['burst'] * 100:.1f}%",
                f"-{reductions['bypass'] * 100:.1f}%",
                f"-{reductions['burstlink'] * 100:.1f}%",
            )
        )
    print(title)
    print(
        format_table(
            ("Display", "Baseline (mW)", "Burst", "Bypass", "BurstLink"),
            rows,
        )
    )
    print()


def print_breakdown(result) -> None:
    rows = []
    for resolution in result.baseline:
        base = result.baseline[resolution]
        burst = result.burstlink[resolution]
        rows.append(
            (
                resolution,
                f"{base.dram_fraction * 100:.0f}%",
                f"{base.display_fraction * 100:.0f}%",
                f"{base.others_fraction * 100:.0f}%",
                f"{result.dram_reduction_factor(resolution):.1f}x",
                f"{result.others_reduction_factor(resolution):.1f}x",
            )
        )
    print("Baseline energy shares and BurstLink reduction factors "
          "(paper Fig. 10):")
    print(
        format_table(
            (
                "Display", "DRAM", "Panel", "Others",
                "DRAM cut", "Others cut",
            ),
            rows,
        )
    )
    print()


def main() -> None:
    print_reduction_sweep(
        "Energy reduction, 30 FPS videos (paper Fig. 9):",
        fig09_planar_reduction_30fps(),
    )
    print_reduction_sweep(
        "Energy reduction, 60 FPS videos (paper Fig. 12):",
        fig12_planar_reduction_60fps(),
    )
    print_breakdown(fig10_energy_breakdown_comparison())
    print(
        "Takeaway: the DRAM round trip and the idle-state headroom both "
        "grow with resolution, so BurstLink's reduction grows from FHD "
        "to 5K — the paper's core scaling argument."
    )


if __name__ == "__main__":
    main()
