#!/usr/bin/env python3
"""A whole usage session with dynamic scheme switching.

The paper's Sec. 4.1 describes BurstLink as opportunistic: it engages
when the VD/DC registers allow and falls back the moment composition is
actually needed. This example scripts a realistic five-phase session —
steady playback, a touch, recovery, a notification, recovery — and lets
the hardware's own selector pick the scheme at every boundary.

Run:  python examples/session_scenario.py
"""

from repro.analysis.visualize import render_residency_bars
from repro.config import FHD, skylake_tablet
from repro.workloads.scenario import streaming_session


def main() -> None:
    scenario = streaming_session(skylake_tablet(FHD))
    result = scenario.play()

    print("Five-phase FHD streaming session "
          "(scheme chosen by the hardware per phase):\n")
    print(result.summary())
    print()
    print("Whole-session C-state residency:")
    print(render_residency_bars(result.timeline))
    print()

    steady = result.outcomes[0].report.average_power_mw
    session = result.average_power_mw
    print(
        f"Interruptions cost "
        f"{(session / steady - 1) * 100:.1f}% over steady-state "
        f"BurstLink — and the fallback path kept every frame correct."
    )


if __name__ == "__main__":
    main()
