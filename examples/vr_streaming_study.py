#!/usr/bin/env python3
"""VR streaming study: the paper's Fig. 11 plus a look at the actual
projection path.

Part 1 reproduces Fig. 11a/b: BurstLink's energy reduction across the
five head-movement workloads and across per-eye panel resolutions.

Part 2 exercises the *functional* VR path end-to-end on a small frame:
a synthetic equirectangular sphere is built, a head trace is generated,
and the GPU model gnomonically projects the moving viewport — the same
projective transformation the energy model charges for.

Run:  python examples/vr_streaming_study.py
"""

import numpy as np

from repro.analysis import fig11a_vr_workloads, fig11b_vr_resolutions
from repro.analysis.report import render_reductions
from repro.config import Resolution
from repro.video.gpu import GpuIP, Viewport
from repro.workloads import VR_WORKLOADS, generate_head_trace


def energy_study() -> None:
    fig11a = fig11a_vr_workloads()
    print(
        render_reductions(
            "BurstLink reduction per VR workload (paper Fig. 11a, "
            "up to 33%):",
            fig11a.reductions,
        )
    )
    print()
    fig11b = fig11b_vr_resolutions()
    print(
        render_reductions(
            "Rhino reduction per per-eye resolution (paper Fig. 11b, "
            "decreasing):",
            fig11b.reductions,
        )
    )
    print()


def projection_demo() -> None:
    # A small synthetic sphere: longitude/latitude bands so the
    # projected viewport visibly changes with head pose.
    sphere_h, sphere_w = 180, 360
    lat = np.linspace(0, 255, sphere_h)[:, None]
    lon = np.linspace(0, 255, sphere_w)[None, :]
    sphere = np.stack(
        [
            np.broadcast_to(lon, (sphere_h, sphere_w)),
            np.broadcast_to(lat, (sphere_h, sphere_w)),
            np.broadcast_to((lon + lat) / 2, (sphere_h, sphere_w)),
        ],
        axis=-1,
    ).astype(np.uint8)

    trace = generate_head_trace(
        VR_WORKLOADS["Rollercoaster"].head, duration_s=1.0, sample_hz=10
    )
    gpu = GpuIP()
    viewport_resolution = Resolution(96, 96)
    print("Projecting the Rollercoaster head trace "
          f"(mean speed {trace.mean_speed:.0f} deg/s):")
    for i in (0, 4, 9):
        view = Viewport(
            yaw=float(trace.yaw[i]), pitch=float(trace.pitch[i])
        )
        frame = gpu.project(sphere, view, viewport_resolution)
        cost = gpu.projection_time(
            viewport_resolution.pixels,
            head_velocity_deg_s=float(trace.angular_speed[i]),
        )
        print(
            f"  t={trace.timestamps[i]:.1f}s yaw={view.yaw:7.1f} "
            f"pitch={view.pitch:6.1f}  mean pixel="
            f"{frame.mean():6.1f}  projection cost {cost * 1e6:.3f} us"
        )
    print(f"GPU projected {gpu.frames_projected} viewports, "
          f"{gpu.pixels_projected:.0f} pixels total")


def main() -> None:
    energy_study()
    projection_demo()


if __name__ == "__main__":
    main()
