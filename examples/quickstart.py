#!/usr/bin/env python3
"""Quickstart: how much energy does BurstLink save on a 4K stream?

Builds the paper's Skylake reference tablet, streams a synthetic 4K
60 FPS video under the conventional pipeline and under BurstLink, and
prints the Table 2-style per-C-state comparison plus the headline
energy reduction (the paper reports 41% for 4K 60 FPS planar video).

Run:  python examples/quickstart.py
"""

from repro import (
    BurstLinkScheme,
    ConventionalScheme,
    FrameWindowSimulator,
    PowerModel,
    UHD_4K,
    skylake_tablet,
)
from repro.analysis import render_cstate_table
from repro.core import HardwareCostModel
from repro.video.source import AnalyticContentModel


def main() -> None:
    config = skylake_tablet(UHD_4K, refresh_hz=60.0)
    frames = AnalyticContentModel().frames(UHD_4K, count=60)
    model = PowerModel()

    baseline_run = FrameWindowSimulator(
        config, ConventionalScheme()
    ).run(frames, video_fps=60.0)
    baseline = model.report(baseline_run)

    # BurstLink needs the DRFB-extended panel (the one hardware change).
    burstlink_run = FrameWindowSimulator(
        config.with_drfb(), BurstLinkScheme()
    ).run(frames, video_fps=60.0)
    burstlink = model.report(burstlink_run)

    print(
        render_cstate_table(
            "Conventional (PSR baseline), 4K 60FPS:",
            baseline.table2_rows(),
            baseline.average_power_mw,
        )
    )
    print()
    print(
        render_cstate_table(
            "BurstLink, 4K 60FPS:",
            burstlink.table2_rows(),
            burstlink.average_power_mw,
        )
    )
    saving = 1 - burstlink.average_power_mw / baseline.average_power_mw
    print()
    print(f"BurstLink energy reduction: {saving:.1%}")
    print(f"DRAM traffic: baseline "
          f"{baseline_run.timeline.dram_total_bytes / 2**30:.2f} GiB vs "
          f"BurstLink "
          f"{burstlink_run.timeline.dram_total_bytes / 2**30:.2f} GiB "
          f"over {baseline_run.duration:.2f}s of video")

    # What the DRFB costs (paper Sec. 4.4).
    cost = HardwareCostModel().report(config.panel)
    print()
    print(cost.summary())


if __name__ == "__main__":
    main()
