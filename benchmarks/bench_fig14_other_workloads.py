"""Fig. 14: BurstLink's techniques beyond full-screen streaming.

(a) Frame Buffer Bypassing on local high-resolution playback (paper:
>40% for 4K@144, 4K@120, 5K@60); (b) Frame Bursting on video
conferencing, video capture, casual gaming, and MobileMark at FHD, QHD,
and 4K (paper: ~27-30% at the tablet's native mode)."""

from repro.analysis.experiments import (
    fig14a_local_playback,
    fig14b_mobile_workloads,
)
from repro.analysis.report import format_table, render_reductions


def test_fig14a(run_once):
    result = run_once(fig14a_local_playback)
    print()
    print(render_reductions(
        "Local playback, Bypass only (paper: >40%):",
        result.reductions,
    ))
    assert all(r > 0.40 for r in result.reductions.values())


def test_fig14b(run_once):
    result = run_once(fig14b_mobile_workloads)
    workloads = list(next(iter(result.reductions.values())))
    rows = []
    for resolution, reductions in result.reductions.items():
        rows.append(
            (resolution,)
            + tuple(
                f"-{reductions[name] * 100:.1f}%" for name in workloads
            )
        )
    print()
    print(format_table(("Display",) + tuple(workloads), rows))
    print("(paper: ~27-30% per workload at the native mode)")
    assert all(r > 0.15 for r in result.reductions["FHD"].values())
