"""Fig. 10: energy breakdown into DRAM / Display / Others, baseline vs
BurstLink, per resolution.

Paper numbers: BurstLink cuts DRAM energy 3.8x at FHD and 5.7x at 5K
(our model, with almost no residual frame traffic, cuts deeper — see
EXPERIMENTS.md); Others shrink by a large factor at FHD."""

from repro.analysis.experiments import fig10_energy_breakdown_comparison
from repro.analysis.report import format_table


def test_fig10(run_once):
    result = run_once(fig10_energy_breakdown_comparison)
    rows = []
    for name in result.baseline:
        base = result.baseline[name]
        burst = result.burstlink[name]
        rows.append(
            (
                name,
                f"{base.dram_fraction * 100:.0f}%",
                f"{burst.dram_fraction * 100:.0f}%",
                f"{result.dram_reduction_factor(name):.1f}x",
                f"{result.others_reduction_factor(name):.1f}x",
            )
        )
    print()
    print(
        format_table(
            (
                "Display", "DRAM share (base)",
                "DRAM share (BL)", "DRAM cut", "Others cut",
            ),
            rows,
        )
    )
    assert result.dram_reduction_factor("5K") > (
        result.dram_reduction_factor("FHD")
    )
