"""Fig. 1: baseline energy breakdown (DRAM / Display / Others) while
streaming 30 FPS video at FHD, QHD, and 4K, normalised to the FHD total.

Paper shape: total energy grows with resolution; DRAM alone passes 30%
of system energy at 4K.
"""

from repro.analysis.experiments import fig01_energy_breakdown
from repro.analysis.report import format_table


def test_fig01(run_once):
    result = run_once(fig01_energy_breakdown)
    rows = []
    for name, (dram, display, others) in result.normalised.items():
        rows.append(
            (
                name,
                f"{dram * 100:.0f}%",
                f"{display * 100:.0f}%",
                f"{others * 100:.0f}%",
                f"{(dram + display + others) * 100:.0f}%",
                f"{result.dram_fraction(name) * 100:.0f}%",
            )
        )
    print()
    print(
        format_table(
            (
                "Display", "DRAM", "Panel", "Others",
                "Total (vs FHD)", "DRAM share",
            ),
            rows,
        )
    )
    assert result.dram_fraction("4K") > 0.27
