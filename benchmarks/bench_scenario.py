"""Session-level bench: the Sec. 4.1 opportunistic behaviour played out
over a five-phase usage script, with the hardware's selector switching
schemes at every boundary."""

from repro.config import FHD, skylake_tablet
from repro.workloads.scenario import streaming_session


def _play():
    return streaming_session(skylake_tablet(FHD)).play()


def test_streaming_session(run_once):
    result = run_once(_play)
    print()
    print(result.summary())
    # The selector must have bounced between burstlink and conventional.
    schemes = set(result.scheme_sequence())
    assert schemes == {"burstlink", "conventional"}
    # The session average sits between the steady and fallback phases.
    powers = [o.report.average_power_mw for o in result.outcomes]
    assert min(powers) < result.average_power_mw < max(powers)
