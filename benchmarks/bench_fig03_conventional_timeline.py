"""Fig. 3: package C-state timeline of the conventional pipeline for
(a) 30 FPS and (b) 60 FPS video on a 60 Hz panel.

Paper shape: C0 decode burst, then the C2/C8 fetch-drain oscillation;
the 30 FPS repeat window self-refreshes with the host parked (C8 in the
measured system)."""

from repro.analysis.experiments import fig03_conventional_timeline


def test_fig03(run_once):
    result = run_once(fig03_conventional_timeline)
    print()
    print(f"30 FPS window pair: {result.pattern_30fps}")
    print(f"60 FPS window pair: {result.pattern_60fps}")
    print("residencies @30FPS: " + "  ".join(
        f"{state.label}={fraction * 100:.1f}%"
        for state, fraction in sorted(
            result.residencies_30fps.items(),
            key=lambda kv: kv[0].depth,
        )
    ))
    assert result.pattern_30fps.startswith("C0 C2 C8")
