"""Fig. 11: VR streaming energy reduction.

(a) the five Corbillon-style workloads (paper: up to 33%, with
compute-dominant workloads benefitting least); (b) the Rhino workload
across per-eye resolutions (paper: benefit decreases as the per-eye
resolution grows, because compute energy becomes dominant)."""

from repro.analysis.experiments import (
    fig11a_vr_workloads,
    fig11b_vr_resolutions,
)
from repro.analysis.report import render_reductions


def test_fig11a(run_once):
    result = run_once(fig11a_vr_workloads)
    print()
    print(render_reductions(
        "VR workloads (paper: up to 33%):", result.reductions
    ))
    best = max(result.reductions.values())
    assert abs(best - 0.33) < 0.05
    assert min(
        result.reductions, key=result.reductions.get
    ) == "Rollercoaster"


def test_fig11b(run_once):
    result = run_once(fig11b_vr_resolutions)
    print()
    print(render_reductions(
        "Rhino vs per-eye resolution (paper: decreasing):",
        result.reductions,
    ))
    values = list(result.reductions.values())
    assert values[-1] < max(values)
