"""Calibration robustness bench: the tornado analysis over the power
library's constants — does the headline conclusion survive +/-20%
perturbation of every calibrated number?"""

from repro.analysis.report import format_table
from repro.analysis.sensitivity import sensitivity_analysis
from repro.config import FHD


def test_sensitivity_tornado(run_once):
    rows = run_once(sensitivity_analysis, FHD)
    table = [
        (
            row.parameter,
            f"{row.reduction_low * 100:.1f}%",
            f"{row.reduction_base * 100:.1f}%",
            f"{row.reduction_high * 100:.1f}%",
            f"{row.swing * 100:.1f}pp",
        )
        for row in rows
    ]
    print()
    print("BurstLink FHD30 reduction under +/-20% per-constant "
          "perturbation:")
    print(format_table(
        ("parameter", "-20%", "base", "+20%", "swing"), table
    ))
    assert all(row.conclusion_stable for row in rows)
    assert max(row.swing for row in rows) < 0.08
