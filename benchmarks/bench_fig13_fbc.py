"""Fig. 13: BurstLink against a baseline with frame-buffer compression
at 20/30/50% rates, 4K and 5K displays at 60 Hz.

Paper numbers: FBC-50 saves ~9% at 4K; BurstLink saves 40.6%."""

from repro.analysis.experiments import fig13_fbc_comparison
from repro.analysis.report import format_table


def test_fig13(run_once):
    result = run_once(fig13_fbc_comparison)
    rows = []
    for name, reductions in result.reductions.items():
        rows.append(
            (
                name,
                f"-{reductions['fbc-20'] * 100:.1f}%",
                f"-{reductions['fbc-30'] * 100:.1f}%",
                f"-{reductions['fbc-50'] * 100:.1f}%",
                f"-{reductions['burstlink'] * 100:.1f}%",
            )
        )
    print()
    print(
        format_table(
            (
                "Display", "FBC-20", "FBC-30",
                "FBC-50 (paper 9%@4K)", "BurstLink (paper 40.6%@4K)",
            ),
            rows,
        )
    )
    four_k = result.reductions["4K"]
    assert abs(four_k["fbc-50"] - 0.09) < 0.04
    assert four_k["burstlink"] > 0.40
