"""Design-choice ablation benches (the knobs DESIGN.md calls out):
DC buffer sizing, the decoder's latency-tolerant stretch target, and
the DRFB's cost-per-saved-watt economics."""

from repro.analysis.report import format_table
from repro.analysis.tradeoffs import (
    drfb_cost_benefit,
    sweep_dc_buffer,
    sweep_deadline_utilization,
)
from repro.config import FHD, PLANAR_RESOLUTIONS, UHD_4K


def test_dc_buffer_ablation(run_once):
    result = run_once(sweep_dc_buffer, UHD_4K)
    rows = [
        (
            p.label,
            f"{p.burstlink_mw:.0f}",
            f"{p.vd_wakes_per_frame:.1f}",
        )
        for p in result.points
    ]
    print()
    print("DC double-buffer size (BurstLink, 4K60):")
    print(format_table(
        ("Buffer", "Power (mW)", "VD wakes/frame"), rows
    ))
    print(f"spread: {result.spread_mw():.0f} mW — not a first-order "
          f"knob")
    assert result.spread_mw() < 0.05 * result.best().burstlink_mw


def test_deadline_utilization_ablation(run_once):
    result = run_once(sweep_deadline_utilization, FHD)
    rows = [
        (p.label, f"{p.burstlink_mw:.0f}") for p in result.points
    ]
    print()
    print("VD stretch target (BurstLink, FHD30):")
    print(format_table(("Utilization", "Power (mW)"), rows))
    print(f"best: {result.best().label}")
    assert len(result.points) == 5


def test_drfb_economics(run_once):
    results = run_once(drfb_cost_benefit, PLANAR_RESOLUTIONS)
    rows = [
        (
            r.resolution,
            f"${r.drfb_usd:.3f}",
            f"{r.saved_mw:.0f}",
            f"{r.cents_per_saved_watt:.1f} c/W",
        )
        for r in results
    ]
    print()
    print("DRFB cost vs BurstLink savings (Sec. 4.4 economics):")
    print(format_table(
        ("Display", "DRFB BOM", "Saved (mW)", "Cost-effectiveness"),
        rows,
    ))
    assert all(r.cents_per_saved_watt < 100 for r in results)
