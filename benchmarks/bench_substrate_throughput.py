"""Substrate micro-benchmarks: the functional codec and the frame-window
simulator themselves (how fast the reproduction machinery runs, not a
paper exhibit).

The simulator benches run with memoization disabled — they time the raw
simulator, not a cache load.  Set ``REPRO_BENCH_QUICK=1`` for the CI
smoke configuration (shorter simulated runs, same code paths).
"""

import os

import numpy as np

from repro.analysis.runner import cache_disabled
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.video import Codec, CodecConfig
from repro.video.frames import FrameType
from repro.video.source import AnalyticContentModel

#: Frames per simulated run; CI smoke mode trades precision for speed.
_SIM_FRAMES = 24 if os.environ.get("REPRO_BENCH_QUICK") else 120


def _test_frame(size=96):
    ys, xs = np.mgrid[0:size, 0:size]
    base = (xs * 3 + ys * 2) % 256
    return np.stack(
        [base, 255 - base, base // 2], axis=-1
    ).astype(np.uint8)


def test_codec_encode_throughput(benchmark):
    codec = Codec(CodecConfig(qstep=12.0))
    frame = _test_frame()

    encoded, _ = benchmark(
        codec.encode_frame, 0, frame, FrameType.I
    )
    pixels = frame.shape[0] * frame.shape[1]
    print(f"\nencoded {pixels} px -> {encoded.size_bytes} B")


def test_codec_decode_throughput(benchmark):
    codec = Codec(CodecConfig(qstep=12.0))
    encoded, _ = codec.encode_frame(0, _test_frame(), FrameType.I)

    decoded = benchmark(codec.decode_frame, encoded)
    print(f"\ndecoded to {decoded.size_bytes} B")


def test_simulator_throughput_baseline(benchmark):
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, _SIM_FRAMES)

    def run():
        with cache_disabled():
            return FrameWindowSimulator(
                config, ConventionalScheme()
            ).run(frames, 60.0)

    result = benchmark(run)
    rate = result.stats.windows / benchmark.stats["mean"]
    print(f"\n{result.stats.windows} windows simulated "
          f"({rate:,.0f} windows/s)")


def test_simulator_throughput_burstlink(benchmark):
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, _SIM_FRAMES)

    def run():
        with cache_disabled():
            return FrameWindowSimulator(
                config, BurstLinkScheme()
            ).run(frames, 60.0)

    result = benchmark(run)
    print(f"\n{result.stats.windows} windows simulated")


def test_simulator_scalar_engine(benchmark):
    """The scalar window loop, pinned — the batch engine's baseline."""
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, _SIM_FRAMES)

    def run():
        with cache_disabled():
            return FrameWindowSimulator(config, BurstLinkScheme()).run(
                frames, 60.0, retain="summary", engine="scalar"
            )

    result = benchmark(run)
    rate = result.stats.windows / benchmark.stats["mean"]
    print(f"\n{result.stats.windows} windows simulated "
          f"({rate:,.0f} windows/s, scalar engine)")


def test_simulator_batch_engine(benchmark):
    """The vectorized batch engine on the same run as the scalar bench
    above — the before/after pair behind the README table."""
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, _SIM_FRAMES)

    def run():
        with cache_disabled():
            return FrameWindowSimulator(config, BurstLinkScheme()).run(
                frames, 60.0, retain="summary", engine="batch"
            )

    result = benchmark(run)
    rate = result.stats.windows / benchmark.stats["mean"]
    print(f"\n{result.stats.windows} windows simulated "
          f"({rate:,.0f} windows/s, batch engine)")


def test_simulator_batch_engine_standby(benchmark):
    """The batch engine's best case: a repeating ambient frame where
    nearly every window replays one cached plan."""
    from repro.core.burstlink import BurstLinkScheme as _BL
    from repro.workloads.standby import (
        AmbientStandbyWorkload,
        ambient_standby_run,
    )

    workload = AmbientStandbyWorkload(
        duration_s=15.0 if os.environ.get("REPRO_BENCH_QUICK") else 60.0
    )

    def run():
        with cache_disabled():
            return ambient_standby_run(workload, _BL())

    result = benchmark(run)
    rate = result.stats.windows / benchmark.stats["mean"]
    print(f"\n{result.stats.windows} windows simulated "
          f"({rate:,.0f} windows/s, ambient standby)")
