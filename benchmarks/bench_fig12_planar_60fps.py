"""Fig. 12: the Fig. 9 sweep for 60 FPS videos.

Paper numbers: BurstLink reduces energy by 46% at FHD and 47% at 5K;
every point beats its 30 FPS counterpart (Sec. 6.3)."""

from repro.analysis.experiments import (
    fig09_planar_reduction_30fps,
    fig12_planar_reduction_60fps,
)
from repro.analysis.report import format_table


def test_fig12(run_once):
    result = run_once(fig12_planar_reduction_60fps)
    thirty = fig09_planar_reduction_30fps()
    rows = []
    for name, reductions in result.reductions.items():
        rows.append(
            (
                name,
                f"{result.baseline_power_mw[name]:.0f}",
                f"-{reductions['burst'] * 100:.1f}%",
                f"-{reductions['bypass'] * 100:.1f}%",
                f"-{reductions['burstlink'] * 100:.1f}%",
                f"-{thirty.reductions[name]['burstlink'] * 100:.1f}%",
            )
        )
    print()
    print(
        format_table(
            (
                "Display", "Baseline mW", "Burst", "Bypass",
                "BurstLink@60", "BurstLink@30",
            ),
            rows,
        )
    )
    for name in result.reductions:
        assert (
            result.reductions[name]["burstlink"]
            > thirty.reductions[name]["burstlink"]
        )
