"""Ablation sweeps beyond the paper's fixed points (DESIGN.md calls
these out): BurstLink's benefit vs eDP link generation and vs panel
refresh rate, plus the model-validation summary.

Paper claims exercised: benefits grow with display-interface bandwidth
headroom (the 4K eDP sweep) and with refresh rate (absolute savings —
the relative number dilutes slightly against the pricier high-refresh
panel, a model finding recorded in EXPERIMENTS.md)."""

from repro.analysis.report import render_reductions
from repro.analysis.sweep import (
    sweep_edp_bandwidth,
    sweep_refresh_rate,
    sweep_vrr,
)
from repro.config import FHD, QHD, UHD_4K
from repro.power.validation import validate_against_paper


def test_edp_bandwidth_sweep(run_once):
    result = run_once(sweep_edp_bandwidth, UHD_4K)
    print()
    print(render_reductions(
        "BurstLink reduction vs eDP link (4K 60FPS):",
        result.reductions(),
    ))
    assert result.is_monotonic_increasing(tolerance=0.002)


def test_refresh_rate_sweep(run_once):
    result = run_once(sweep_refresh_rate, QHD)
    print()
    print(render_reductions(
        "BurstLink reduction vs refresh rate (QHD 30FPS):",
        result.reductions(),
    ))
    savings = [p.baseline_mw - p.burstlink_mw for p in result.points]
    print("absolute savings (mW): "
          + "  ".join(f"{s:.0f}" for s in savings))
    assert savings[-1] > savings[0]


def test_vrr_sweep(run_once):
    result = run_once(sweep_vrr, FHD)
    print()
    print("VRR (refresh matched to content) vs fixed 60 Hz, both "
          "BurstLink:")
    for point in result.points:
        print(f"  {point.label:16s} fixed {point.baseline_mw:.0f} mW "
              f"-> VRR {point.burstlink_mw:.0f} mW "
              f"({point.reduction * 100:+.1f}%)")
    print("  finding: VRR is energy-neutral under BurstLink — repeat "
          "windows were already C9-deep")
    assert all(abs(p.reduction) < 0.03 for p in result.points)


def test_model_validation(run_once):
    result = run_once(validate_against_paper)
    print()
    print(result.summary())
    assert result.mean_accuracy >= 0.94
