"""Table 2: per-C-state power and residency, baseline vs BurstLink,
FHD 30 FPS on a 60 Hz panel.

Paper rows: baseline AvgP 2162 mW (C0 9% / C2 11% / C8 80%); BurstLink
AvgP 1274 mW (C0 2% / C7 19% / C9 79%) — a >40% average-power cut.
"""

from repro.analysis.experiments import table2_power_comparison
from repro.analysis.report import render_cstate_table


def test_table2(run_once):
    result = run_once(table2_power_comparison)
    print()
    print(
        render_cstate_table(
            "Baseline (paper AvgP 2162 mW):",
            result.baseline_rows,
            result.baseline_avg_mw,
        )
    )
    print()
    print(
        render_cstate_table(
            "BurstLink (paper AvgP 1274 mW):",
            result.burstlink_rows,
            result.burstlink_avg_mw,
        )
    )
    print(f"\nreduction: {result.reduction:.1%} "
          f"(paper: >40%)")
    assert result.reduction > 0.38
