"""Benchmark harness configuration.

Each bench module regenerates one of the paper's tables/figures through
:mod:`repro.analysis.experiments` and prints the same rows/series the
paper reports (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them).  Timing uses two measured rounds per experiment — these are
throughput benches for the *regeneration*, not statistical micro
benchmarks.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration function under the benchmark with a bounded
    round count and hand back its result for row printing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=2,
            iterations=1, warmup_rounds=0,
        )

    return runner
