"""Benchmark harness configuration.

Each bench module regenerates one of the paper's tables/figures through
:mod:`repro.analysis.experiments` and prints the same rows/series the
paper reports (run with ``pytest benchmarks/ --benchmark-only -s`` to
see them).  Timing uses two measured rounds per experiment — these are
throughput benches for the *regeneration*, not statistical micro
benchmarks.

Importing :mod:`repro.analysis.runner` here activates the simulation
cache for the whole suite, so the regeneration benches time the engine
as shipped (warm after round one).  Substrate micro-benchmarks that
must time the raw simulator opt out via
:func:`repro.analysis.runner.cache_disabled`.
"""

from __future__ import annotations

import pytest

import repro.analysis.runner  # noqa: F401  (installs the default cache)


@pytest.fixture
def run_once(benchmark):
    """Run a regeneration function under the benchmark with a bounded
    round count and hand back its result for row printing."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=2,
            iterations=1, warmup_rounds=0,
        )

    return runner
