"""Fig. 9: total system energy reduction of Frame Bursting, Frame
Buffer Bypassing, and full BurstLink for 30 FPS videos, FHD -> 5K.

Paper numbers: at FHD, burst 23% / bypass 31% / BurstLink 37%;
BurstLink reaches ~42% at 5K."""

from repro.analysis.experiments import fig09_planar_reduction_30fps
from repro.analysis.report import format_table

PAPER = {"FHD": {"burst": 0.23, "bypass": 0.31, "burstlink": 0.37}}


def test_fig09(run_once):
    result = run_once(fig09_planar_reduction_30fps)
    rows = []
    for name, reductions in result.reductions.items():
        paper = PAPER.get(name, {})
        rows.append(
            (
                name,
                f"{result.baseline_power_mw[name]:.0f}",
                f"-{reductions['burst'] * 100:.1f}%"
                + (f" ({paper['burst']:.0%})" if paper else ""),
                f"-{reductions['bypass'] * 100:.1f}%"
                + (f" ({paper['bypass']:.0%})" if paper else ""),
                f"-{reductions['burstlink'] * 100:.1f}%"
                + (f" ({paper['burstlink']:.0%})" if paper else ""),
            )
        )
    print()
    print(
        format_table(
            (
                "Display", "Baseline mW", "Burst (paper)",
                "Bypass (paper)", "BurstLink (paper)",
            ),
            rows,
        )
    )
    fhd = result.reductions["FHD"]
    assert abs(fhd["burstlink"] - 0.37) < 0.06
