"""Throughput of the statistics pipeline's hot paths.

The replication engine re-simulates exhibits (covered by the per-figure
regeneration benches); everything *after* that — bootstrap resampling
per metric, interval merging, and spec/CSV emission — must stay cheap
enough to run over every metric of every exhibit on each ``repro stats
run``.  These micro-benches time those stages on representative input
sizes (a 16-exhibit replication produces on the order of a hundred
metrics at a handful of seeds each)."""

from repro.analysis.figures import (
    figure_csv,
    get_figure,
    merge_seed_records,
    vega_lite_spec,
)
from repro.stats import bootstrap_mean, estimate_metrics, stable_seed


def _samples(metrics: int = 100, seeds: int = 5) -> dict:
    return {
        f"bench.metric_{index}": [
            100.0 + index + 0.7 * seed for seed in range(seeds)
        ]
        for index in range(metrics)
    }


def test_bootstrap_mean_single_metric(benchmark):
    values = [100.0, 101.3, 99.2, 100.9, 98.7]
    estimate = benchmark(
        bootstrap_mean, values, seed=stable_seed("bench.single")
    )
    assert estimate.lo <= estimate.mean <= estimate.hi


def test_estimate_metrics_replication_sized(benchmark):
    samples = _samples(metrics=100, seeds=5)
    estimates = benchmark(estimate_metrics, samples)
    assert len(estimates) == 100
    print()
    print(
        f"  {len(samples)} metrics x 5 seeds, 2000 resamples each"
    )


def test_merge_seed_records_and_emit(benchmark):
    figure = get_figure("fig09")
    per_seed = [
        [
            {
                "resolution": res,
                "technique": tech,
                "value": 0.3 + 0.01 * seed,
            }
            for res in ("FHD", "QHD", "4K")
            for tech in ("bypass", "burst", "burstlink")
        ]
        for seed in range(5)
    ]

    def merge_and_emit():
        records = merge_seed_records(figure, per_seed)
        return figure_csv(figure, records), vega_lite_spec(
            figure, interval=True
        )

    csv_text, spec = benchmark(merge_and_emit)
    assert "value_lo" in csv_text.splitlines()[0]
    assert [layer["mark"]["type"] for layer in spec["layer"]] == [
        "bar", "errorbar",
    ]
