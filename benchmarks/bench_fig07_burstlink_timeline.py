"""Fig. 7: package C-state timeline under full BurstLink for 30/60 FPS
on a 60 Hz panel.

Paper shape: C0 orchestration, the C7/C7' decode-burst period, then C9
for the rest of the window; a 30 FPS repeat window drops straight into
C9 because the frame already sits in the DRFB."""

from repro.analysis.experiments import fig07_burstlink_timeline
from repro.soc.cstates import PackageCState


def test_fig07(run_once):
    result = run_once(fig07_burstlink_timeline)
    print()
    print(f"30 FPS window pair: {result.pattern_30fps}")
    print(f"60 FPS window pair: {result.pattern_60fps}")
    print(f"C9 residency @30FPS: "
          f"{result.residencies_30fps[PackageCState.C9] * 100:.1f}% "
          f"(paper Table 2: 79%)")
    assert result.residencies_30fps[PackageCState.C9] > 0.7
