"""Fig. 6: package C-state timeline under Frame Buffer Bypass for
30/60 FPS on a 60 Hz panel.

Paper shape: a short C0 orchestration slice, then the C7/C7' decode
interleave across the window (DRAM bypassed; the DC drains at the
pixel-update rate)."""

from repro.analysis.experiments import fig06_bypass_timeline


def test_fig06(run_once):
    result = run_once(fig06_bypass_timeline)
    print()
    print(f"30 FPS window pair: {result.pattern_30fps}")
    print(f"60 FPS window pair: {result.pattern_60fps}")
    assert "C7 C7'" in result.pattern_30fps
    assert "C2" not in result.pattern_60fps
