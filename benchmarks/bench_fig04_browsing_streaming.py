"""Fig. 4: system power and package C-state residency across a
web-browsing phase followed by FHD 60 FPS streaming.

Paper numbers: streaming mean ~2831 mW with residency concentrated in
C8 (~75%), C2 (~15%), C0 (~8%)."""

from repro.analysis.experiments import fig04_browsing_then_streaming


def test_fig04(run_once):
    result = run_once(fig04_browsing_then_streaming)
    print()
    print(f"browsing mean power:  {result.browsing_power_mw:7.0f} mW")
    print(f"streaming mean power: {result.streaming_power_mw:7.0f} mW "
          f"(paper: 2831 mW)")
    print("streaming residency: " + "  ".join(
        f"{state.label}={fraction * 100:.1f}%"
        for state, fraction in sorted(
            result.streaming_residency.items(),
            key=lambda kv: kv[0].depth,
        )
    ))
    assert result.streaming_power_mw > result.browsing_power_mw
