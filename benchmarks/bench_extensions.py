"""Extension benches beyond the paper's evaluation:

* the Sec. 4.5 generalization — capture with producer-side staging;
* DSC-assisted Frame Bursting (shorter bursts, high-refresh modes);
* the battery-life framing of the headline results.
"""

from repro.analysis.battery import compare_battery_life
from repro.analysis.report import format_table
from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core import BurstLinkScheme
from repro.core.capture import (
    BurstCaptureScheme,
    ConventionalCaptureScheme,
)
from repro.display.dsc import DscConfig, with_dsc
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PlatformExtras, PowerModel
from repro.video.frames import FrameType
from repro.video.source import AnalyticContentModel, FrameDescriptor


def _capture_reduction():
    model = PowerModel(
        extras=PlatformExtras(streaming=False, local_playback=True)
    )
    rows = []
    for resolution in (FHD, UHD_4K):
        raw = float(resolution.frame_bytes())
        frames = [
            FrameDescriptor(i, FrameType.I, raw / 30.0, raw)
            for i in range(16)
        ]
        base = model.report(
            FrameWindowSimulator(
                skylake_tablet(resolution), ConventionalCaptureScheme()
            ).run(frames, 30.0)
        )
        burst = model.report(
            FrameWindowSimulator(
                skylake_tablet(resolution).with_drfb(),
                BurstCaptureScheme(),
            ).run(frames, 30.0)
        )
        rows.append(
            (
                str(resolution),
                f"{base.average_power_mw:.0f}",
                f"{burst.average_power_mw:.0f}",
                f"-{(1 - burst.average_power_mw / base.average_power_mw) * 100:.1f}%",
            )
        )
    return rows


def test_capture_generalization(run_once):
    rows = run_once(_capture_reduction)
    print()
    print("Sec. 4.5 generalization: camera capture with producer-side "
          "staging")
    print(format_table(
        ("Sensor", "Conventional mW", "Burst mW", "Reduction"), rows
    ))
    reduction = float(rows[0][3].strip("-%"))
    assert reduction > 25.0


def _dsc_comparison():
    model = PowerModel()
    frames = AnalyticContentModel().frames(UHD_4K, 20)
    results = {}
    for label, config in (
        ("eDP 1.4", skylake_tablet(UHD_4K).with_drfb()),
        (
            "eDP 1.4 +DSC2",
            with_dsc(
                skylake_tablet(UHD_4K), DscConfig(ratio=2.0)
            ).with_drfb(),
        ),
    ):
        run = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 60.0
        )
        results[label] = model.report(run).average_power_mw
    return results


def test_dsc_assisted_bursting(run_once):
    results = run_once(_dsc_comparison)
    print()
    for label, power in results.items():
        print(f"  BurstLink 4K60 over {label}: {power:.0f} mW")
    assert results["eDP 1.4 +DSC2"] < results["eDP 1.4"]


def _battery_headline():
    model = PowerModel()
    frames = AnalyticContentModel().frames(UHD_4K, 20)
    base = model.report(
        FrameWindowSimulator(
            skylake_tablet(UHD_4K), ConventionalScheme()
        ).run(frames, 60.0)
    )
    burst = model.report(
        FrameWindowSimulator(
            skylake_tablet(UHD_4K).with_drfb(), BurstLinkScheme()
        ).run(frames, 60.0)
    )
    return compare_battery_life(base, burst)


def test_battery_life_headline(run_once):
    comparison = run_once(_battery_headline)
    print()
    print(f"4K60 streaming on a 45 Wh tablet: {comparison.summary()}")
    assert comparison.extra_hours > 4.0
