"""Sec. 6.4: BurstLink against Zhang et al. (race-to-sleep + content
caching + display caching) and VIP (virtualized IP chains) at 4K.

Paper numbers: Zhang et al. cut DRAM bandwidth ~34% for ~6% system
energy; BurstLink reaches 40.6% at 4K; VIP lands in between because it
removes the DRAM hop but cannot burst."""

from repro.analysis.experiments import sec64_related_work
from repro.analysis.report import format_table


def test_sec64(run_once):
    result = run_once(sec64_related_work)
    rows = []
    for name in ("zhang", "vip", "burstlink"):
        rows.append(
            (
                name,
                f"-{result.reductions[name] * 100:.1f}%",
                f"-{result.dram_bw_reduction[name] * 100:.1f}%",
            )
        )
    print()
    print(
        format_table(
            ("Technique", "Energy", "DRAM bandwidth"), rows
        )
    )
    print("(paper: zhang 6% energy / 34% BW; burstlink 40.6% at 4K)")
    assert abs(result.dram_bw_reduction["zhang"] - 0.34) < 0.05
    assert (
        result.reductions["zhang"]
        < result.reductions["vip"]
        < result.reductions["burstlink"]
    )
