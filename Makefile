# Developer entry points for the BurstLink reproduction.

.PHONY: install test bench figures examples validate trace golden \
	profile drift long-trace all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-rows:
	pytest benchmarks/ --benchmark-only -s

figures:
	python -m repro figures --out figures

validate:
	python -m repro validate

trace:
	python -m repro trace burstlink --metrics

profile:
	python -m repro profile burstlink

drift:
	python -m repro validate --json

golden:
	REPRO_UPDATE_GOLDEN=1 pytest tests/obs/test_golden_traces.py -q

# A 10-minute ambient-standby trace through the streaming path
# (summary retention + repeat-window collapsing): O(1) memory at any
# duration.  The paired memory gate lives in
# tests/integration/test_long_trace_memory.py.
long-trace:
	python -m repro standby --duration 600

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench
