# Developer entry points for the BurstLink reproduction.

.PHONY: install test bench figures examples validate trace golden \
	profile drift all

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-rows:
	pytest benchmarks/ --benchmark-only -s

figures:
	python -m repro figures --out figures

validate:
	python -m repro validate

trace:
	python -m repro trace burstlink --metrics

profile:
	python -m repro profile burstlink

drift:
	python -m repro validate --json

golden:
	REPRO_UPDATE_GOLDEN=1 pytest tests/obs/test_golden_traces.py -q

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; done

all: test bench
