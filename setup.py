"""Setup shim for environments whose setuptools cannot build PEP 660
editable wheels (no `wheel` package available offline).  All metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
