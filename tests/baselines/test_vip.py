"""VIP: virtualized IP chains."""

import pytest

from repro.baselines.vip import VipScheme
from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.core.bypass import FrameBufferBypassScheme
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(scheme, resolution=UHD_4K, with_drfb=False, fps=30.0):
    config = skylake_tablet(resolution)
    if with_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(resolution, 24)
    return FrameWindowSimulator(config, scheme).run(frames, fps)


class TestChaining:
    def test_decoded_frames_skip_dram(self):
        base = run(ConventionalScheme())
        vip = run(VipScheme())
        assert vip.timeline.dram_total_bytes < (
            base.timeline.dram_total_bytes / 10
        )

    def test_display_path_active_all_window(self):
        """VIP's limitation: the panel consumes across the whole
        window, pinning the DC/eDP — no deep C9."""
        vip = run(VipScheme(), fps=60.0)
        fractions = vip.residency_fractions()
        assert fractions.get(PackageCState.C9, 0.0) == 0.0
        assert fractions.get(PackageCState.C8, 0.0) > 0.5

    def test_repeat_windows_park_in_c8(self):
        vip = run(VipScheme(), fps=30.0)
        assert vip.residency_fractions().get(
            PackageCState.C9, 0.0
        ) == 0.0

    def test_orchestration_reduced(self):
        base = run(ConventionalScheme(), fps=30.0)
        vip = run(VipScheme(), fps=30.0)
        assert vip.residency_fractions()[PackageCState.C0] < (
            base.residency_fractions()[PackageCState.C0]
        )


class TestEnergyOrdering:
    def test_vip_beats_baseline(self):
        model = PowerModel()
        base = model.report(run(ConventionalScheme()))
        vip = model.report(run(VipScheme()))
        assert vip.average_power_mw < base.average_power_mw

    def test_burstlink_beats_vip_at_4k(self):
        """Sec. 6.4: BurstLink can gate the VD/DC/eDP for most of the
        window; VIP cannot."""
        model = PowerModel()
        vip = model.report(run(VipScheme()))
        burst = model.report(run(BurstLinkScheme(), with_drfb=True))
        assert burst.average_power_mw < vip.average_power_mw

    def test_bypass_beats_vip(self):
        """Our bypass ablation adds the C7 decode and C9 repeats on top
        of what VIP's chaining gives."""
        model = PowerModel()
        vip = model.report(run(VipScheme(), resolution=FHD))
        bypass = model.report(
            run(FrameBufferBypassScheme(), resolution=FHD)
        )
        assert bypass.average_power_mw < vip.average_power_mw

    def test_no_deadline_misses(self):
        assert run(VipScheme(), fps=60.0).stats.deadline_misses == 0
