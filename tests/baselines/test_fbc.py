"""The frame-buffer compression baseline (Fig. 13)."""

import pytest

from repro.baselines.fbc import FrameBufferCompressionScheme
from repro.config import UHD_4K, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.video.source import AnalyticContentModel


def power(scheme, with_drfb=False, fps=30.0):
    config = skylake_tablet(UHD_4K)
    if with_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(UHD_4K, 24)
    run = FrameWindowSimulator(config, scheme).run(frames, fps)
    return PowerModel().report(run), run


class TestConfiguration:
    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FrameBufferCompressionScheme(compression_rate=0.0)
        with pytest.raises(ConfigurationError):
            FrameBufferCompressionScheme(compression_rate=1.0)

    def test_name_reflects_rate(self):
        scheme = FrameBufferCompressionScheme(compression_rate=0.5)
        assert scheme.name == "fbc-50"

    def test_traffic_scales_set(self):
        scheme = FrameBufferCompressionScheme(compression_rate=0.3)
        assert scheme.writeback_scale == pytest.approx(0.7)
        assert scheme.fetch_scale == pytest.approx(0.7)


class TestBehaviour:
    def test_fbc_cuts_dram_traffic_by_rate(self):
        _, base_run = power(ConventionalScheme())
        _, fbc_run = power(
            FrameBufferCompressionScheme(compression_rate=0.5)
        )
        ratio = (
            fbc_run.timeline.dram_total_bytes
            / base_run.timeline.dram_total_bytes
        )
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_fbc_saves_energy(self):
        base, _ = power(ConventionalScheme())
        fbc, _ = power(
            FrameBufferCompressionScheme(compression_rate=0.5)
        )
        assert fbc.average_power_mw < base.average_power_mw

    def test_fbc50_saves_around_9_percent_at_4k(self):
        """Fig. 13: FBC-50 cuts ~9% at 4K."""
        base, _ = power(ConventionalScheme())
        fbc, _ = power(
            FrameBufferCompressionScheme(compression_rate=0.5)
        )
        reduction = 1 - fbc.average_power_mw / base.average_power_mw
        assert reduction == pytest.approx(0.09, abs=0.04)

    def test_higher_rate_saves_more(self):
        shallow, _ = power(
            FrameBufferCompressionScheme(compression_rate=0.2)
        )
        deep, _ = power(
            FrameBufferCompressionScheme(compression_rate=0.5)
        )
        assert deep.average_power_mw < shallow.average_power_mw

    def test_burstlink_beats_fbc50(self):
        """Fig. 13's punchline: BurstLink (~40%) dwarfs FBC-50 (~9%)."""
        base, _ = power(ConventionalScheme())
        fbc, _ = power(
            FrameBufferCompressionScheme(compression_rate=0.5)
        )
        burst, _ = power(BurstLinkScheme(), with_drfb=True)
        fbc_cut = 1 - fbc.average_power_mw / base.average_power_mw
        burst_cut = 1 - burst.average_power_mw / base.average_power_mw
        assert burst_cut > 3 * fbc_cut

    def test_compression_compute_cost_charged(self):
        cheap = FrameBufferCompressionScheme(
            compression_rate=0.5, compression_cost_per_mb=0.0
        )
        costly = FrameBufferCompressionScheme(
            compression_rate=0.5, compression_cost_per_mb=20e-3
        )
        cheap_report, _ = power(cheap)
        costly_report, _ = power(costly)
        assert costly_report.average_power_mw > (
            cheap_report.average_power_mw
        )
