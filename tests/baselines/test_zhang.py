"""Zhang et al.: race-to-sleep + content caching + display caching."""

import pytest

from repro.baselines.zhang import ZhangScheme
from repro.config import UHD_4K, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.video.source import AnalyticContentModel


def run(scheme, with_drfb=False, fps=30.0):
    config = skylake_tablet(UHD_4K)
    if with_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(UHD_4K, 24)
    return FrameWindowSimulator(config, scheme).run(frames, fps)


class TestConfiguration:
    def test_bad_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            ZhangScheme(batch_size=0)

    def test_bad_savings_rejected(self):
        with pytest.raises(ConfigurationError):
            ZhangScheme(content_cache_saving=1.0)
        with pytest.raises(ConfigurationError):
            ZhangScheme(display_cache_saving=-0.1)

    def test_bad_boost_rejected(self):
        with pytest.raises(ConfigurationError):
            ZhangScheme(boost=0.5)


class TestPaperClaims:
    def test_dram_bw_reduction_near_34_percent(self):
        """Sec. 6.4: the three techniques combined cut DRAM bandwidth
        by ~34% on average."""
        base = run(ConventionalScheme())
        zhang = run(ZhangScheme())
        reduction = 1 - (
            zhang.timeline.dram_total_bytes
            / base.timeline.dram_total_bytes
        )
        assert reduction == pytest.approx(0.34, abs=0.05)

    def test_energy_reduction_modest(self):
        """Sec. 6.4: ~6% system energy at 4K (we measure slightly more;
        within the documented band)."""
        model = PowerModel()
        base = model.report(run(ConventionalScheme()))
        zhang = model.report(run(ZhangScheme()))
        reduction = 1 - zhang.average_power_mw / base.average_power_mw
        assert 0.03 < reduction < 0.15

    def test_burstlink_far_ahead(self):
        """The paper's conclusion: BurstLink (40.6% at 4K) beats the
        three techniques combined."""
        model = PowerModel()
        base = model.report(run(ConventionalScheme()))
        zhang = model.report(run(ZhangScheme()))
        burst = model.report(run(BurstLinkScheme(), with_drfb=True))
        zhang_cut = 1 - zhang.average_power_mw / base.average_power_mw
        burst_cut = 1 - burst.average_power_mw / base.average_power_mw
        assert burst_cut > 3 * zhang_cut


class TestBatching:
    def test_batch_boundary_decodes_everything(self):
        """Every batch_size-th window carries the whole batch's decode
        traffic; the others carry almost none."""
        zhang = run(ZhangScheme(batch_size=4), fps=60.0)
        writes = [
            s.dram_write_bytes
            for s in zhang.timeline
            if s.dram_write_bw > 0
        ]
        assert max(writes) > 20 * min(w for w in writes if w > 0)

    def test_no_deadline_misses(self):
        assert run(ZhangScheme(), fps=60.0).stats.deadline_misses == 0
