"""The model-validation harness (paper Sec. 5.3)."""

import pytest

from repro.power.validation import (
    Anchor,
    ValidationResult,
    validate_against_paper,
)


class TestAnchor:
    def test_perfect_accuracy(self):
        assert Anchor("x", 100.0, 100.0).accuracy == 1.0

    def test_ten_percent_error(self):
        assert Anchor("x", 100.0, 110.0).accuracy == pytest.approx(0.9)

    def test_zero_paper_value(self):
        assert Anchor("x", 0.0, 0.0).accuracy == 1.0
        assert Anchor("x", 0.0, 5.0).accuracy == 0.0


class TestValidationResult:
    def test_mean_accuracy(self):
        result = ValidationResult(
            anchors=[Anchor("a", 100, 100), Anchor("b", 100, 90)]
        )
        assert result.mean_accuracy == pytest.approx(0.95)

    def test_worst(self):
        result = ValidationResult(
            anchors=[Anchor("a", 100, 100), Anchor("b", 100, 50)]
        )
        assert result.worst().name == "b"

    def test_empty_result(self):
        assert ValidationResult().mean_accuracy == 0.0


class TestAgainstPaper:
    """The headline check: our reproduction achieves the paper's own
    claimed model accuracy (~96%)."""

    @pytest.fixture(scope="class")
    def result(self):
        return validate_against_paper()

    def test_mean_accuracy_at_least_94_percent(self, result):
        assert result.mean_accuracy >= 0.94

    def test_every_anchor_at_least_80_percent(self, result):
        assert result.worst().accuracy >= 0.80

    def test_all_eight_anchors_present(self, result):
        assert len(result.anchors) == 8

    def test_baseline_avgp_within_5_percent(self, result):
        anchor = next(
            a for a in result.anchors if "baseline AvgP" in a.name
        )
        assert anchor.accuracy >= 0.95

    def test_burstlink_avgp_within_6_percent(self, result):
        anchor = next(
            a for a in result.anchors if "BurstLink AvgP" in a.name
        )
        assert anchor.accuracy >= 0.94

    def test_summary_renders(self, result):
        text = result.summary()
        assert "mean accuracy" in text
        assert "Table 2" in text
