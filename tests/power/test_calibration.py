"""The component power library and its Skylake anchors."""

import pytest

from repro.config import FHD, PanelConfig, UHD_4K, skylake_tablet
from repro.errors import CalibrationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.breakdown import breakdown_report
from repro.power.calibration import (
    SKYLAKE_TABLET_POWER,
    ComponentPowerLibrary,
)
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.units import gbps
from repro.video.source import AnalyticContentModel


@pytest.fixture
def library():
    return SKYLAKE_TABLET_POWER


class TestValidation:
    def test_floor_monotonicity_enforced(self):
        floors = dict(SKYLAKE_TABLET_POWER.soc_floor)
        floors[PackageCState.C9] = floors[PackageCState.C0] + 1
        with pytest.raises(CalibrationError):
            ComponentPowerLibrary(soc_floor=floors)

    def test_missing_floor_rejected(self):
        floors = dict(SKYLAKE_TABLET_POWER.soc_floor)
        del floors[PackageCState.C8]
        with pytest.raises(CalibrationError):
            ComponentPowerLibrary(soc_floor=floors)

    def test_negative_constant_rejected(self):
        with pytest.raises(CalibrationError):
            ComponentPowerLibrary(cpu_active=-1)


class TestComponentPowers:
    def test_panel_scales_with_resolution(self, library):
        fhd = library.panel_power(PanelConfig(resolution=FHD))
        uhd = library.panel_power(PanelConfig(resolution=UHD_4K))
        assert uhd > fhd

    def test_panel_scales_with_refresh(self, library):
        base = library.panel_power(PanelConfig(refresh_hz=60))
        fast = library.panel_power(PanelConfig(refresh_hz=120))
        assert fast > base

    def test_panel_off_is_free(self, library):
        assert library.panel_power(
            PanelConfig(), displaying=False
        ) == 0.0

    def test_panel_rx_adder(self, library):
        panel = PanelConfig()
        assert library.panel_power(panel, receiving=True) == (
            library.panel_power(panel) + library.panel_rx_active
        )

    def test_edp_idle_is_free(self, library):
        assert library.edp_power(0) == 0.0

    def test_edp_scales_with_rate(self, library):
        slow = library.edp_power(gbps(2.99))
        fast = library.edp_power(gbps(25.92))
        assert fast > slow > 0

    def test_dc_power_rate_dependent(self, library):
        assert library.dc_power(1e9) > library.dc_power(0) > 0

    def test_dc_rejects_negative_rate(self, library):
        with pytest.raises(CalibrationError):
            library.dc_power(-1)

    def test_dram_background_follows_package_state(self, library):
        assert library.dram_background(PackageCState.C0) > (
            library.dram_background(PackageCState.C8)
        )

    def test_vd_power_ladder(self, library):
        assert (
            library.vd_active
            > library.vd_low_power
            > library.vd_clock_gated
            > 0
        )


class TestPaperAnchors:
    """The calibration must reproduce the published measurements."""

    def test_c9_package_power(self, library):
        """Table 2: C9 at ~1090 mW (panel PSR + always-on)."""
        total = (
            library.floor(PackageCState.C9)
            + library.panel_power(PanelConfig(resolution=FHD))
            + library.dram_background(PackageCState.C9)
            + library.always_on
            + library.platform_idle
            + library.wifi_streaming
        )
        assert total == pytest.approx(1090, rel=0.05)

    def test_dram_over_30_percent_at_4k(self):
        """Fig. 1: DRAM alone is ~30% of system energy at 4K."""
        config = skylake_tablet(UHD_4K)
        frames = AnalyticContentModel().frames(UHD_4K, 24)
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 30.0
        )
        share = breakdown_report(
            PowerModel().report(run)
        ).dram_fraction
        assert share > 0.27

    def test_dram_share_grows_with_resolution(self):
        model = PowerModel()
        shares = []
        for resolution in (FHD, UHD_4K):
            config = skylake_tablet(resolution)
            frames = AnalyticContentModel().frames(resolution, 24)
            run = FrameWindowSimulator(
                config, ConventionalScheme()
            ).run(frames, 30.0)
            shares.append(
                breakdown_report(model.report(run)).dram_fraction
            )
        assert shares[1] > shares[0]

    def test_drfb_overhead_matches_samsung_estimate(self, library):
        assert library.drfb_active == 58.0
