"""The analytical power model over timelines."""

import pytest

from repro.config import FHD, PanelConfig, skylake_tablet
from repro.errors import SimulationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.pipeline.timeline import PanelMode, Segment, Timeline, VdMode
from repro.power.model import (
    COMPONENT_KEYS,
    PlatformExtras,
    PowerModel,
)
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


@pytest.fixture
def model():
    return PowerModel()


@pytest.fixture
def panel():
    return PanelConfig(resolution=FHD)


def segment(state=PackageCState.C9, duration=1.0, **kwargs):
    return Segment(start=0.0, end=duration, state=state, **kwargs)


class TestSegmentPower:
    def test_deep_idle_is_cheapest(self, model, panel):
        idle = model.segment_power(segment(PackageCState.C9), panel)
        active = model.segment_power(
            segment(PackageCState.C0, cpu_active=True), panel
        )
        assert active > 2 * idle

    def test_component_keys_complete(self, model, panel):
        powers = model.segment_component_powers(segment(), panel)
        assert set(powers) == set(COMPONENT_KEYS)

    def test_cpu_adder(self, model, panel):
        base = model.segment_power(segment(PackageCState.C0), panel)
        busy = model.segment_power(
            segment(PackageCState.C0, cpu_active=True), panel
        )
        assert busy - base == pytest.approx(model.library.cpu_active)

    def test_vd_mode_ladder(self, model, panel):
        def power(mode):
            return model.segment_power(
                segment(PackageCState.C0, vd_mode=mode), panel
            )

        assert power(VdMode.ACTIVE) > power(VdMode.LOW_POWER) > (
            power(VdMode.HALTED) > power(VdMode.OFF)
        )

    def test_dram_traffic_charged(self, model, panel):
        quiet = model.segment_power(segment(PackageCState.C2), panel)
        busy = model.segment_power(
            segment(PackageCState.C2, dram_read_bw=1e9), panel
        )
        assert busy - quiet == pytest.approx(
            model.library.dram.read_mw_per_gbs
        )

    def test_transition_extra_charged(self, model, panel):
        plain = model.segment_power(segment(PackageCState.C2), panel)
        excursion = model.segment_power(
            segment(PackageCState.C2, transition=True), panel
        )
        assert excursion - plain == pytest.approx(
            model.library.transition_extra
        )

    def test_drfb_adder(self, model, panel):
        without = model.segment_power(segment(PackageCState.C7), panel)
        with_drfb = model.segment_power(
            segment(PackageCState.C7, drfb_active=True), panel
        )
        assert with_drfb - without == pytest.approx(58.0)

    def test_panel_off_removes_panel_power(self, model, panel):
        lit = model.segment_power(segment(), panel)
        dark = model.segment_power(
            segment(panel_mode=PanelMode.OFF), panel
        )
        assert lit - dark == pytest.approx(
            model.library.panel_power(panel)
        )


class TestPlatformExtras:
    def test_streaming_adds_wifi(self, model):
        streaming = PlatformExtras(streaming=True)
        idle = PlatformExtras(streaming=False)
        assert streaming.power(model.library) - idle.power(
            model.library
        ) == pytest.approx(model.library.wifi_streaming)

    def test_local_playback_adds_storage(self, model):
        local = PlatformExtras(streaming=False, local_playback=True)
        idle = PlatformExtras(streaming=False)
        assert local.power(model.library) - idle.power(
            model.library
        ) == pytest.approx(model.library.storage_playback)


class TestReport:
    @pytest.fixture
    def report(self, model):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 24)
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 30.0
        )
        return model.report(run)

    def test_energy_sums_components(self, report):
        assert report.total_energy_mj == pytest.approx(
            sum(report.by_component_mj.values())
        )

    def test_energy_sums_states(self, report):
        assert report.total_energy_mj == pytest.approx(
            sum(row.energy_mj for row in report.by_state.values())
        )

    def test_average_power(self, report):
        assert report.average_power_mw == pytest.approx(
            report.total_energy_mj / report.duration_s
        )

    def test_closed_form_matches_bottom_up(self, model, report):
        """The paper's sum(P_Ci * R_Ci) must equal the bottom-up
        integral exactly."""
        assert model.closed_form_average_power(report) == (
            pytest.approx(report.average_power_mw, rel=1e-9)
        )

    def test_residencies_sum_to_one(self, report):
        assert sum(
            row.residency_fraction for row in report.by_state.values()
        ) == pytest.approx(1.0)

    def test_table2_rows_sorted(self, report):
        rows = report.table2_rows()
        depths = [row.state.depth for row in rows]
        assert depths == sorted(depths)

    def test_energy_per_window(self, report):
        per_window = report.energy_per_frame_window(1 / 60)
        assert per_window == pytest.approx(
            report.average_power_mw / 60
        )

    def test_transition_energy_positive(self, report):
        assert 0 < report.transition_energy_mj < (
            report.total_energy_mj / 4
        )

    def test_empty_timeline_rejected(self, model, panel):
        with pytest.raises(SimulationError):
            model.report_timeline(Timeline(), panel)

    def test_bad_window_length_rejected(self, report):
        with pytest.raises(SimulationError):
            report.energy_per_frame_window(0)
