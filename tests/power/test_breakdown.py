"""The DRAM / Display / Others breakdown."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.errors import SimulationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.breakdown import SystemBreakdown, breakdown_report
from repro.power.model import PowerModel
from repro.video.source import AnalyticContentModel


def reports():
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, 24)
    model = PowerModel()
    base = model.report(
        FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 30.0
        )
    )
    burst = model.report(
        FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(frames, 30.0)
    )
    return base, burst


class TestBreakdown:
    def test_buckets_sum_to_total(self):
        base, _ = reports()
        breakdown = breakdown_report(base)
        assert breakdown.total_mj == pytest.approx(
            base.total_energy_mj
        )

    def test_fractions_sum_to_one(self):
        base, _ = reports()
        breakdown = breakdown_report(base)
        assert (
            breakdown.dram_fraction
            + breakdown.display_fraction
            + breakdown.others_fraction
        ) == pytest.approx(1.0)

    def test_burstlink_guts_dram(self):
        base, burst = reports()
        assert breakdown_report(burst).dram_mj < (
            breakdown_report(base).dram_mj / 3
        )

    def test_display_roughly_preserved(self):
        """The panel keeps displaying either way; BurstLink shifts only
        the datapath energy."""
        base, burst = reports()
        ratio = (
            breakdown_report(burst).display_mj
            / breakdown_report(base).display_mj
        )
        assert 0.8 < ratio < 1.1

    def test_normalised_to_reference(self):
        base, burst = reports()
        base_breakdown = breakdown_report(base)
        dram, display, others = breakdown_report(
            burst
        ).normalised_to(base_breakdown)
        assert dram + display + others == pytest.approx(
            breakdown_report(burst).total_mj
            / base_breakdown.total_mj
        )

    def test_normalising_to_zero_rejected(self):
        with pytest.raises(SimulationError):
            breakdown_report(reports()[0]).normalised_to(
                SystemBreakdown(0, 0, 0)
            )
