"""The declarative power-term registry: semantics, default-registry
parity with the historical component set, and append-only extension."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import CalibrationError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power.model import COMPONENT_KEYS, PowerModel
from repro.power.terms import (
    DEFAULT_TERMS,
    PowerTerm,
    PowerTermRegistry,
    default_registry,
)
from repro.video.source import AnalyticContentModel


def _zero_term(key="extra"):
    return PowerTerm(
        key,
        lambda segment, panel, ctx: 0.0,
        lambda cls, totals, panel, ctx: 0.0,
        "a term that prices nothing",
    )


class TestRegistrySemantics:
    def test_default_keys_are_the_component_keys(self):
        registry = default_registry()
        assert registry.keys == COMPONENT_KEYS
        assert len(registry) == len(DEFAULT_TERMS) == 13

    def test_zeros_is_a_fresh_accumulator_in_registry_order(self):
        registry = default_registry()
        zeros = registry.zeros()
        assert tuple(zeros) == registry.keys
        assert all(value == 0.0 for value in zeros.values())
        # A fresh dict every call: mutating one must not leak.
        zeros["panel"] = 1.0
        assert registry.zeros()["panel"] == 0.0

    def test_ids_are_stable_positions(self):
        registry = default_registry()
        assert registry.ids["soc_floor"] == 0
        assert [registry.ids[key] for key in registry.keys] == list(
            range(len(registry))
        )

    def test_term_lookup(self):
        assert default_registry().term("panel").key == "panel"
        with pytest.raises(CalibrationError):
            default_registry().term("nope")

    def test_empty_registry_rejected(self):
        with pytest.raises(CalibrationError):
            PowerTermRegistry(())

    def test_duplicate_keys_rejected(self):
        with pytest.raises(CalibrationError):
            PowerTermRegistry((_zero_term("a"), _zero_term("a")))

    def test_extended_appends_preserving_ids(self):
        base = default_registry()
        extended = base.extended(_zero_term())
        assert extended.keys == base.keys + ("extra",)
        assert extended.ids["extra"] == len(base)
        for key in base.keys:
            assert extended.ids[key] == base.ids[key]
        # The default registry itself is untouched.
        assert "extra" not in default_registry().ids


class TestModelWithCustomRegistry:
    @pytest.fixture(scope="class")
    def run(self):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 12)
        return FrameWindowSimulator(
            config, ConventionalScheme()
        ).run(frames, 30.0)

    def test_zero_cost_term_leaves_totals_unchanged(self, run):
        base = PowerModel().report(run)
        extended = PowerModel(
            registry=default_registry().extended(_zero_term())
        ).report(run)
        assert extended.total_energy_mj == pytest.approx(
            base.total_energy_mj
        )
        assert extended.by_component_mj["extra"] == 0.0
        assert set(extended.by_component_mj) == set(
            COMPONENT_KEYS
        ) | {"extra"}

    def test_constant_term_adds_linear_energy(self, run):
        flat = PowerTerm(
            "heater",
            lambda segment, panel, ctx: 100.0,
            lambda cls, totals, panel, ctx: 100.0 * totals.seconds,
        )
        base = PowerModel().report(run)
        extended = PowerModel(
            registry=default_registry().extended(flat)
        ).report(run)
        duration = run.timeline.duration
        assert extended.by_component_mj["heater"] == pytest.approx(
            100.0 * duration
        )
        assert extended.total_energy_mj == pytest.approx(
            base.total_energy_mj + 100.0 * duration
        )

    def test_default_model_uses_default_registry(self):
        assert PowerModel().registry is default_registry()
