"""Documentation integrity: the markdown files must reference modules,
files, and commands that actually exist."""

import importlib
import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
DOCS = [
    ROOT / "README.md",
    ROOT / "DESIGN.md",
    ROOT / "EXPERIMENTS.md",
    ROOT / "docs" / "MODEL.md",
    ROOT / "docs" / "OBSERVABILITY.md",
    ROOT / "docs" / "STATS.md",
]


class TestFilesExist:
    def test_all_docs_present(self):
        for doc in DOCS:
            assert doc.exists(), doc

    def test_license_present(self):
        assert (ROOT / "LICENSE").exists()

    def test_referenced_bench_modules_exist(self):
        pattern = re.compile(r"benchmarks/(bench_\w+\.py)")
        for doc in DOCS:
            for name in pattern.findall(doc.read_text()):
                assert (ROOT / "benchmarks" / name).exists(), (
                    f"{doc.name} references missing benchmarks/{name}"
                )

    def test_referenced_example_scripts_exist(self):
        pattern = re.compile(r"examples/(\w+\.py)")
        for doc in DOCS:
            for name in pattern.findall(doc.read_text()):
                assert (ROOT / "examples" / name).exists(), (
                    f"{doc.name} references missing examples/{name}"
                )


class TestModuleReferences:
    def test_referenced_repro_modules_import(self):
        pattern = re.compile(r"`(repro(?:\.\w+)+)`")
        seen = set()
        for doc in DOCS:
            for dotted in pattern.findall(doc.read_text()):
                seen.add(dotted)
        assert seen, "docs should reference repro modules"
        for dotted in sorted(seen):
            # A dotted name may be a module or a module attribute.
            parts = dotted.split(".")
            for split in range(len(parts), 0, -1):
                module_name = ".".join(parts[:split])
                try:
                    module = importlib.import_module(module_name)
                except ImportError:
                    continue
                remainder = parts[split:]
                obj = module
                for attribute in remainder:
                    assert hasattr(obj, attribute), (
                        f"{dotted} (from docs) does not resolve"
                    )
                    obj = getattr(obj, attribute)
                break
            else:
                pytest.fail(f"{dotted} (from docs) does not import")


class TestCliCommandsInDocs:
    def test_documented_cli_commands_parse(self):
        """Every `python -m repro <cmd>` in the docs must be a real
        subcommand."""
        from repro.cli import build_parser

        parser = build_parser()
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands |= set(action.choices)
        pattern = re.compile(r"python -m repro ([\w-]+)")
        for doc in DOCS:
            for command in pattern.findall(doc.read_text()):
                assert command in subcommands, (
                    f"{doc} documents unknown command {command!r}"
                )

    def test_module_entrypoint_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            cwd=ROOT,
        )
        assert result.returncode == 0
        assert "validate" in result.stdout
