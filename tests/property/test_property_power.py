"""Property-based tests on the power model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PanelConfig, Resolution
from repro.dram.power import DramPowerModel
from repro.pipeline.timeline import PanelMode, Segment, VdMode
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState

bandwidths = st.floats(min_value=0.0, max_value=30e9)
shallow_states = st.sampled_from(
    [PackageCState.C0, PackageCState.C2]
)
deep_states = st.sampled_from(
    [
        PackageCState.C7,
        PackageCState.C7_PRIME,
        PackageCState.C8,
        PackageCState.C9,
    ]
)
resolutions = st.sampled_from(
    [
        Resolution(1920, 1080),
        Resolution(2560, 1440),
        Resolution(3840, 2160),
    ]
)


@given(bandwidths, bandwidths)
def test_dram_operating_power_superposition(read, write):
    model = DramPowerModel()
    combined = model.operating_power(read, write)
    assert abs(
        combined
        - model.operating_power(read, 0)
        - model.operating_power(0, write)
    ) < 1e-6


@given(shallow_states, bandwidths, resolutions)
@settings(max_examples=100)
def test_power_monotone_in_traffic(state, bandwidth, resolution):
    model = PowerModel()
    panel = PanelConfig(resolution=resolution)
    quiet = Segment(start=0, end=1, state=state)
    busy = Segment(
        start=0, end=1, state=state, dram_read_bw=bandwidth
    )
    assert model.segment_power(busy, panel) >= model.segment_power(
        quiet, panel
    )


@given(deep_states, resolutions)
@settings(max_examples=100)
def test_deep_states_cheaper_than_c0(state, resolution):
    model = PowerModel()
    panel = PanelConfig(resolution=resolution)
    deep = Segment(start=0, end=1, state=state)
    active = Segment(
        start=0, end=1, state=PackageCState.C0, cpu_active=True,
        vd_mode=VdMode.ACTIVE,
    )
    assert model.segment_power(deep, panel) < model.segment_power(
        active, panel
    )


@given(
    deep_states,
    resolutions,
    st.sampled_from([PanelMode.SELF_REFRESH, PanelMode.LIVE]),
)
@settings(max_examples=100)
def test_power_always_positive(state, resolution, panel_mode):
    model = PowerModel()
    panel = PanelConfig(resolution=resolution)
    segment = Segment(
        start=0, end=1, state=state, panel_mode=panel_mode
    )
    assert model.segment_power(segment, panel) > 0


@given(resolutions, st.floats(min_value=60.0, max_value=144.0))
@settings(max_examples=100)
def test_panel_power_monotone_in_refresh(resolution, refresh):
    library = PowerModel().library
    base = library.panel_power(
        PanelConfig(resolution=resolution, refresh_hz=60.0)
    )
    fast = library.panel_power(
        PanelConfig(resolution=resolution, refresh_hz=refresh)
    )
    assert fast >= base


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=1e-4, max_value=10e-3),
            deep_states,
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50)
def test_report_energy_equals_sum_of_segments(phase_list):
    """Total report energy always equals the integral over segments."""
    from repro.pipeline.builder import TimelineBuilder

    builder = TimelineBuilder(initial_state=PackageCState.C8)
    for duration, state in phase_list:
        builder.add(duration, state)
    timeline = builder.build()
    model = PowerModel()
    panel = PanelConfig()
    report = model.report_timeline(timeline, panel)
    manual = sum(
        model.segment_power(segment, panel) * segment.duration
        for segment in timeline
    )
    assert abs(report.total_energy_mj - manual) < 1e-6
