"""Property-based tests on unit conversions and timing arithmetic."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.display.timing import RefreshTiming

positive = st.floats(
    min_value=1e-9, max_value=1e12, allow_nan=False,
    allow_infinity=False,
)


@given(positive)
def test_time_roundtrips(value):
    assert math.isclose(units.to_ms(units.ms(value)), value)
    assert math.isclose(units.to_us(units.us(value)), value)


@given(positive)
def test_bandwidth_roundtrips(value):
    assert math.isclose(units.to_gbps(units.gbps(value)), value)
    assert math.isclose(
        units.to_gb_per_s(units.gb_per_s(value)), value
    )


@given(positive)
def test_size_roundtrips(value):
    assert math.isclose(units.to_mib(units.mib(value)), value)


@given(positive, positive)
def test_transfer_time_inverts_bandwidth(size, bandwidth):
    duration = units.transfer_time(size, bandwidth)
    assert math.isclose(
        units.sustained_bandwidth(size, duration), bandwidth,
        rel_tol=1e-9,
    )


@given(positive, positive)
def test_energy_power_duality(power_mw, duration_s):
    energy = units.energy_mj(power_mw, duration_s)
    assert math.isclose(energy / duration_s, power_mw, rel_tol=1e-12)


@given(
    st.floats(min_value=24.0, max_value=120.0),
    st.floats(min_value=1.0, max_value=120.0),
)
def test_cadence_new_frame_density(refresh, fps):
    """Over many windows, the NEW_FRAME density approaches
    fps / refresh for any feasible pair."""
    if fps > refresh:
        return
    timing = RefreshTiming(refresh, fps)
    windows = list(timing.windows(600))
    new_frames = sum(1 for w in windows if w.is_new_frame)
    expected = 600 * fps / refresh
    assert abs(new_frames - expected) <= 2


@given(
    st.floats(min_value=24.0, max_value=120.0),
    st.floats(min_value=1.0, max_value=120.0),
    st.integers(min_value=1, max_value=300),
)
def test_cadence_frame_indices_within_bounds(refresh, fps, count):
    if fps > refresh:
        return
    timing = RefreshTiming(refresh, fps)
    for window in timing.windows(count):
        assert 0 <= window.frame_index <= window.index
