"""Property-based tests for the functional codec."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.video.codec import Codec, CodecConfig
from repro.video.frames import DecodedFrame, FrameType

#: Small macroblock-aligned frames keep examples fast.
frame_strategy = arrays(
    dtype=np.uint8,
    shape=(32, 32, 3),
    elements=st.integers(min_value=0, max_value=255),
)

smooth_frame_strategy = st.integers(
    min_value=0, max_value=200
).map(
    lambda base: np.clip(
        np.fromfunction(
            lambda y, x, c: base + x * 2 + y + c * 10, (32, 32, 3)
        ),
        0,
        255,
    ).astype(np.uint8)
)


@given(frame_strategy)
@settings(max_examples=20, deadline=None)
def test_encoder_reconstruction_equals_decoder_output(frame):
    """For ANY frame — even pure noise — the encoder's local
    reconstruction must match the decoder bit-for-bit (the no-drift
    invariant)."""
    codec = Codec(CodecConfig(qstep=12.0))
    encoded, reconstruction = codec.encode_frame(0, frame, FrameType.I)
    decoded = codec.decode_frame(encoded)
    assert np.array_equal(decoded.pixels, reconstruction)


@given(frame_strategy)
@settings(max_examples=15, deadline=None)
def test_p_frame_no_drift(frame):
    codec = Codec(CodecConfig(qstep=12.0))
    _, reference = codec.encode_frame(0, frame, FrameType.I)
    shifted = np.roll(frame, 2, axis=1)
    encoded, reconstruction = codec.encode_frame(
        1, shifted, FrameType.P, past=reference
    )
    decoded = codec.decode_frame(encoded, past=reference)
    assert np.array_equal(decoded.pixels, reconstruction)


@given(smooth_frame_strategy)
@settings(max_examples=15, deadline=None)
def test_smooth_content_quality_floor(frame):
    """Smooth gradients must survive coding at >= 30 dB PSNR."""
    codec = Codec(CodecConfig(qstep=12.0))
    encoded, _ = codec.encode_frame(0, frame, FrameType.I)
    decoded = codec.decode_frame(encoded)
    assert decoded.psnr(
        DecodedFrame(0, FrameType.I, frame)
    ) > 30.0


@given(smooth_frame_strategy)
@settings(max_examples=15, deadline=None)
def test_smooth_content_compresses(frame):
    codec = Codec(CodecConfig(qstep=12.0))
    encoded, _ = codec.encode_frame(0, frame, FrameType.I)
    assert encoded.size_bytes < frame.nbytes


#: Entropy-coder granularity slack: on degenerate (near-constant)
#: frames the stream is header-dominated and a coarser quantizer can
#: land quantized DC values on marginally longer exp-Golomb codes —
#: observed worst case is 4 bytes on a 19-byte stream.  Monotonicity
#: only holds up to this coding-granularity constant.
QSTEP_SLACK_BYTES = 16


@given(frame_strategy, st.integers(min_value=4, max_value=60))
@settings(max_examples=10, deadline=None)
def test_qstep_never_grows_stream(frame, qstep):
    """A coarser quantizer never yields a meaningfully larger stream
    than qstep=2 on the same content (exact monotonicity fails only
    within entropy-coder granularity on header-dominated streams)."""
    fine = Codec(CodecConfig(qstep=2.0))
    coarse = Codec(CodecConfig(qstep=float(qstep)))
    fine_encoded, _ = fine.encode_frame(0, frame, FrameType.I)
    coarse_encoded, _ = coarse.encode_frame(0, frame, FrameType.I)
    assert (
        coarse_encoded.size_bytes
        <= fine_encoded.size_bytes + QSTEP_SLACK_BYTES
    )
