"""Property-based tests on buffer state machines (DRFB, DC buffer)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DisplayControllerConfig
from repro.display.controller import DisplayController
from repro.display.rfb import DoubleRemoteFrameBuffer
from repro.errors import BufferOverflowError, BufferUnderflowError
from repro.units import mib

#: Random burst/swap/scan command streams for the DRFB.
drfb_commands = st.lists(
    st.sampled_from(["burst", "swap", "scan"]),
    min_size=1,
    max_size=60,
)


@given(drfb_commands)
@settings(max_examples=200)
def test_drfb_never_corrupts_displayed_frame(commands):
    """Under any command sequence, the frame id the panel scans only
    ever changes at a swap — bursts never touch it."""
    drfb = DoubleRemoteFrameBuffer(mib(1))
    next_frame = 0
    displayed = None
    for command in commands:
        if command == "burst":
            drfb.receive_burst(next_frame, mib(1))
            next_frame += 1
            assert drfb.displayable_frame == displayed
        elif command == "swap":
            try:
                drfb.swap()
            except BufferUnderflowError:
                continue
            displayed = drfb.displayable_frame
            assert displayed is not None
        else:
            try:
                scanned = drfb.scan_out()
            except BufferUnderflowError:
                assert displayed is None
                continue
            assert scanned == mib(1)
            assert drfb.displayable_frame == displayed


@given(drfb_commands)
@settings(max_examples=200)
def test_drfb_swap_count_bounded_by_bursts(commands):
    drfb = DoubleRemoteFrameBuffer(mib(1))
    bursts = 0
    for command in commands:
        if command == "burst":
            drfb.receive_burst(bursts, mib(1))
            bursts += 1
        elif command == "swap":
            try:
                drfb.swap()
            except BufferUnderflowError:
                pass
    assert drfb.swaps <= bursts


#: Random fill/drain sizes for the DC double buffer.
dc_operations = st.lists(
    st.tuples(
        st.sampled_from(["fill", "drain"]),
        st.floats(min_value=1.0, max_value=float(mib(1))),
    ),
    max_size=80,
)


@given(dc_operations)
@settings(max_examples=200)
def test_dc_buffer_occupancy_always_in_bounds(operations):
    """The DC buffer never reports occupancy below zero or above its
    capacity, whatever sequence of fills/drains is attempted."""
    dc = DisplayController(
        DisplayControllerConfig(buffer_size=mib(1), chunk_size=mib(1) / 4)
    )
    for operation, size in operations:
        try:
            if operation == "fill":
                dc.fill(size)
            else:
                dc.drain(size)
        except (BufferOverflowError, BufferUnderflowError):
            pass
        assert -1e-6 <= dc.buffered_bytes <= dc.config.buffer_size + 1e-6


@given(dc_operations)
@settings(max_examples=100)
def test_dc_conservation(operations):
    """Accepted fills minus accepted drains equals the occupancy."""
    dc = DisplayController(
        DisplayControllerConfig(buffer_size=mib(1), chunk_size=mib(1) / 4)
    )
    filled = drained = 0.0
    for operation, size in operations:
        try:
            if operation == "fill":
                dc.fill(size)
                filled += size
            else:
                dc.drain(size)
                drained += size
        except (BufferOverflowError, BufferUnderflowError):
            pass
    assert abs(dc.buffered_bytes - (filled - drained)) < 1e-3
