"""Property-based tests on timelines and the builder."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.builder import TimelineBuilder
from repro.soc.cstates import PackageCState

#: States the builder commonly sequences through.
states = st.sampled_from(
    [
        PackageCState.C0,
        PackageCState.C2,
        PackageCState.C7,
        PackageCState.C7_PRIME,
        PackageCState.C8,
        PackageCState.C9,
    ]
)

#: Phases long enough that excursions never fully consume them.
phases = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=20e-3), states
    ),
    min_size=1,
    max_size=30,
)


@given(phases)
@settings(max_examples=100)
def test_time_is_conserved(phase_list):
    """The built timeline covers exactly the sum of phase durations,
    no matter how many excursions were inserted."""
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    for duration, state in phase_list:
        builder.add(duration, state)
    total = sum(duration for duration, _ in phase_list)
    assert abs(builder.build().duration - total) < 1e-12 * len(
        phase_list
    ) + 1e-15


@given(phases)
@settings(max_examples=100)
def test_timeline_is_contiguous(phase_list):
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    for duration, state in phase_list:
        builder.add(duration, state)
    timeline = builder.build()
    for earlier, later in zip(timeline.segments,
                              timeline.segments[1:]):
        assert abs(later.start - earlier.end) < 1e-12


@given(phases)
@settings(max_examples=100)
def test_residency_fractions_always_sum_to_one(phase_list):
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    for duration, state in phase_list:
        builder.add(duration, state)
    fractions = builder.build().residency_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-9


@given(phases)
@settings(max_examples=100)
def test_transitions_only_between_distinct_states(phase_list):
    """An excursion segment only appears where the state actually
    changed; repeated same-state phases never produce one."""
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    previous = PackageCState.C0
    expected_transitions = 0
    for duration, state in phase_list:
        if state is not previous:
            expected_transitions += 1
        builder.add(duration, state)
        previous = state
    assert builder.build().transition_count() == expected_transitions


@given(
    st.floats(min_value=0.5e-3, max_value=50e-3),
    st.lists(states, min_size=1, max_size=4, unique=True),
)
@settings(max_examples=100)
def test_idle_choice_is_a_candidate(duration, candidates):
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    chosen = builder.idle(duration, list(candidates))
    assert chosen in candidates


@given(st.floats(min_value=5e-3, max_value=60e-3))
@settings(max_examples=50)
def test_longer_idle_never_picks_shallower(duration):
    """If a state is worth entering for a period T, it stays worth
    entering for any longer period."""
    short = TimelineBuilder(initial_state=PackageCState.C0).idle(
        duration, [PackageCState.C8, PackageCState.C9]
    )
    long = TimelineBuilder(initial_state=PackageCState.C0).idle(
        duration * 2, [PackageCState.C8, PackageCState.C9]
    )
    assert long.depth >= short.depth
