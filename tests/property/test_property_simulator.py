"""Property-based robustness: random platform/workload configurations
through the full simulate-and-price stack must preserve the global
invariants for every scheme."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    EdpConfig,
    PanelConfig,
    Resolution,
    SystemConfig,
)
from repro.core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
)
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.units import gbps
from repro.video.source import AnalyticContentModel

#: Panel geometries from phone-class to 5K, always macroblock-friendly.
panel_geometries = st.tuples(
    st.integers(min_value=40, max_value=320),
    st.integers(min_value=30, max_value=180),
).map(lambda wh: Resolution(wh[0] * 16, wh[1] * 16))

refresh_rates = st.sampled_from([48.0, 60.0, 90.0, 120.0])
frame_rates = st.sampled_from([24.0, 30.0, 48.0, 60.0])

schemes = st.sampled_from(
    [
        ("conventional", ConventionalScheme, False),
        ("burstlink", BurstLinkScheme, True),
        ("bursting", FrameBurstingScheme, True),
        ("bypass", FrameBufferBypassScheme, False),
    ]
)


def build_config(resolution, refresh):
    """A platform whose link always sustains the panel (scaled up when
    the random mode outruns eDP 1.4)."""
    needed = resolution.frame_bytes() * refresh
    link = EdpConfig()
    if needed > link.max_bandwidth:
        link = EdpConfig(
            name="scaled", max_bandwidth=needed * 2.5
        )
    return SystemConfig(
        panel=PanelConfig(resolution=resolution, refresh_hz=refresh),
        edp=link,
    )


@given(panel_geometries, refresh_rates, frame_rates, schemes)
@settings(max_examples=60, deadline=None)
def test_full_stack_invariants(resolution, refresh, fps, scheme_spec):
    """For any feasible random configuration: the timeline tiles the
    run exactly, residencies sum to one, energy is finite and positive,
    and the closed-form identity holds."""
    if fps > refresh:
        return
    name, factory, needs_drfb = scheme_spec
    config = build_config(resolution, refresh)
    if needs_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(resolution, 6)
    run = FrameWindowSimulator(config, factory()).run(frames, fps)

    assert run.duration == pytest.approx(
        run.stats.windows / refresh
    )
    assert sum(run.residency_fractions().values()) == (
        pytest.approx(1.0)
    )
    model = PowerModel()
    report = model.report(run)
    assert 0 < report.average_power_mw < 50000
    assert model.closed_form_average_power(report) == pytest.approx(
        report.average_power_mw, rel=1e-9
    )


@given(panel_geometries, frame_rates)
@settings(max_examples=30, deadline=None)
def test_burstlink_never_loses_to_baseline(resolution, fps):
    """On any feasible 60 Hz panel, BurstLink's average power never
    exceeds the conventional pipeline's — the paper's claim has no
    adversarial counterexample in the configuration space."""
    if fps > 60.0:
        return
    config = build_config(resolution, 60.0)
    frames = AnalyticContentModel().frames(resolution, 6)
    model = PowerModel()
    base = model.report(
        FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, fps
        )
    )
    burst = model.report(
        FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(frames, fps)
    )
    assert burst.average_power_mw < base.average_power_mw


@given(panel_geometries, frame_rates)
@settings(max_examples=30, deadline=None)
def test_bypass_eliminates_display_dram_traffic(resolution, fps):
    """For any configuration, the bypass path's DRAM traffic is exactly
    the encoded stream (write + read), independent of frame size."""
    if fps > 60.0:
        return
    config = build_config(resolution, 60.0)
    frames = AnalyticContentModel().frames(resolution, 6)
    run = FrameWindowSimulator(
        config, FrameBufferBypassScheme()
    ).run(frames, fps)
    encoded = 2 * sum(f.encoded_bytes for f in frames)
    assert run.timeline.dram_total_bytes == pytest.approx(
        encoded, rel=0.05
    )
