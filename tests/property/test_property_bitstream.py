"""Property-based tests for the bitstream layer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.video.bitstream import BitReader, BitWriter


@given(st.lists(st.integers(min_value=0, max_value=100000),
                max_size=50))
def test_ue_sequences_roundtrip(values):
    writer = BitWriter()
    for value in values:
        writer.write_ue(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_ue() for _ in values] == values


@given(st.lists(st.integers(min_value=-50000, max_value=50000),
                max_size=50))
def test_se_sequences_roundtrip(values):
    writer = BitWriter()
    for value in values:
        writer.write_se(value)
    reader = BitReader(writer.getvalue())
    assert [reader.read_se() for _ in values] == values


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=24),
            st.integers(min_value=0),
        ).map(lambda wv: (wv[0], wv[1] % (1 << wv[0]))),
        max_size=50,
    )
)
def test_fixed_width_fields_roundtrip(fields):
    writer = BitWriter()
    for width, value in fields:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue())
    assert [
        reader.read_bits(width) for width, _ in fields
    ] == [value for _, value in fields]


@given(
    st.lists(st.integers(min_value=0, max_value=1000), max_size=30),
    st.lists(st.integers(min_value=-1000, max_value=1000),
             max_size=30),
)
def test_mixed_streams_roundtrip(unsigned, signed):
    """Interleaving ue/se codes never desynchronises the stream."""
    writer = BitWriter()
    for u, s in zip(unsigned, signed):
        writer.write_ue(u)
        writer.write_se(s)
    reader = BitReader(writer.getvalue())
    for u, s in zip(unsigned, signed):
        assert reader.read_ue() == u
        assert reader.read_se() == s


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=200)
def test_ue_length_monotone_in_magnitude_class(value):
    """A UE code never gets shorter for a larger bit-length class."""
    writer_small = BitWriter()
    writer_small.write_ue(value)
    writer_big = BitWriter()
    writer_big.write_ue(value * 2 + 1)
    assert writer_big.bit_length >= writer_small.bit_length
