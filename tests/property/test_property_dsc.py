"""Property-based tests for the DSC line codec: the fixed-rate and
closed-loop guarantees must hold for arbitrary content."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.display.dsc import DscConfig, DscLineCodec

lines = arrays(
    dtype=np.uint8,
    shape=st.integers(min_value=2, max_value=200).map(lambda n: (n, 3)),
    elements=st.integers(min_value=0, max_value=255),
)

ratios = st.floats(min_value=1.6, max_value=2.0)


@given(lines)
@settings(max_examples=150, deadline=None)
def test_budget_never_exceeded(line):
    """The fixed-rate guarantee: no content, however adversarial, makes
    a line exceed its budget."""
    codec = DscLineCodec(DscConfig(ratio=2.0))
    assert len(codec.encode_line(line)) <= codec.budget(line.shape[0])


@given(lines)
@settings(max_examples=150, deadline=None)
def test_roundtrip_shape_and_dtype(line):
    codec = DscLineCodec(DscConfig(ratio=2.0))
    decoded = codec.decode_line(
        codec.encode_line(line), line.shape[0]
    )
    assert decoded.shape == line.shape
    assert decoded.dtype == np.uint8


@given(lines)
@settings(max_examples=150, deadline=None)
def test_first_pixel_always_exact(line):
    codec = DscLineCodec(DscConfig(ratio=2.0))
    decoded = codec.decode_line(
        codec.encode_line(line), line.shape[0]
    )
    assert np.array_equal(decoded[0], line[0])


@given(lines)
@settings(max_examples=100, deadline=None)
def test_error_bounded_by_step(line):
    """Closed-loop DPCM: per-sample error stays within about one step
    of the quantizer chosen for the channel (no unbounded drift)."""
    codec = DscLineCodec(DscConfig(ratio=2.0))
    encoded = codec.encode_line(line)
    steps = np.array([encoded[0], encoded[1], encoded[2]],
                     dtype=np.int64)
    decoded = codec.decode_line(encoded, line.shape[0])
    error = np.abs(decoded.astype(np.int64) - line.astype(np.int64))
    for channel in range(3):
        assert error[:, channel].max() <= 2 * steps[channel] + 1


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=2, max_value=100),
)
@settings(max_examples=100)
def test_constant_lines_are_lossless(value, pixels):
    """A flat line (zero deltas) must reconstruct exactly."""
    codec = DscLineCodec(DscConfig(ratio=2.0))
    line = np.full((pixels, 3), value, dtype=np.uint8)
    decoded = codec.decode_line(codec.encode_line(line), pixels)
    assert np.array_equal(decoded, line)
