"""Property-based equivalence: the batch window engine must be
indistinguishable from the scalar loop for every scheme, cadence, and
retain mode — energies to 1e-9 relative, identical stats and window
kinds — and vectorized plan pricing must match the scalar pricer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FHD, QHD, skylake_tablet
from repro.core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
)
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import install_run_memo
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel

QUANTITY_COLUMNS = PowerModel.QUANTITY_COLUMNS


@pytest.fixture(autouse=True)
def no_memo():
    previous = install_run_memo(None)
    yield
    install_run_memo(previous)


schemes = st.sampled_from(
    [
        ("conventional", ConventionalScheme, False),
        ("burstlink", BurstLinkScheme, True),
        ("bursting", FrameBurstingScheme, True),
        ("bypass", FrameBufferBypassScheme, False),
    ]
)
resolutions = st.sampled_from([FHD, QHD])
frame_rates = st.sampled_from([15.0, 24.0, 30.0, 60.0])
frame_counts = st.integers(min_value=1, max_value=10)
retains = st.sampled_from(["full", "summary"])
seeds = st.integers(min_value=0, max_value=2**16)


@given(schemes, resolutions, frame_rates, frame_counts, retains, seeds)
@settings(max_examples=40, deadline=None)
def test_batch_matches_scalar(
    scheme_spec, resolution, fps, count, retain, seed
):
    name, scheme_cls, needs_drfb = scheme_spec
    config = skylake_tablet(resolution)
    if needs_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(resolution, count, seed=seed)

    scalar = FrameWindowSimulator(config, scheme_cls()).run(
        frames, fps, retain=retain, engine="scalar"
    )
    batch = FrameWindowSimulator(config, scheme_cls()).run(
        frames, fps, retain=retain, engine="batch"
    )

    assert batch.stats == scalar.stats
    assert batch.summary.window_counts == scalar.summary.window_counts
    assert set(batch.summary.buckets) == set(scalar.summary.buckets)
    for cls_key, ref in scalar.summary.buckets.items():
        got = batch.summary.buckets[cls_key]
        assert got.segments == ref.segments
        assert got.seconds == pytest.approx(
            ref.seconds, rel=1e-9, abs=1e-15
        )
        assert got.dram_read_bytes == pytest.approx(
            ref.dram_read_bytes, rel=1e-9, abs=1e-9
        )
        assert got.edp_bytes == pytest.approx(
            ref.edp_bytes, rel=1e-9, abs=1e-9
        )

    ref_res = scalar.residency_fractions()
    got_res = batch.residency_fractions()
    assert set(ref_res) == set(got_res)
    for state, fraction in ref_res.items():
        assert got_res[state] == pytest.approx(
            fraction, rel=1e-9, abs=1e-12
        )

    model = PowerModel()
    ref_report = model.report(scalar)
    got_report = model.report(batch)
    assert got_report.total_energy_mj == pytest.approx(
        ref_report.total_energy_mj, rel=1e-9
    )
    for component, mj in ref_report.by_component_mj.items():
        assert got_report.by_component_mj[component] == pytest.approx(
            mj, rel=1e-9, abs=1e-9
        )


@given(resolutions, frame_rates, frame_counts, seeds)
@settings(max_examples=25, deadline=None)
def test_price_plan_matrix_matches_scalar_pricer(
    resolution, fps, count, seed
):
    """The vectorized pricer is the scalar per-class pricer, stacked."""
    import numpy as np

    config = skylake_tablet(resolution)
    frames = AnalyticContentModel().frames(resolution, count, seed=seed)
    run = FrameWindowSimulator(config, ConventionalScheme()).run(
        frames, fps, retain="summary", engine="scalar"
    )
    model = PowerModel()
    cls_keys = list(run.summary.buckets)
    quantities = np.array(
        [
            [getattr(run.summary.buckets[k], column)
             for column in QUANTITY_COLUMNS]
            for k in cls_keys
        ]
    )
    matrix = model.price_plan_matrix(
        cls_keys, quantities, config.panel
    )
    for row, cls_key in enumerate(cls_keys):
        scalar = model.class_component_energies(
            cls_key, run.summary.buckets[cls_key], config.panel
        )
        for col, component in enumerate(scalar):
            assert matrix[row, col] == pytest.approx(
                scalar[component], rel=1e-9, abs=1e-18
            )
