"""Property-based tests for cross-process metrics merging.

The shard protocol (:mod:`repro.obs.dist`) folds worker registry
snapshots into the parent in whatever order the shard directory yields
them, so the merge must be order-independent: commutative, associative,
and with the empty registry as identity.  Counters and bucket counts
use integer strategies so equality is exact (float addition would only
commute approximately).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry

#: Small shared bucket layout — merges require identical bounds.
BOUNDS = (1.0, 10.0, 100.0)

counter_values = st.dictionaries(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=1_000),
    max_size=3,
)

observations = st.lists(
    st.integers(min_value=0, max_value=500).map(
        lambda n: n / 2  # halves keep exact float arithmetic
    ),
    max_size=30,
)


def registry_from(counters, observed):
    reg = MetricsRegistry()
    for name, value in counters.items():
        reg.counter(name).inc(value)
    for value in observed:
        reg.histogram("lat", buckets=BOUNDS).observe(value)
    return reg


def merged(*registries):
    out = MetricsRegistry()
    for reg in registries:
        out.merge(reg)
    return out


@given(counter_values, counter_values, observations, observations)
@settings(max_examples=50, deadline=None)
def test_merge_is_commutative(ca, cb, oa, ob):
    a = registry_from(ca, oa)
    b = registry_from(cb, ob)
    assert (
        merged(a, b).snapshot() == merged(b, a).snapshot()
    )


@given(
    counter_values, counter_values, counter_values,
    observations, observations, observations,
)
@settings(max_examples=50, deadline=None)
def test_merge_is_associative(ca, cb, cc, oa, ob, oc):
    a = registry_from(ca, oa)
    b = registry_from(cb, ob)
    c = registry_from(cc, oc)
    left = merged(merged(a, b), c)
    right = merged(a, merged(b, c))
    assert left.snapshot() == right.snapshot()


@given(counter_values, observations)
@settings(max_examples=50, deadline=None)
def test_empty_registry_is_identity(counters, observed):
    a = registry_from(counters, observed)
    assert merged(a, MetricsRegistry()).snapshot() == a.snapshot()
    assert merged(MetricsRegistry(), a).snapshot() == a.snapshot()


@given(observations, observations)
@settings(max_examples=50, deadline=None)
def test_histogram_merge_adds_bucket_wise(oa, ob):
    """Merging two histograms equals observing the concatenation."""
    a = registry_from({}, oa)
    b = registry_from({}, ob)
    both = registry_from({}, oa + ob)
    combined = merged(a, b)
    if not (oa or ob):
        return  # neither side created the histogram
    merged_h = combined.get("lat")
    direct_h = both.get("lat")
    assert merged_h.bucket_counts == direct_h.bucket_counts
    assert merged_h.count == direct_h.count
    assert merged_h.total == direct_h.total
    assert merged_h.minimum == direct_h.minimum
    assert merged_h.maximum == direct_h.maximum


@given(
    st.lists(
        st.integers(min_value=0, max_value=500).map(lambda n: n / 2),
        min_size=1,
        max_size=30,
    ),
    st.lists(
        st.integers(min_value=0, max_value=500).map(lambda n: n / 2),
        max_size=30,
    ),
    st.sampled_from([0.0, 0.25, 0.5, 0.9, 0.99, 1.0]),
)
@settings(max_examples=50, deadline=None)
def test_quantile_stable_under_merge(oa, ob, q):
    """A merged histogram's quantile stays inside the union's observed
    range (the interpolation cannot invent out-of-range values), and
    merging identical distributions never shifts the estimate."""
    h = Histogram("lat", buckets=BOUNDS)
    for value in oa + ob:
        h.observe(value)
    merged_h = Histogram("lat", buckets=BOUNDS)
    a = Histogram("lat", buckets=BOUNDS)
    for value in oa:
        a.observe(value)
    b = Histogram("lat", buckets=BOUNDS)
    for value in ob:
        b.observe(value)
    merged_h.merge_snapshot(a.snapshot())
    merged_h.merge_snapshot(b.snapshot())
    lo, hi = min(oa + ob), max(oa + ob)
    assert lo <= merged_h.quantile(q) <= hi
    # Bucket-level state is identical, so the estimator agrees exactly
    # with the directly observed histogram.
    assert merged_h.quantile(q) == h.quantile(q)


@given(
    st.lists(
        st.integers(min_value=0, max_value=500).map(lambda n: n / 2),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=2, max_value=4),
    st.sampled_from([0.5, 0.9, 1.0]),
)
@settings(max_examples=30, deadline=None)
def test_quantile_invariant_to_self_merge(observed, copies, q):
    """N workers observing the same distribution merge to the same
    quantile estimate as one worker observing it once."""
    single = Histogram("lat", buckets=BOUNDS)
    for value in observed:
        single.observe(value)
    folded = Histogram("lat", buckets=BOUNDS)
    for _ in range(copies):
        folded.merge_snapshot(single.snapshot())
    # The target rank scales by `copies`, so the in-bucket
    # interpolation agrees only to float rounding (q * count is not
    # exact), never structurally.
    assert math.isclose(
        folded.quantile(q),
        single.quantile(q),
        rel_tol=1e-12,
        abs_tol=1e-12,
    )
