"""Property-based invariants over simulator traces.

Whatever the scheme, cadence, or content seed, a captured trace must be
structurally sound: spans strictly nested and balanced, exactly one
span per planned refresh window, the C-state segments inside a window
tiling its period exactly, and cache counter events reconciling with
:class:`~repro.analysis.runner.CacheStats`.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.runner import SimulationCache
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.obs.trace import Tracer, tracing
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import install_run_memo
from repro.video.source import AnalyticContentModel

SCHEMES = {
    "conventional": (ConventionalScheme, False),
    "burstlink": (BurstLinkScheme, True),
}

run_parameters = st.fixed_dictionaries(
    {
        "scheme": st.sampled_from(sorted(SCHEMES)),
        "frame_count": st.integers(min_value=1, max_value=5),
        "fps": st.sampled_from((24.0, 30.0, 60.0)),
        "seed": st.integers(min_value=0, max_value=3),
    }
)


def _traced_run(scheme, frame_count, fps, seed, memo=None):
    factory, needs_drfb = SCHEMES[scheme]
    config = skylake_tablet(FHD)
    if needs_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(FHD, frame_count, seed=seed)
    previous = install_run_memo(memo)
    try:
        with tracing() as tracer:
            run = FrameWindowSimulator(config, factory()).run(
                frames, fps
            )
    finally:
        install_run_memo(previous)
    return tracer, run


def _window_spans(tracer: Tracer):
    """(begin, end) event pairs for every ``sim.window`` span."""
    begins = {
        e["seq"]: e
        for e in tracer.events
        if e["kind"] == "B" and e["name"] == "sim.window"
    }
    return [
        (begins[e["span"]], e)
        for e in tracer.events
        if e["kind"] == "E" and e["span"] in begins
    ]


@settings(max_examples=12, deadline=None)
@given(parameters=run_parameters)
def test_spans_nest_and_balance(parameters):
    tracer, _ = _traced_run(**parameters)
    stack = []
    for event in tracer.events:
        if event["kind"] == "B":
            if stack:
                assert event["parent"] == stack[-1]
            stack.append(event["seq"])
        elif event["kind"] == "E":
            assert stack, "span end with no span open"
            assert stack.pop() == event["span"]
    assert stack == [], "spans left open"
    assert tracer.open_spans == 0


@settings(max_examples=12, deadline=None)
@given(parameters=run_parameters)
def test_every_window_emits_exactly_one_span(parameters):
    tracer, run = _traced_run(**parameters)
    windows = _window_spans(tracer)
    assert len(windows) == run.stats.windows
    indices = [begin["attrs"]["index"] for begin, _ in windows]
    assert indices == sorted(set(indices)), "duplicate or unordered"


@settings(max_examples=12, deadline=None)
@given(parameters=run_parameters)
def test_segments_tile_each_window_period(parameters):
    tracer, run = _traced_run(**parameters)
    period = 1.0 / run.config.panel.refresh_hz
    # Group segment events under their parent window span.
    per_window: dict[int, float] = {}
    for event in tracer.events:
        if event["kind"] == "I" and event["name"] == "sim.segment":
            parent = event["parent"]
            per_window[parent] = (
                per_window.get(parent, 0.0)
                + event["attrs"]["duration"]
            )
    assert len(per_window) == run.stats.windows
    for begin, end in _window_spans(tracer):
        total = per_window[begin["seq"]]
        assert math.isclose(total, period, abs_tol=1e-7)
        assert math.isclose(
            end["t"] - begin["t"], period, abs_tol=1e-7
        )


@settings(max_examples=10, deadline=None)
@given(
    parameters=run_parameters,
    repeats=st.integers(min_value=1, max_value=3),
)
def test_cache_counter_events_reconcile_with_stats(parameters, repeats):
    cache = SimulationCache()
    previous = install_run_memo(cache)
    try:
        with tracing() as tracer:
            for _ in range(repeats + 1):
                factory, needs_drfb = SCHEMES[parameters["scheme"]]
                config = skylake_tablet(FHD)
                if needs_drfb:
                    config = config.with_drfb()
                frames = AnalyticContentModel().frames(
                    FHD, parameters["frame_count"],
                    seed=parameters["seed"],
                )
                FrameWindowSimulator(config, factory()).run(
                    frames, parameters["fps"]
                )
    finally:
        install_run_memo(previous)
    names = [e["name"] for e in tracer.events if e["kind"] == "I"]
    assert names.count("cache.hit") == cache.stats.hits == repeats
    assert names.count("cache.miss") == cache.stats.misses == 1
    assert names.count("cache.store") == cache.stats.stores == 1
