"""Property-based tests for fleet population aggregation.

The fleet engine folds per-shard aggregates into one population
aggregate, and resume re-folds a mix of checkpointed and fresh shards,
so the merge must be commutative, associative, and have the empty
aggregate as identity — and any partition of the device range into
shards must reproduce the sequential fold exactly.  Device records use
dyadic-rational powers so float addition is exact and equality can be
byte-strict.  Quantile estimates interpolate inside histogram buckets,
so they may deviate from the true order statistic by at most one
bucket width.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.aggregate import (
    POWER_BUCKETS_MW,
    FleetAggregate,
)
from repro.fleet.spec import spec_from_dict

SPEC = spec_from_dict(
    {
        "fleet": {
            "devices": 64,
            "seed": 1,
            "schemes": ["burstlink"],
        }
    }
)

STRATA = ("a|FHD|60Hz|30fps", "b|4K|120Hz|60fps")

# Every numeric field is dyadic (a small integer over a power of two)
# so all sums inside the aggregate are exact in binary floating point
# and merged payloads compare byte-equal.  The records need not be
# physically consistent — the aggregate treats them as opaque numbers.
powers = st.integers(min_value=8, max_value=40_000).map(
    lambda n: n / 8
)
hours = st.integers(min_value=1, max_value=640).map(
    lambda n: n / 16
)
reductions = st.integers(min_value=-1024, max_value=1024).map(
    lambda n: n / 1024
)

records = st.builds(
    lambda index, stratum, base, burst, life, cut, flip: {
        "index": index,
        "stratum": stratum,
        "power_mw": {"conventional": base, "burstlink": burst},
        "battery_h": {
            "conventional": life,
            "burstlink": life * 2,
        },
        "reduction": {"burstlink": cut},
        "winner": "burstlink" if flip else "conventional",
    },
    st.integers(min_value=0, max_value=63),
    st.sampled_from(STRATA),
    powers,
    powers,
    hours,
    reductions,
    st.booleans(),
)

record_lists = st.lists(records, max_size=24)


def aggregate_from(batch):
    out = FleetAggregate(SPEC)
    for item in batch:
        out.add_device(item)
    return out


def merged(*aggregates):
    out = FleetAggregate(SPEC)
    for item in aggregates:
        out.merge(item)
    return out


@given(record_lists, record_lists)
@settings(max_examples=50, deadline=None)
def test_merge_is_commutative(batch_a, batch_b):
    a, b = aggregate_from(batch_a), aggregate_from(batch_b)
    assert merged(a, b).to_payload() == merged(b, a).to_payload()


@given(record_lists, record_lists, record_lists)
@settings(max_examples=50, deadline=None)
def test_merge_is_associative(batch_a, batch_b, batch_c):
    a, b, c = (
        aggregate_from(batch_a),
        aggregate_from(batch_b),
        aggregate_from(batch_c),
    )
    left = merged(merged(a, b), c)
    right = merged(a, merged(b, c))
    assert left.to_payload() == right.to_payload()


@given(record_lists)
@settings(max_examples=50, deadline=None)
def test_empty_aggregate_is_identity(batch):
    a = aggregate_from(batch)
    assert (
        merged(a, FleetAggregate(SPEC)).to_payload()
        == a.to_payload()
    )
    assert (
        merged(FleetAggregate(SPEC), a).to_payload()
        == a.to_payload()
    )


@given(
    record_lists,
    st.lists(
        st.integers(min_value=1, max_value=24),
        min_size=1,
        max_size=6,
    ),
)
@settings(max_examples=50, deadline=None)
def test_any_sharding_matches_the_sequential_fold(batch, sizes):
    """Splitting the device stream at arbitrary points and folding the
    shards back must equal adding every record sequentially — this is
    the invariant that makes checkpoint/resume byte-identical."""
    sequential = aggregate_from(batch)
    shards, cursor = [], 0
    for size in sizes:
        shards.append(aggregate_from(batch[cursor : cursor + size]))
        cursor += size
    shards.append(aggregate_from(batch[cursor:]))
    assert merged(*shards).to_payload() == sequential.to_payload()


@given(st.lists(powers, min_size=1, max_size=24))
@settings(max_examples=50, deadline=None)
def test_quantiles_within_one_bucket_of_truth(values):
    """The estimator interpolates inside the bucket holding the
    ``ceil(q * count)``-th observation; that order statistic lives in
    the same bucket, so the two differ by at most one bucket width."""
    width = POWER_BUCKETS_MW[1] - POWER_BUCKETS_MW[0]
    aggregate = FleetAggregate(SPEC)
    for index, base in enumerate(values):
        aggregate.add_device(
            {
                "index": index,
                "stratum": STRATA[0],
                "power_mw": {
                    "conventional": base,
                    "burstlink": base,
                },
                "battery_h": {
                    "conventional": 1.0,
                    "burstlink": 1.0,
                },
                "reduction": {"burstlink": 0.0},
                "winner": "burstlink",
            }
        )
    ordered = sorted(values)
    histogram = aggregate.power["conventional"]
    for quantile in (0.05, 0.25, 0.5, 0.75, 0.95):
        rank = max(1, math.ceil(quantile * len(ordered)))
        truth = ordered[min(rank, len(ordered)) - 1]
        estimate = histogram.quantile(quantile)
        assert abs(estimate - truth) <= width
