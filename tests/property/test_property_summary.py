"""Property-based equivalence of the streaming aggregates.

Two families of properties gate the streaming core:

* ``TimelineSummary.from_timeline`` reproduces every quantity the
  analysis layer reads from a materialized :class:`Timeline` — duration,
  residencies, transition count/time, DRAM/eDP byte totals — to 1e-12
  relative, for arbitrary builder-generated segment streams; and
* repeat-window collapsing is invisible: collapse-on and collapse-off
  runs produce identical :class:`RunStats` and matching per-component
  power breakdowns for randomized scheme/fps/frame-count combinations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FHD, skylake_tablet
from repro.core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
)
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.builder import TimelineBuilder
from repro.pipeline.sim import install_run_memo
from repro.pipeline.timeline import TimelineSummary
from repro.power import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


@pytest.fixture(autouse=True, scope="module")
def no_memo():
    """Property runs must never be served from the run cache."""
    previous = install_run_memo(None)
    yield
    install_run_memo(previous)


states = st.sampled_from(
    [
        PackageCState.C0,
        PackageCState.C2,
        PackageCState.C7,
        PackageCState.C7_PRIME,
        PackageCState.C8,
        PackageCState.C9,
    ]
)

#: (duration, state, dram bandwidth, eDP rate); bandwidth only applies
#: in states where DRAM is awake (self-refresh states reject traffic).
phases = st.lists(
    st.tuples(
        st.floats(min_value=1e-3, max_value=20e-3),
        states,
        st.floats(min_value=0.0, max_value=1e9),
        st.floats(min_value=0.0, max_value=1e9),
    ),
    min_size=1,
    max_size=30,
)


def _build(phase_list):
    builder = TimelineBuilder(initial_state=PackageCState.C0)
    for duration, state, bandwidth, edp_rate in phase_list:
        attrs = {"edp_rate": edp_rate}
        if not state.dram_in_self_refresh:
            attrs["dram_read_bw"] = bandwidth
            attrs["dram_write_bw"] = bandwidth / 2
        builder.add(duration, state, **attrs)
    return builder.build()


def _close(actual, expected, rel=1e-12):
    assert actual == pytest.approx(expected, rel=rel, abs=1e-15)


@given(phases)
@settings(max_examples=80, deadline=None)
def test_summary_matches_timeline_aggregates(phase_list):
    timeline = _build(phase_list)
    summary = TimelineSummary.from_timeline(timeline)
    _close(summary.duration, timeline.duration)
    assert summary.segment_count == len(timeline)
    _close(summary.dram_read_bytes, timeline.dram_read_bytes)
    _close(summary.dram_write_bytes, timeline.dram_write_bytes)
    _close(summary.edp_bytes, timeline.edp_bytes)


@given(phases)
@settings(max_examples=80, deadline=None)
def test_summary_matches_residencies(phase_list):
    timeline = _build(phase_list)
    summary = TimelineSummary.from_timeline(timeline)
    for fold_prime in (True, False):
        expected = timeline.residencies(fold_prime)
        actual = summary.residencies(fold_prime)
        assert set(actual) == set(expected)
        for state, seconds in expected.items():
            _close(actual[state], seconds)


@given(phases)
@settings(max_examples=80, deadline=None)
def test_summary_matches_transitions(phase_list):
    timeline = _build(phase_list)
    summary = TimelineSummary.from_timeline(timeline)
    assert summary.transition_count() == timeline.transition_count()
    _close(summary.transition_time(), timeline.transition_time())


@given(phases, phases)
@settings(max_examples=40, deadline=None)
def test_absorb_is_additive(first, second):
    """Folding two digests equals summarising the concatenation."""
    a, b = _build(first), _build(second)
    combined = TimelineSummary.from_timeline(a)
    combined.absorb(TimelineSummary.from_timeline(b))
    _close(combined.duration, a.duration + b.duration)
    _close(
        combined.dram_read_bytes,
        a.dram_read_bytes + b.dram_read_bytes,
    )
    _close(combined.edp_bytes, a.edp_bytes + b.edp_bytes)
    assert combined.transition_count() == (
        a.transition_count() + b.transition_count()
    )


scheme_specs = st.sampled_from(
    [
        (ConventionalScheme, False),
        (BurstLinkScheme, True),
        (FrameBurstingScheme, True),
        (FrameBufferBypassScheme, False),
    ]
)


@given(
    scheme_specs,
    st.integers(min_value=2, max_value=6),
    st.sampled_from([10.0, 15.0, 30.0]),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_collapse_is_invisible(spec, frame_count, fps, seed):
    factory, needs_drfb = spec
    config = skylake_tablet(FHD)
    if needs_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(FHD, frame_count, seed=seed)
    fresh = FrameWindowSimulator(config, factory()).run(
        frames, fps, collapse=False
    )
    collapsed = FrameWindowSimulator(config, factory()).run(
        frames, fps, collapse=True
    )
    assert collapsed.stats == fresh.stats
    reference = PowerModel().report(fresh)
    replayed = PowerModel().report(collapsed)
    assert replayed.total_energy_mj == pytest.approx(
        reference.total_energy_mj, rel=1e-9
    )
    for component, mj in reference.by_component_mj.items():
        assert replayed.by_component_mj[component] == pytest.approx(
            mj, rel=1e-9, abs=1e-9
        )


@given(
    scheme_specs,
    st.sampled_from(["full", "summary"]),
    st.integers(min_value=0, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_retain_mode_is_invisible(spec, retain, seed):
    """Whatever the run retains, the priced result is the same."""
    factory, needs_drfb = spec
    config = skylake_tablet(FHD)
    if needs_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(FHD, 4, seed=seed)
    full = FrameWindowSimulator(config, factory()).run(
        frames, 30.0, retain="full"
    )
    other = FrameWindowSimulator(config, factory()).run(
        frames, 30.0, retain=retain
    )
    assert other.stats == full.stats
    assert PowerModel().report(other).total_energy_mj == (
        pytest.approx(
            PowerModel().report(full).total_energy_mj, rel=1e-9
        )
    )
