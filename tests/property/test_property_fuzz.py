"""Bitstream fuzzing: corrupted inputs must fail *loudly or safely*.

A decoder fed a damaged stream may either raise :class:`CodecError`
(detected corruption) or produce a structurally valid frame (the damage
landed in coefficient data) — but it must never crash with an unrelated
exception, hang, or emit a malformed array.  Same contract for the DSC
line codec.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.display.dsc import DscConfig, DscLineCodec
from repro.video.codec import Codec, CodecConfig
from repro.video.frames import EncodedFrame, FrameType


def reference_frame():
    ys, xs = np.mgrid[0:32, 0:32]
    return np.stack(
        [(xs * 5) % 256, (ys * 3) % 256, (xs + ys) % 256], axis=-1
    ).astype(np.uint8)


def encoded_reference():
    codec = Codec(CodecConfig(qstep=10.0))
    encoded, _ = codec.encode_frame(0, reference_frame(), FrameType.I)
    return codec, encoded


_CODEC, _ENCODED = encoded_reference()


@given(
    st.integers(min_value=1, max_value=len(_ENCODED.payload) - 1),
    st.integers(min_value=0, max_value=7),
)
@settings(max_examples=150, deadline=None)
def test_bit_flips_fail_safely(byte_index, bit):
    """Any single bit flip after the magic byte either raises
    CodecError or decodes to a well-formed frame."""
    payload = bytearray(_ENCODED.payload)
    payload[byte_index] ^= 1 << bit
    damaged = EncodedFrame(
        index=_ENCODED.index,
        frame_type=_ENCODED.frame_type,
        width=_ENCODED.width,
        height=_ENCODED.height,
        payload=bytes(payload),
    )
    try:
        decoded = _CODEC.decode_frame(damaged)
    except CodecError:
        return
    assert decoded.pixels.shape == (32, 32, 3)
    assert decoded.pixels.dtype == np.uint8


@given(
    st.integers(min_value=1, max_value=len(_ENCODED.payload) - 1)
)
@settings(max_examples=100, deadline=None)
def test_truncation_fails_safely(cut):
    payload = _ENCODED.payload[:cut]
    damaged = EncodedFrame(
        index=0,
        frame_type=FrameType.I,
        width=32,
        height=32,
        payload=payload,
    )
    try:
        decoded = _CODEC.decode_frame(damaged)
    except CodecError:
        return
    assert decoded.pixels.shape == (32, 32, 3)


@given(st.binary(min_size=0, max_size=64))
@settings(max_examples=150)
def test_garbage_streams_rejected_or_safe(garbage):
    """Pure garbage must not crash the decoder with anything but
    CodecError."""
    damaged = EncodedFrame(
        index=0,
        frame_type=FrameType.I,
        width=32,
        height=32,
        payload=garbage,
    )
    try:
        decoded = _CODEC.decode_frame(damaged)
    except CodecError:
        return
    assert decoded.pixels.shape == (32, 32, 3)


@given(st.binary(min_size=0, max_size=128),
       st.integers(min_value=2, max_value=64))
@settings(max_examples=150)
def test_dsc_decoder_fuzz(garbage, pixels):
    """The DSC line decoder has the same contract."""
    codec = DscLineCodec(DscConfig(ratio=2.0))
    try:
        line = codec.decode_line(garbage, pixels)
    except CodecError:
        return
    assert line.shape == (pixels, 3)
    assert line.dtype == np.uint8
