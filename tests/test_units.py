"""Unit-conversion helpers."""

import pytest

from repro import units
from repro.units import (
    BITS_PER_BYTE,
    GIB,
    KIB,
    MIB,
    energy_mj,
    gb_per_s,
    gbps,
    gib,
    kib,
    mbps,
    mib,
    mj_to_j,
    ms,
    sustained_bandwidth,
    to_gb_per_s,
    to_gbps,
    to_mib,
    to_ms,
    to_us,
    to_watts,
    transfer_time,
    us,
    watts,
)


class TestSizes:
    def test_kib(self):
        assert kib(1) == 1024

    def test_mib(self):
        assert mib(1) == 1024 * 1024

    def test_gib(self):
        assert gib(2) == 2 * 1024 ** 3

    def test_constants_consistent(self):
        assert MIB == 1024 * KIB
        assert GIB == 1024 * MIB

    def test_to_mib_roundtrip(self):
        assert to_mib(mib(24)) == pytest.approx(24.0)


class TestTime:
    def test_ms(self):
        assert ms(16.67) == pytest.approx(0.01667)

    def test_us(self):
        assert us(250) == pytest.approx(250e-6)

    def test_roundtrips(self):
        assert to_ms(ms(3.5)) == pytest.approx(3.5)
        assert to_us(us(42)) == pytest.approx(42.0)


class TestBandwidth:
    def test_gbps_is_bits(self):
        # 25.92 Gbps = 3.24 GB/s.
        assert gbps(25.92) == pytest.approx(3.24e9)

    def test_mbps(self):
        assert mbps(8) == pytest.approx(1e6)

    def test_gb_per_s(self):
        assert gb_per_s(1.5) == pytest.approx(1.5e9)

    def test_roundtrips(self):
        assert to_gbps(gbps(11.3)) == pytest.approx(11.3)
        assert to_gb_per_s(gb_per_s(4)) == pytest.approx(4.0)

    def test_bits_per_byte(self):
        assert BITS_PER_BYTE == 8


class TestPowerEnergy:
    def test_watts(self):
        assert watts(2.162) == pytest.approx(2162.0)

    def test_to_watts(self):
        assert to_watts(1274) == pytest.approx(1.274)

    def test_energy_is_power_times_time(self):
        # 1000 mW for 2 s = 2000 mJ.
        assert energy_mj(1000.0, 2.0) == pytest.approx(2000.0)

    def test_mj_to_j(self):
        assert mj_to_j(2500) == pytest.approx(2.5)


class TestTransferArithmetic:
    def test_transfer_time_4k_burst(self):
        # The paper's Sec. 3: a 4K frame over eDP 1.4 takes ~7.2-7.7 ms.
        frame = 3840 * 2160 * 3
        assert transfer_time(frame, gbps(25.92)) == pytest.approx(
            7.68e-3, rel=1e-3
        )

    def test_transfer_time_zero_bytes(self):
        assert transfer_time(0, gbps(1)) == 0.0

    def test_transfer_time_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            transfer_time(100, 0)

    def test_transfer_time_rejects_negative_size(self):
        with pytest.raises(ValueError):
            transfer_time(-1, gbps(1))

    def test_sustained_bandwidth(self):
        assert sustained_bandwidth(1e9, 2.0) == pytest.approx(0.5e9)

    def test_sustained_bandwidth_zero_over_zero(self):
        assert sustained_bandwidth(0, 0) == 0.0

    def test_sustained_bandwidth_rejects_instant_transfer(self):
        with pytest.raises(ValueError):
            sustained_bandwidth(10, 0)

    def test_sustained_bandwidth_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            sustained_bandwidth(10, -1)

    def test_module_has_no_float_surprises(self):
        # mW * s must equal mJ exactly in the canonical system.
        assert units.energy_mj(1.0, 1.0) == 1.0
