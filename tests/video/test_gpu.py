"""The GPU IP: gnomonic projection and timing."""

import numpy as np
import pytest

from repro.config import Resolution
from repro.errors import ConfigurationError
from repro.video.gpu import GpuIP, Viewport


def banded_sphere(height=90, width=180):
    """An equirectangular frame whose red channel encodes longitude and
    green channel encodes latitude."""
    lat = np.linspace(0, 255, height).astype(np.uint8)[:, None]
    lon = np.linspace(0, 255, width).astype(np.uint8)[None, :]
    sphere = np.zeros((height, width, 3), dtype=np.uint8)
    sphere[..., 0] = lon
    sphere[..., 1] = lat
    return sphere


@pytest.fixture
def gpu():
    return GpuIP()


class TestViewport:
    def test_bad_fov_rejected(self):
        with pytest.raises(ConfigurationError):
            Viewport(fov=0)
        with pytest.raises(ConfigurationError):
            Viewport(fov=180)

    def test_bad_pitch_rejected(self):
        with pytest.raises(ConfigurationError):
            Viewport(pitch=91)


class TestProjection:
    def test_output_shape(self, gpu):
        out = gpu.project(
            banded_sphere(), Viewport(), Resolution(64, 48)
        )
        assert out.shape == (48, 64, 3)

    def test_forward_view_samples_frame_center(self, gpu):
        sphere = banded_sphere()
        out = gpu.project(sphere, Viewport(yaw=0, pitch=0),
                          Resolution(33, 33))
        center = out[16, 16]
        # Longitude 0 maps to the horizontal middle of the sphere.
        assert abs(int(center[0]) - 127) < 12
        assert abs(int(center[1]) - 127) < 12

    def test_yaw_pans_longitude(self, gpu):
        sphere = banded_sphere()
        left = gpu.project(sphere, Viewport(yaw=-60),
                           Resolution(33, 33))
        right = gpu.project(sphere, Viewport(yaw=60),
                            Resolution(33, 33))
        assert right[16, 16, 0] > left[16, 16, 0]

    def test_pitch_moves_latitude(self, gpu):
        # Positive pitch looks up -> samples lower latitudes (smaller
        # green in the banded sphere).
        sphere = banded_sphere()
        looking_up = gpu.project(
            sphere, Viewport(pitch=50), Resolution(33, 33)
        )
        looking_down = gpu.project(
            sphere, Viewport(pitch=-50), Resolution(33, 33)
        )
        assert looking_down[16, 16, 1] > looking_up[16, 16, 1]

    def test_yaw_wraps_around(self, gpu):
        sphere = banded_sphere()
        a = gpu.project(sphere, Viewport(yaw=10), Resolution(17, 17))
        b = gpu.project(sphere, Viewport(yaw=370), Resolution(17, 17))
        # Trig rounding can shift isolated samples by one texel at most.
        matching = np.mean(a == b)
        assert matching > 0.95

    def test_wider_fov_sees_more_longitude(self, gpu):
        sphere = banded_sphere()
        narrow = gpu.project(sphere, Viewport(fov=40),
                             Resolution(33, 33))
        wide = gpu.project(sphere, Viewport(fov=120),
                           Resolution(33, 33))
        assert np.ptp(wide[16, :, 0]) > np.ptp(narrow[16, :, 0])

    def test_bad_frame_shape_rejected(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.project(
                np.zeros((10, 10), dtype=np.uint8),
                Viewport(),
                Resolution(8, 8),
            )

    def test_counters(self, gpu):
        gpu.project(banded_sphere(), Viewport(), Resolution(8, 8))
        assert gpu.frames_projected == 1
        assert gpu.pixels_projected == 64


class TestTiming:
    def test_delegates_to_config(self, gpu):
        assert gpu.projection_time(1e6, 30.0) == pytest.approx(
            gpu.config.projection_time(1e6, 30.0)
        )

    def test_motion_costs_more(self, gpu):
        assert gpu.projection_time(1e6, 200.0) > gpu.projection_time(
            1e6, 0.0
        )
