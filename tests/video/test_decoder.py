"""The VD IP: destination selection, timing, and halt/wake."""

import pytest

from repro.config import FHD, VideoDecoderConfig
from repro.errors import DataPathError
from repro.soc.registers import PlaneDescriptor, PlaneType, RegisterFile
from repro.video.codec import Codec, CodecConfig
from repro.video.decoder import Destination, VideoDecoderIP
from repro.video.frames import FrameType


@pytest.fixture
def decoder():
    return VideoDecoderIP(
        codec=Codec(CodecConfig(qstep=10.0)),
        registers=RegisterFile.full_screen_video(),
    )


class TestDestinationSelector:
    def test_bypass_when_eligible(self, decoder):
        assert decoder.select_destination() is (
            Destination.DISPLAY_CONTROLLER
        )

    def test_dram_when_multi_plane(self, decoder):
        decoder.registers.register_plane(
            PlaneDescriptor(PlaneType.GRAPHICS)
        )
        assert decoder.select_destination() is (
            Destination.DRAM_FRAME_BUFFER
        )

    def test_dram_when_fallback_triggered(self, decoder):
        decoder.registers.graphics_interrupt = True
        assert decoder.select_destination() is (
            Destination.DRAM_FRAME_BUFFER
        )

    def test_dram_without_registers(self):
        headless = VideoDecoderIP()
        assert headless.select_destination() is (
            Destination.DRAM_FRAME_BUFFER
        )


class TestTiming:
    def test_race_uses_max_rate(self):
        decoder = VideoDecoderIP()
        frame = FHD.frame_bytes()
        assert decoder.decode_time(frame, 1 / 60, race=True) == (
            pytest.approx(frame / decoder.config.max_output_rate)
        )

    def test_latency_tolerant_is_slower(self):
        decoder = VideoDecoderIP()
        frame = FHD.frame_bytes()
        assert decoder.decode_time(frame, 1 / 60, race=False) > (
            decoder.decode_time(frame, 1 / 60, race=True)
        )


class TestHaltWake:
    def test_wake_pays_latency_once(self):
        decoder = VideoDecoderIP()
        decoder.halt()
        assert decoder.wake() == decoder.config.wake_latency
        assert decoder.wake() == 0.0

    def test_halted_decoder_refuses_work(self, decoder, small_clip):
        encoded, _ = decoder.codec.encode_frame(
            0, small_clip[0], FrameType.I
        )
        decoder.halt()
        with pytest.raises(DataPathError):
            decoder.decode(encoded)


class TestFunctionalDecode:
    def test_decode_records_accounting(self, decoder, small_clip):
        encoded, _ = decoder.codec.encode_frame(
            0, small_clip[0], FrameType.I
        )
        frame = decoder.decode(encoded)
        assert decoder.frames_decoded == 1
        record = decoder.records[0]
        assert record.encoded_bytes == encoded.size_bytes
        assert record.decoded_bytes == frame.size_bytes
        assert record.destination is Destination.DISPLAY_CONTROLLER
        assert record.duration > 0

    def test_byte_routing_split(self, decoder, small_clip):
        encoded, recon = decoder.codec.encode_frame(
            0, small_clip[0], FrameType.I
        )
        decoder.decode(encoded)
        assert decoder.bytes_to_dc == small_clip[0].nbytes
        assert decoder.bytes_to_dram == 0
        # Break eligibility and decode again: bytes go to DRAM.
        decoder.registers.open_video_session()
        encoded2, _ = decoder.codec.encode_frame(
            1, small_clip[1], FrameType.P, past=recon
        )
        decoder.decode(encoded2, past=recon)
        assert decoder.bytes_to_dram == small_clip[1].nbytes
