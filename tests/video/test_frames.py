"""Frame and GOP types."""

import numpy as np
import pytest

from repro.errors import CodecError, ConfigurationError
from repro.video.frames import (
    DecodedFrame,
    EncodedFrame,
    FrameType,
    GopStructure,
)


class TestFrameType:
    def test_reference_needs(self):
        assert not FrameType.I.needs_past_reference
        assert FrameType.P.needs_past_reference
        assert FrameType.B.needs_past_reference
        assert FrameType.B.needs_future_reference
        assert not FrameType.P.needs_future_reference


class TestEncodedFrame:
    def test_sizes(self):
        frame = EncodedFrame(0, FrameType.I, 64, 32, b"x" * 100)
        assert frame.size_bytes == 100
        assert frame.decoded_bytes == 64 * 32 * 3
        assert frame.compression_ratio == pytest.approx(61.44)

    def test_empty_payload_has_no_ratio(self):
        frame = EncodedFrame(0, FrameType.I, 64, 32, b"")
        with pytest.raises(CodecError):
            _ = frame.compression_ratio

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodedFrame(0, FrameType.I, 0, 32, b"x")

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            EncodedFrame(-1, FrameType.I, 64, 32, b"x")


class TestDecodedFrame:
    def test_geometry(self):
        pixels = np.zeros((32, 64, 3), dtype=np.uint8)
        frame = DecodedFrame(0, FrameType.I, pixels)
        assert (frame.width, frame.height) == (64, 32)
        assert frame.size_bytes == 32 * 64 * 3

    def test_psnr_identity_is_infinite(self):
        pixels = np.random.default_rng(0).integers(
            0, 256, (16, 16, 3), dtype=np.uint8
        )
        frame = DecodedFrame(0, FrameType.I, pixels)
        assert frame.psnr(frame) == float("inf")

    def test_psnr_known_value(self):
        a = DecodedFrame(
            0, FrameType.I, np.zeros((16, 16, 3), dtype=np.uint8)
        )
        b = DecodedFrame(
            0, FrameType.I, np.full((16, 16, 3), 255, dtype=np.uint8)
        )
        assert a.psnr(b) == pytest.approx(0.0, abs=1e-9)

    def test_psnr_shape_mismatch(self):
        a = DecodedFrame(
            0, FrameType.I, np.zeros((16, 16, 3), dtype=np.uint8)
        )
        b = DecodedFrame(
            0, FrameType.I, np.zeros((32, 16, 3), dtype=np.uint8)
        )
        with pytest.raises(CodecError):
            a.psnr(b)

    def test_wrong_shape_rejected(self):
        with pytest.raises(CodecError):
            DecodedFrame(
                0, FrameType.I, np.zeros((16, 16), dtype=np.uint8)
            )

    def test_wrong_dtype_rejected(self):
        with pytest.raises(CodecError):
            DecodedFrame(
                0, FrameType.I, np.zeros((16, 16, 3), dtype=np.int16)
            )


class TestGopStructure:
    def test_pattern_repeats(self):
        gop = GopStructure("IPPP")
        assert gop.frame_type(0) is FrameType.I
        assert gop.frame_type(3) is FrameType.P
        assert gop.frame_type(4) is FrameType.I

    def test_type_counts(self):
        counts = GopStructure("IBBP").type_counts()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.B] == 2
        assert counts[FrameType.P] == 1

    def test_must_start_with_i(self):
        with pytest.raises(ConfigurationError):
            GopStructure("PPPP")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            GopStructure("")

    def test_rejects_unknown_types(self):
        with pytest.raises(ConfigurationError):
            GopStructure("IPX")

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            GopStructure("IP").frame_type(-1)
