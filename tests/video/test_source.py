"""The analytic content model and the jitter-buffer stream source."""

import pytest

from repro.config import FHD, UHD_4K
from repro.errors import BufferUnderflowError, ConfigurationError
from repro.video.frames import FrameType, GopStructure
from repro.video.source import (
    AnalyticContentModel,
    AnalyticFrameSource,
    ContentClass,
    FrameDescriptor,
    ListFrameSource,
    RepeatingFrameSource,
    StreamSource,
    as_frame_source,
)
from repro.units import mbps


class TestContentClass:
    def test_ordering(self):
        assert (
            ContentClass.SCREEN.bits_per_pixel
            < ContentClass.ANIMATION.bits_per_pixel
            < ContentClass.NATURAL.bits_per_pixel
            < ContentClass.HIGH_MOTION.bits_per_pixel
        )

    def test_natural_4k30_is_streaming_ladder_rate(self):
        """NATURAL at 4K30 lands near a 20 Mbps streaming rung."""
        bits_per_s = (
            ContentClass.NATURAL.bits_per_pixel * UHD_4K.pixels * 30
        )
        assert 15e6 < bits_per_s < 25e6


class TestAnalyticContentModel:
    def test_deterministic_per_seed(self):
        model = AnalyticContentModel()
        a = model.frames(FHD, 10, seed=3)
        b = model.frames(FHD, 10, seed=3)
        assert [f.encoded_bytes for f in a] == [
            f.encoded_bytes for f in b
        ]

    def test_different_seeds_differ(self):
        model = AnalyticContentModel()
        a = model.frames(FHD, 10, seed=1)
        b = model.frames(FHD, 10, seed=2)
        assert [f.encoded_bytes for f in a] != [
            f.encoded_bytes for f in b
        ]

    def test_i_frames_bigger_than_p(self):
        model = AnalyticContentModel(variability=0.0)
        frames = model.frames(FHD, 8)
        i_frames = [
            f for f in frames if f.frame_type is FrameType.I
        ]
        p_frames = [
            f for f in frames if f.frame_type is FrameType.P
        ]
        assert min(f.encoded_bytes for f in i_frames) > max(
            f.encoded_bytes for f in p_frames
        )

    def test_gop_average_matches_budget(self):
        model = AnalyticContentModel(variability=0.0)
        frames = model.frames(FHD, 40)
        mean = sum(f.encoded_bytes for f in frames) / len(frames)
        assert mean == pytest.approx(
            model.average_encoded_bytes(FHD), rel=0.05
        )

    def test_decoded_size_is_raw_frame(self):
        frames = AnalyticContentModel().frames(FHD, 1)
        assert frames[0].decoded_bytes == FHD.frame_bytes()

    def test_types_follow_gop(self):
        model = AnalyticContentModel(gop=GopStructure("IPBP"))
        frames = model.frames(FHD, 8)
        assert [f.frame_type.value for f in frames] == [
            "I", "P", "B", "P", "I", "P", "B", "P",
        ]

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticContentModel().frames(FHD, -1)

    def test_descriptor_validation(self):
        with pytest.raises(ConfigurationError):
            FrameDescriptor(0, FrameType.I, 0, 100)


class TestFrameSources:
    def test_list_source_round_trip(self):
        frames = AnalyticContentModel().frames(FHD, 5, seed=2)
        source = ListFrameSource(tuple(frames))
        assert len(source) == 5
        assert list(source) == frames
        assert source.fingerprint_token() == (
            "frames/list", tuple(frames)
        )

    def test_repeating_source_reindexes(self):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        source = RepeatingFrameSource(frame, 4)
        out = list(source)
        assert len(source) == 4
        assert [f.index for f in out] == [0, 1, 2, 3]
        assert all(
            f.encoded_bytes == frame.encoded_bytes for f in out
        )

    def test_repeating_fingerprint_is_constant_size(self):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        small = RepeatingFrameSource(frame, 2).fingerprint_token()
        huge = RepeatingFrameSource(frame, 10**9).fingerprint_token()
        assert small[:2] == huge[:2]
        assert small != huge

    def test_repeating_count_validated(self):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        with pytest.raises(ConfigurationError):
            RepeatingFrameSource(frame, 0)

    def test_analytic_source_matches_materialized(self):
        model = AnalyticContentModel()
        source = AnalyticFrameSource(model, FHD, 8, seed=3)
        assert len(source) == 8
        assert list(source) == model.frames(FHD, 8, seed=3)
        # Iterating twice restarts the stream identically.
        assert list(source) == list(source)

    def test_iter_frames_matches_frames(self):
        model = AnalyticContentModel()
        assert list(model.iter_frames(FHD, 10, seed=9)) == (
            model.frames(FHD, 10, seed=9)
        )

    def test_as_frame_source_coerces_lists(self):
        frames = AnalyticContentModel().frames(FHD, 3)
        coerced = as_frame_source(frames)
        assert isinstance(coerced, ListFrameSource)
        assert list(coerced) == frames

    def test_as_frame_source_passes_sources_through(self):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        source = RepeatingFrameSource(frame, 2)
        assert as_frame_source(source) is source

    def test_as_frame_source_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            as_frame_source(42)


def make_source(bandwidth=mbps(20), fluctuation=0.25, count=20,
                prebuffer=4):
    frames = AnalyticContentModel().frames(FHD, count)
    return StreamSource(
        frames=frames,
        bandwidth=bandwidth,
        fluctuation=fluctuation,
        prebuffer_frames=prebuffer,
    )


class TestStreamSource:
    def test_startup_delay_covers_prebuffer(self):
        source = make_source()
        assert source.startup_delay > 0

    def test_delivery_advances_buffer(self):
        source = make_source()
        written = source.deliver_until(source.startup_delay)
        assert written > 0
        assert source.delivered >= source.prebuffer_frames

    def test_pop_after_prebuffer_has_no_underrun(self):
        source = make_source(bandwidth=mbps(100))
        start = source.startup_delay
        for i in range(10):
            source.pop_frame(start + 0.1 + i / 30)
        assert source.underruns == 0

    def test_slow_network_underruns(self):
        # 1 Mbps cannot feed an FHD NATURAL stream at 30 FPS.
        source = make_source(bandwidth=mbps(1), prebuffer=1)
        for i in range(10):
            source.pop_frame(i / 30)
        assert source.underruns > 0

    def test_exhaustion(self):
        source = make_source(count=2, prebuffer=1)
        source.pop_frame(10.0)
        source.pop_frame(10.0)
        assert source.exhausted
        with pytest.raises(BufferUnderflowError):
            source.pop_frame(10.0)

    def test_deterministic_arrivals(self):
        a = make_source()
        b = make_source()
        assert a._arrival_times == b._arrival_times

    def test_fluctuation_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            make_source(fluctuation=1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            make_source(bandwidth=0)

    def test_buffered_bytes_tracks_occupancy(self):
        source = make_source(bandwidth=mbps(100))
        source.deliver_until(1.0)
        occupancy = source.buffered_bytes
        source.pop_frame(1.0)
        assert source.buffered_bytes < occupancy
