"""The functional macroblock codec."""

import numpy as np
import pytest

from repro.errors import CodecError, ConfigurationError
from repro.video.codec import Codec, CodecConfig, zigzag_order
from repro.video.frames import (
    DecodedFrame,
    FrameType,
    GopStructure,
    MACROBLOCK_SIZE,
)


@pytest.fixture
def codec():
    return Codec(CodecConfig(qstep=10.0))


def reference(frame_index, frame_type, pixels):
    return DecodedFrame(frame_index, frame_type, pixels)


class TestZigzag:
    def test_is_a_permutation(self):
        order = zigzag_order(16)
        assert sorted(order) == list(range(256))

    def test_starts_at_dc(self):
        assert zigzag_order(8)[0] == 0

    def test_second_diagonal(self):
        order = zigzag_order(4)
        # After (0,0) come (0,1) and (1,0) in some zigzag order.
        assert set(order[1:3]) == {1, 4}

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            zigzag_order(0)


class TestIntraFrames:
    def test_i_frame_roundtrip_quality(self, codec, small_clip):
        encoded, recon = codec.encode_frame(0, small_clip[0], FrameType.I)
        decoded = codec.decode_frame(encoded)
        psnr = decoded.psnr(reference(0, FrameType.I, small_clip[0]))
        assert psnr > 35.0

    def test_decoder_matches_encoder_reconstruction(self, codec,
                                                    small_clip):
        """The encoder's local reconstruction must equal the decoder's
        output bit-for-bit — otherwise P/B prediction drifts."""
        encoded, recon = codec.encode_frame(0, small_clip[0], FrameType.I)
        decoded = codec.decode_frame(encoded)
        assert np.array_equal(decoded.pixels, recon)

    def test_compresses(self, codec, small_clip):
        encoded, _ = codec.encode_frame(0, small_clip[0], FrameType.I)
        assert encoded.size_bytes < small_clip[0].nbytes / 3

    def test_flat_frame_compresses_extremely(self, codec):
        flat = np.full((32, 32, 3), 128, dtype=np.uint8)
        encoded, _ = codec.encode_frame(0, flat, FrameType.I)
        assert encoded.compression_ratio > 50

    def test_intra_prediction_beats_flat_predictor(self, small_clip):
        """Directional intra prediction must compress gradient content
        better than the flat mid-grey predictor alone would: the
        residual after edge extension is near zero on smooth rows."""
        import numpy as np

        ys, xs = np.mgrid[0:64, 0:96]
        horizontal_gradient = np.stack(
            [ys * 3 % 256] * 3, axis=-1
        ).astype(np.uint8)
        codec = Codec(CodecConfig(qstep=10.0))
        encoded, _ = codec.encode_frame(
            0, horizontal_gradient, FrameType.I
        )
        # Rows are constant: every non-first MB row predicts perfectly
        # from the top edge, so the stream is dominated by the first
        # row of macroblocks.
        assert encoded.compression_ratio > 60

    def test_intra_modes_roundtrip_exactly(self, small_clip):
        """Whatever intra modes the encoder picks, the decoder must
        rebuild the identical reconstruction (mode signalling works)."""
        import numpy as np

        codec = Codec(CodecConfig(qstep=10.0))
        encoded, reconstruction = codec.encode_frame(
            0, small_clip[3], FrameType.I
        )
        decoded = codec.decode_frame(encoded)
        assert np.array_equal(decoded.pixels, reconstruction)

    def test_qstep_tradeoff(self, small_clip):
        coarse = Codec(CodecConfig(qstep=40.0))
        fine = Codec(CodecConfig(qstep=4.0))
        enc_coarse, _ = coarse.encode_frame(
            0, small_clip[0], FrameType.I
        )
        enc_fine, _ = fine.encode_frame(0, small_clip[0], FrameType.I)
        assert enc_coarse.size_bytes < enc_fine.size_bytes
        dec_coarse = coarse.decode_frame(enc_coarse)
        dec_fine = fine.decode_frame(enc_fine)
        ref = reference(0, FrameType.I, small_clip[0])
        assert dec_fine.psnr(ref) > dec_coarse.psnr(ref)


class TestInterFrames:
    def test_p_frame_smaller_than_i(self, codec, small_clip):
        enc_i, recon = codec.encode_frame(0, small_clip[0], FrameType.I)
        enc_p, _ = codec.encode_frame(
            1, small_clip[1], FrameType.P, past=recon
        )
        assert enc_p.size_bytes < enc_i.size_bytes

    def test_p_frame_roundtrip(self, codec, small_clip):
        _, recon = codec.encode_frame(0, small_clip[0], FrameType.I)
        enc_p, recon_p = codec.encode_frame(
            1, small_clip[1], FrameType.P, past=recon
        )
        decoded = codec.decode_frame(enc_p, past=recon)
        assert np.array_equal(decoded.pixels, recon_p)
        assert decoded.psnr(
            reference(1, FrameType.P, small_clip[1])
        ) > 33.0

    def test_p_frame_requires_reference(self, codec, small_clip):
        with pytest.raises(CodecError):
            codec.encode_frame(1, small_clip[1], FrameType.P)

    def test_b_frame_requires_both_references(self, codec, small_clip):
        _, recon = codec.encode_frame(0, small_clip[0], FrameType.I)
        with pytest.raises(CodecError):
            codec.encode_frame(
                1, small_clip[1], FrameType.B, past=recon
            )

    def test_b_frame_roundtrip(self, codec, small_clip):
        _, recon0 = codec.encode_frame(0, small_clip[0], FrameType.I)
        _, recon2 = codec.encode_frame(
            2, small_clip[2], FrameType.P, past=recon0
        )
        enc_b, recon_b = codec.encode_frame(
            1, small_clip[1], FrameType.B, past=recon0, future=recon2
        )
        decoded = codec.decode_frame(enc_b, past=recon0, future=recon2)
        assert np.array_equal(decoded.pixels, recon_b)


class TestBitstreamIntegrity:
    def test_bad_magic_rejected(self, codec, small_clip):
        encoded, _ = codec.encode_frame(0, small_clip[0], FrameType.I)
        from dataclasses import replace

        corrupted = replace(
            encoded, payload=b"\x00" + encoded.payload[1:]
        )
        with pytest.raises(CodecError):
            codec.decode_frame(corrupted)

    def test_truncated_stream_rejected(self, codec, small_clip):
        encoded, _ = codec.encode_frame(0, small_clip[0], FrameType.I)
        from dataclasses import replace

        truncated = replace(
            encoded, payload=encoded.payload[: len(encoded.payload) // 4]
        )
        with pytest.raises(CodecError):
            codec.decode_frame(truncated)

    def test_metadata_mismatch_rejected(self, codec, small_clip):
        encoded, _ = codec.encode_frame(0, small_clip[0], FrameType.I)
        from dataclasses import replace

        lied = replace(encoded, width=encoded.width * 2)
        with pytest.raises(CodecError):
            codec.decode_frame(lied)

    def test_unaligned_frame_rejected(self, codec):
        bad = np.zeros((30, 30, 3), dtype=np.uint8)
        with pytest.raises(CodecError):
            codec.encode_frame(0, bad, FrameType.I)

    def test_wrong_dtype_rejected(self, codec):
        bad = np.zeros((32, 32, 3), dtype=np.float32)
        with pytest.raises(CodecError):
            codec.encode_frame(0, bad, FrameType.I)


class TestSequences:
    def test_ipbp_sequence_roundtrip(self, small_clip):
        codec = Codec(CodecConfig(qstep=10.0, gop=GopStructure("IPBP")))
        encoded = codec.encode_sequence(small_clip)
        decoded = codec.decode_sequence(encoded)
        assert len(decoded) == len(small_clip)
        for enc, dec, src in zip(encoded, decoded, small_clip):
            assert dec.index == enc.index
            assert dec.psnr(
                reference(enc.index, enc.frame_type, src)
            ) > 32.0

    def test_gop_types_followed(self, small_clip):
        codec = Codec(CodecConfig(gop=GopStructure("IPBP")))
        encoded = codec.encode_sequence(small_clip)
        assert [e.frame_type.value for e in encoded] == [
            "I", "P", "B", "P", "I", "P", "B", "P",
        ]

    def test_trailing_b_degrades_to_p(self, small_clip):
        codec = Codec(CodecConfig(gop=GopStructure("IPB")))
        encoded = codec.encode_sequence(small_clip[:3])
        # I P B would leave the B with no future anchor: it becomes P.
        assert encoded[2].frame_type is FrameType.P

    def test_empty_sequence(self, codec):
        assert codec.encode_sequence([]) == []

    def test_display_order_preserved(self, small_clip):
        codec = Codec(CodecConfig(gop=GopStructure("IBBP")))
        encoded = codec.encode_sequence(small_clip)
        assert [e.index for e in encoded] == list(range(8))

    def test_macroblock_grid_size(self, codec, small_clip):
        encoded, _ = codec.encode_frame(0, small_clip[0], FrameType.I)
        assert small_clip[0].shape[0] % MACROBLOCK_SIZE == 0
        assert small_clip[0].shape[1] % MACROBLOCK_SIZE == 0
