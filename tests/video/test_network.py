"""The ABR network frame source: deterministic session planning, rung
selection, stall accounting, and content-attribute tagging."""

import pytest

from repro.config import FHD
from repro.errors import ConfigurationError
from repro.video.network import NetworkFrameSource
from repro.video.source import AnalyticContentModel


def _source(**overrides):
    params = dict(
        model=AnalyticContentModel(),
        resolution=FHD,
        count=120,
        bandwidth_bps=10e6,
    )
    params.update(overrides)
    return NetworkFrameSource(**params)


class TestValidation:
    def test_rejects_descending_ladder(self):
        with pytest.raises(ConfigurationError):
            _source(ladder=(1.0, 0.5))

    def test_rejects_rung_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            _source(ladder=(0.5, 1.5))

    def test_rejects_full_fluctuation(self):
        with pytest.raises(ConfigurationError):
            _source(fluctuation=1.0)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            _source(bandwidth_bps=0.0)

    def test_rejects_zero_safety(self):
        with pytest.raises(ConfigurationError):
            _source(safety=0.0)


class TestSessionPlan:
    def test_presents_exactly_count_frames_in_order(self):
        source = _source()
        frames = list(source)
        assert len(frames) == len(source) == 120
        assert [f.index for f in frames] == list(range(120))

    def test_deterministic_for_a_seed(self):
        a = list(_source(seed=3))
        b = list(_source(seed=3))
        assert a == b
        assert _source(seed=3).fingerprint_token() == _source(
            seed=3
        ).fingerprint_token()

    def test_fingerprint_varies_with_conditions(self):
        base = _source().fingerprint_token()
        assert _source(seed=1).fingerprint_token() != base
        assert _source(
            bandwidth_bps=2e6
        ).fingerprint_token() != base

    def test_ample_bandwidth_rides_the_top_rung(self):
        # FHD30 natural content tops out near 5 Mbps; 40 Mbps steady
        # affords the full-quality rung on every chunk.
        source = _source(bandwidth_bps=40e6, fluctuation=0.0)
        top = len(source.ladder) - 1
        assert source.mean_tier == top
        assert source.tier_counts() == {top: 120}
        assert source.stall_ratio == 0.0
        assert source.rebuffer_events == 0

    def test_constrained_bandwidth_stalls(self):
        source = _source(bandwidth_bps=1.2e6)
        assert source.rebuffer_events > 0
        assert source.stall_ratio > 0.0
        stalled = [f for f in source if f.attributes.stalled]
        assert len(stalled) == pytest.approx(
            source.stall_ratio * len(source)
        )

    def test_stats_agree_with_the_presented_stream(self):
        source = _source(bandwidth_bps=3e6)
        frames = list(source)
        real = [f for f in frames if not f.attributes.stalled]
        assert source.mean_tier == pytest.approx(
            sum(f.attributes.bitrate_tier for f in real)
            / len(frames)
        )
        counts = source.tier_counts()
        assert sum(counts.values()) == len(frames)


class TestFrameTagging:
    def test_real_frames_scale_encoded_bytes_by_rung(self):
        # Steady bandwidth affording only the lowest rung: every real
        # frame is a quarter of its full-quality size.
        low = _source(bandwidth_bps=1.6e6, fluctuation=0.0)
        full = _source(bandwidth_bps=40e6, fluctuation=0.0)
        low_real = [f for f in low if not f.attributes.stalled]
        full_real = list(full)
        assert low_real[0].attributes.bitrate_tier == 0
        for a, b in zip(low_real, full_real):
            if a.frame_type == b.frame_type:
                assert a.encoded_bytes == pytest.approx(
                    b.encoded_bytes * 0.25
                )
                break

    def test_stall_repeats_the_previous_picture(self):
        source = _source(bandwidth_bps=1.2e6)
        frames = list(source)
        for i, frame in enumerate(frames):
            if frame.attributes.stalled:
                previous = frames[i - 1]
                assert frame.encoded_bytes == previous.encoded_bytes
                assert frame.decoded_bytes == previous.decoded_bytes
                assert frame.frame_type == previous.frame_type

    def test_every_frame_carries_content_attributes(self):
        for frame in _source(bandwidth_bps=2e6):
            assert frame.attributes is not None
            assert 0.0 <= frame.attributes.apl <= 1.0
