"""Bit-level IO and Exp-Golomb coding."""

import pytest

from repro.errors import CodecError
from repro.video.bitstream import BitReader, BitWriter


class TestBitIO:
    def test_single_byte_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0xA5, 8)
        assert writer.getvalue() == b"\xa5"

    def test_cross_byte_fields(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bits(0b0110011001, 10)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bits(10) == 0b0110011001

    def test_padding_to_byte_boundary(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        assert len(writer.getvalue()) == 1
        assert writer.bit_length == 1

    def test_value_too_wide_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(-1, 4)

    def test_negative_width_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(0, -1)

    def test_read_past_end(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(CodecError):
            reader.read_bits(1)

    def test_bits_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(3)
        assert reader.bits_remaining == 13

    def test_wide_field(self):
        writer = BitWriter()
        writer.write_bits(0x123456789A, 40)
        assert BitReader(writer.getvalue()).read_bits(40) == 0x123456789A

    @pytest.mark.parametrize("width", [64, 65, 100, 256])
    def test_oversized_value_rejected_at_all_widths(self, width):
        # The seed skipped the range check for width >= 64, silently
        # truncating oversized values instead of raising.
        with pytest.raises(CodecError):
            BitWriter().write_bits(1 << width, width)

    @pytest.mark.parametrize("width", [64, 65, 100, 256])
    def test_maximum_value_accepted_at_wide_widths(self, width):
        writer = BitWriter()
        writer.write_bits((1 << width) - 1, width)
        assert BitReader(writer.getvalue()).read_bits(width) == (
            (1 << width) - 1
        )

    def test_zero_width_rejects_nonzero_value(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(1, 0)

    def test_aligned_byte_roundtrip(self):
        writer = BitWriter()
        writer.write_bytes(b"\x01\x02\xfe")
        reader = BitReader(writer.getvalue())
        assert reader.read_bytes(3) == b"\x01\x02\xfe"

    def test_unaligned_byte_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.write_bytes(b"\xab\xcd")
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(3) == 0b101
        assert reader.read_bytes(2) == b"\xab\xcd"

    def test_read_bytes_past_end(self):
        with pytest.raises(CodecError):
            BitReader(b"\x00").read_bytes(2)

    def test_empty_write_bytes(self):
        writer = BitWriter()
        writer.write_bits(1, 1)
        writer.write_bytes(b"")
        assert writer.bit_length == 1


class TestExpGolomb:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 65535])
    def test_ue_roundtrip(self, value):
        writer = BitWriter()
        writer.write_ue(value)
        assert BitReader(writer.getvalue()).read_ue() == value

    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 17, -300])
    def test_se_roundtrip(self, value):
        writer = BitWriter()
        writer.write_se(value)
        assert BitReader(writer.getvalue()).read_se() == value

    def test_ue_zero_is_one_bit(self):
        writer = BitWriter()
        writer.write_ue(0)
        assert writer.bit_length == 1

    def test_small_values_shorter(self):
        short = BitWriter()
        short.write_ue(1)
        long = BitWriter()
        long.write_ue(1000)
        assert short.bit_length < long.bit_length

    def test_ue_rejects_negative(self):
        with pytest.raises(CodecError):
            BitWriter().write_ue(-1)

    def test_interleaved_stream(self):
        writer = BitWriter()
        writer.write_ue(5)
        writer.write_se(-3)
        writer.write_bits(0b11, 2)
        writer.write_ue(0)
        reader = BitReader(writer.getvalue())
        assert reader.read_ue() == 5
        assert reader.read_se() == -3
        assert reader.read_bits(2) == 0b11
        assert reader.read_ue() == 0

    def test_malformed_prefix_detected(self):
        # A stream of zeros never terminates a UE prefix.
        reader = BitReader(b"\x00" * 20)
        with pytest.raises(CodecError):
            reader.read_ue()
