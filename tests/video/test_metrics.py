"""Image quality metrics."""

import numpy as np
import pytest

from repro.errors import CodecError
from repro.video.codec import Codec, CodecConfig
from repro.video.frames import FrameType
from repro.video.metrics import psnr, sequence_quality, ssim


def noise(shape, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, shape, dtype=np.uint8
    )


class TestPsnr:
    def test_identity_infinite(self):
        frame = noise((32, 32, 3))
        assert psnr(frame, frame) == float("inf")

    def test_known_value(self):
        a = np.zeros((16, 16, 3), dtype=np.uint8)
        b = np.full((16, 16, 3), 255, dtype=np.uint8)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(CodecError):
            psnr(noise((8, 8, 3)), noise((16, 8, 3)))


class TestSsim:
    def test_identity_is_one(self):
        frame = noise((32, 32, 3))
        assert ssim(frame, frame) == pytest.approx(1.0)

    def test_unrelated_content_is_low(self):
        assert ssim(noise((32, 32, 3), 1), noise((32, 32, 3), 2)) < 0.3

    def test_small_distortion_stays_high(self):
        frame = noise((32, 32, 3))
        jittered = np.clip(
            frame.astype(int)
            + np.random.default_rng(3).integers(-2, 3, frame.shape),
            0, 255,
        ).astype(np.uint8)
        assert ssim(frame, jittered) > 0.95

    def test_monotone_in_distortion(self):
        frame = noise((32, 32, 3))
        rng = np.random.default_rng(4)
        mild = np.clip(
            frame.astype(int) + rng.integers(-4, 5, frame.shape),
            0, 255,
        ).astype(np.uint8)
        severe = np.clip(
            frame.astype(int) + rng.integers(-40, 41, frame.shape),
            0, 255,
        ).astype(np.uint8)
        assert ssim(frame, mild) > ssim(frame, severe)

    def test_too_small_frame_rejected(self):
        with pytest.raises(CodecError):
            ssim(noise((4, 4, 3)), noise((4, 4, 3)))

    def test_shape_mismatch(self):
        with pytest.raises(CodecError):
            ssim(noise((32, 32, 3)), noise((32, 16, 3)))

    def test_grayscale_rejected(self):
        with pytest.raises(CodecError):
            ssim(
                np.zeros((32, 32), dtype=np.uint8),
                np.zeros((32, 32), dtype=np.uint8),
            )


class TestSequenceQuality:
    def test_codec_output_scores_well(self, small_clip):
        codec = Codec(CodecConfig(qstep=10.0))
        decoded = []
        reference = None
        for index, frame in enumerate(small_clip[:4]):
            frame_type = FrameType.I if index == 0 else FrameType.P
            encoded, reference = codec.encode_frame(
                index, frame, frame_type, past=reference
            )
            decoded.append(
                codec.decode_frame(
                    encoded,
                    past=decoded[-1] if decoded else None,
                ).pixels
            )
        quality = sequence_quality(small_clip[:4], decoded)
        assert quality.frames == 4
        assert quality.min_psnr_db > 30.0
        assert quality.min_ssim > 0.9
        assert quality.mean_psnr_db >= quality.min_psnr_db
        assert quality.mean_ssim >= quality.min_ssim

    def test_length_mismatch(self):
        with pytest.raises(CodecError):
            sequence_quality([noise((16, 16, 3))], [])

    def test_empty_rejected(self):
        with pytest.raises(CodecError):
            sequence_quality([], [])
