"""Structural diffing of traces and profiles (`repro obs diff`)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.diff import (
    diff_artifacts,
    diff_profiles,
    diff_traces,
    load_artifact,
)
from repro.obs.trace import Tracer


def _sample_events(windows=3, misses=2):
    tracer = Tracer()
    with tracer.span("exhibit", exhibit="fig01"):
        for index in range(windows):
            span = tracer.begin_span("sim.window", t=index * 0.5)
            tracer.event("sim.segment", t=index * 0.5 + 0.1)
            tracer.end_span(span, t=index * 0.5 + 0.4)
        tracer.counter("cache.miss", value=misses)
    return tracer.events


def _write_trace(path, events):
    path.write_text(
        "".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in events
        ),
        encoding="utf-8",
    )
    return path


class TestLoadArtifact:
    def test_sniffs_trace(self, tmp_path):
        path = _write_trace(tmp_path / "t.jsonl", _sample_events())
        kind, events = load_artifact(path)
        assert kind == "trace"
        assert events[0]["name"] == "exhibit"

    def test_sniffs_profile(self, tmp_path):
        path = tmp_path / "p.json"
        path.write_text(
            json.dumps({"ledger": {"total_mj": 12.5}}),
            encoding="utf-8",
        )
        kind, payload = load_artifact(path)
        assert kind == "profile"
        assert payload["ledger"]["total_mj"] == 12.5

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_artifact(path)

    def test_rejects_non_trace_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "an event"}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_artifact(path)


class TestTraceDiff:
    def test_identical_traces_are_clean(self):
        diff = diff_traces(_sample_events(), _sample_events())
        assert diff.ok
        assert diff.structural_changes == 0
        assert "no structural drift" in diff.summary()

    def test_worker_tags_do_not_count_as_drift(self):
        plain = _sample_events()
        tagged = [{**e, "w": 2, "task": 1} for e in plain]
        assert diff_traces(plain, tagged).ok

    def test_missing_span_reports_change(self):
        diff = diff_traces(
            _sample_events(windows=3), _sample_events(windows=2)
        )
        assert not diff.ok
        assert any(
            d.name == "sim.window" and d.changed for d in diff.spans
        )
        assert "~ span sim.window: 3 -> 2" in diff.summary()

    def test_counter_shift_reports_delta(self):
        diff = diff_traces(
            _sample_events(misses=2), _sample_events(misses=5)
        )
        assert not diff.ok
        (delta,) = diff.counters
        assert (delta.name, delta.delta) == ("cache.miss", 3.0)

    def test_duration_shift_not_structural(self):
        slow = _sample_events()
        fast = json.loads(json.dumps(slow))
        for event in fast:
            if "t" in event:
                event["t"] = event["t"] * 0.5
        diff = diff_traces(slow, fast)
        assert diff.structural_changes == 0
        assert not diff.ok  # duration shifts still fail `ok`
        assert diff.duration_shifts

    def test_tolerance_absorbs_small_shifts(self):
        base = _sample_events()
        nudged = json.loads(json.dumps(base))
        for event in nudged:
            if "t" in event:
                event["t"] = event["t"] * (1 + 1e-12)
        assert diff_traces(base, nudged, tolerance=1e-6).ok

    def test_to_dict_shape(self):
        diff = diff_traces(
            _sample_events(windows=1), _sample_events(windows=2)
        )
        payload = diff.to_dict()
        assert payload["kind"] == "trace"
        assert payload["ok"] is False
        assert payload["spans"]["sim.window"] == {"a": 1, "b": 2}


class TestProfileDiff:
    A = {"ledger": {"total_mj": 10.0, "display_mj": 4.0}, "name": "x"}

    def test_identical_profiles_are_clean(self):
        assert diff_profiles(self.A, json.loads(json.dumps(self.A))).ok

    def test_moved_leaf_reported_with_path(self):
        b = json.loads(json.dumps(self.A))
        b["ledger"]["total_mj"] = 11.0
        diff = diff_profiles(self.A, b)
        (delta,) = diff.deltas
        assert delta.path == "ledger.total_mj"
        assert delta.delta == 1.0
        assert "~ ledger.total_mj: 10 -> 11 (+1)" in diff.summary()

    def test_added_and_removed_leaves(self):
        b = json.loads(json.dumps(self.A))
        del b["ledger"]["display_mj"]
        b["ledger"]["decode_mj"] = 2.0
        diff = diff_profiles(self.A, b)
        paths = {d.path for d in diff.deltas}
        assert paths == {"ledger.display_mj", "ledger.decode_mj"}


class TestDiffArtifacts:
    def test_trace_vs_profile_is_an_error(self, tmp_path):
        trace = _write_trace(tmp_path / "t.jsonl", _sample_events())
        profile = tmp_path / "p.json"
        profile.write_text(json.dumps({"ledger": {}}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            diff_artifacts(trace, profile)

    def test_round_trip_through_files(self, tmp_path):
        a = _write_trace(tmp_path / "a.jsonl", _sample_events())
        b = _write_trace(
            tmp_path / "b.jsonl", _sample_events(windows=1)
        )
        diff = diff_artifacts(a, b)
        assert not diff.ok
        assert diff.to_dict()["spans"]["sim.window"] == {
            "a": 3,
            "b": 1,
        }
