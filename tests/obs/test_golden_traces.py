"""Golden-trace regression suite.

Each canonical exhibit (one conventional run, one BurstLink run, one VR
run — see :mod:`repro.obs.golden`) must regenerate a JSONL trace that is
*byte-identical* to the artifact checked in under ``tests/golden/``.  A
shifted timeline, a renamed span, a reordered event, or a wall-clock
value sneaking into the stream all fail here.

Regenerating the goldens (after an intentional change)::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/obs/test_golden_traces.py

then review the diff of ``tests/golden/*.jsonl`` like any other code
change before committing.
"""

import json
import os
from pathlib import Path

import pytest

from repro.obs.golden import GOLDEN_EXHIBITS, golden_trace_jsonl

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
EXHIBITS = sorted(GOLDEN_EXHIBITS)


def _maybe_update(path: Path, text: str) -> bool:
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        path.write_text(text, encoding="utf-8")
        return True
    return False


@pytest.mark.parametrize("exhibit", EXHIBITS)
def test_trace_matches_golden_bytes(exhibit):
    text = golden_trace_jsonl(exhibit)
    path = GOLDEN_DIR / f"{exhibit}.jsonl"
    _maybe_update(path, text)
    assert path.exists(), (
        f"missing golden {path}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    assert path.read_bytes() == text.encode("utf-8"), (
        f"{exhibit} trace drifted from tests/golden/{exhibit}.jsonl; "
        "if the change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


@pytest.mark.parametrize("exhibit", EXHIBITS)
def test_trace_is_deterministic_across_captures(exhibit):
    assert golden_trace_jsonl(exhibit) == golden_trace_jsonl(exhibit)


@pytest.mark.parametrize("exhibit", EXHIBITS)
def test_golden_is_wall_clock_free(exhibit):
    """No event carries a wall-clock-ish attribute; every ``t`` lies
    inside the simulated run (well under one minute)."""
    for line in (GOLDEN_DIR / f"{exhibit}.jsonl").read_text(
        encoding="utf-8"
    ).splitlines():
        event = json.loads(line)
        if "t" in event:
            assert 0.0 <= event["t"] < 60.0
        for banned in ("wall", "elapsed", "perf_counter", "time_ns"):
            assert banned not in event.get("attrs", {})


@pytest.mark.parametrize("exhibit", EXHIBITS)
def test_golden_spans_balance(exhibit):
    """The checked-in artifact itself is a well-formed span tree."""
    stack = []
    for line in (GOLDEN_DIR / f"{exhibit}.jsonl").read_text(
        encoding="utf-8"
    ).splitlines():
        event = json.loads(line)
        if event["kind"] == "B":
            stack.append(event["seq"])
        elif event["kind"] == "E":
            assert stack and stack.pop() == event["span"]
    assert stack == []


def test_cli_trace_choices_cover_every_exhibit():
    """`repro trace` must offer exactly the golden exhibits."""
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["trace", "burstlink"])
    assert args.exhibit == "burstlink"
    for exhibit in EXHIBITS:
        assert parser.parse_args(["trace", exhibit]).exhibit == exhibit
    with pytest.raises(SystemExit):
        parser.parse_args(["trace", "not-an-exhibit"])


def test_cli_trace_writes_the_golden_bytes(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.jsonl"
    assert main(["trace", "conventional", "--jsonl", str(out)]) == 0
    assert out.read_bytes() == (
        GOLDEN_DIR / "conventional.jsonl"
    ).read_bytes()
    stdout = capsys.readouterr().out
    assert "sim.window" in stdout
