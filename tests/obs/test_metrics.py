"""The metrics registry: counters, gauges, histograms, reports."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingGauge,
    labelled,
    linear_buckets,
    registry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == 55.5
        assert histogram.minimum == 0.5
        assert histogram.maximum == 50.0
        assert histogram.mean == 18.5

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_snapshot_buckets(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(2.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"le_1": 1, "le_inf": 1}


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.gauge("a").set(1.5)
        snapshot = reg.snapshot()
        assert list(snapshot) == ["a", "z"]  # sorted
        assert snapshot["z"] == {"type": "counter", "value": 2}
        parsed = json.loads(reg.to_json())
        assert parsed["a"]["value"] == 1.5

    def test_table_report(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.histogram("wall_s").observe(0.5)
        table = reg.table()
        assert "cache.hits" in table
        assert "counter" in table
        assert "n=1" in table

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0

    def test_process_wide_registry_is_shared(self):
        assert registry() is registry()


class TestInstrumentationFeedsRegistry:
    def test_simulator_updates_counters(self):
        from repro.analysis.runner import cache_disabled
        from repro.config import FHD, skylake_tablet
        from repro.pipeline import ConventionalScheme, FrameWindowSimulator
        from repro.video.source import AnalyticContentModel

        reg = registry()
        before = reg.counter("sim.windows").value
        frames = AnalyticContentModel().frames(FHD, 2, seed=3)
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(frames, 30.0)
        assert (
            reg.counter("sim.windows").value - before == run.stats.windows
        )

    def test_power_model_updates_counters(self):
        from repro.analysis.runner import cache_disabled
        from repro.config import FHD, skylake_tablet
        from repro.pipeline import ConventionalScheme, FrameWindowSimulator
        from repro.power import PowerModel
        from repro.video.source import AnalyticContentModel

        reg = registry()
        before = reg.counter("power.reports").value
        frames = AnalyticContentModel().frames(FHD, 2, seed=3)
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(frames, 30.0)
        PowerModel().report(run)
        assert reg.counter("power.reports").value == before + 1

    def test_codec_updates_counters(self):
        import numpy as np

        from repro.video.codec import Codec
        from repro.video.frames import FrameType

        reg = registry()
        before_enc = reg.counter("codec.frames_encoded").value
        before_dec = reg.counter("codec.frames_decoded").value
        frame = np.zeros((32, 32, 3), dtype=np.uint8)
        codec = Codec()
        encoded, _ = codec.encode_frame(0, frame, FrameType.I)
        codec.decode_frame(encoded)
        assert reg.counter("codec.frames_encoded").value == before_enc + 1
        assert reg.counter("codec.frames_decoded").value == before_dec + 1
        assert reg.counter("codec.macroblocks_encoded").value >= 4


class TestQuantileEdges:
    """Histogram.quantile and linear_buckets boundary behaviour."""

    def test_empty_histogram_quantile_is_zero(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        assert histogram.quantile(0.5) == 0.0

    def test_quantile_bounds_rejected_outside_unit_interval(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        with pytest.raises(ConfigurationError):
            histogram.quantile(-0.01)
        with pytest.raises(ConfigurationError):
            histogram.quantile(1.01)

    def test_q0_and_q1_pin_to_observed_extremes(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.25, 3.0, 42.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.25
        assert histogram.quantile(1.0) == 42.0

    def test_single_bucket_interpolates_between_extremes(self):
        # All mass in one bucket: min/max tighten the edges, so every
        # quantile lies inside [min, max].
        histogram = Histogram("h", buckets=(100.0,))
        for value in (10.0, 20.0, 30.0, 40.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 10.0
        assert histogram.quantile(1.0) == 40.0
        assert 10.0 <= histogram.quantile(0.5) <= 40.0

    def test_overflow_bucket_quantile_capped_at_maximum(self):
        histogram = Histogram("h", buckets=(1.0,))
        for value in (5.0, 7.0, 9.0):
            histogram.observe(value)
        assert histogram.quantile(0.99) <= 9.0
        assert histogram.quantile(1.0) == 9.0

    def test_merge_then_quantile_matches_union_stream(self):
        bounds = linear_buckets(0.0, 1.0, 10)
        left = Histogram("h", buckets=bounds)
        right = Histogram("h", buckets=bounds)
        union = Histogram("h", buckets=bounds)
        for value in (0.5, 2.5, 4.5):
            left.observe(value)
            union.observe(value)
        for value in (1.5, 8.5, 9.5):
            right.observe(value)
            union.observe(value)
        left.merge_snapshot(right.snapshot())
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert left.quantile(q) == union.quantile(q)

    def test_linear_buckets_single_bucket(self):
        assert linear_buckets(5.0, 2.0, 1) == (5.0,)

    def test_linear_buckets_edges_are_exact(self):
        bounds = linear_buckets(0.0, 0.1, 5)
        assert bounds == tuple(0.0 + i * 0.1 for i in range(5))

    def test_linear_buckets_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            linear_buckets(0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            linear_buckets(0.0, 0.0, 4)
        with pytest.raises(ConfigurationError):
            linear_buckets(0.0, -1.0, 4)


class TestRollingGauge:
    def test_rejects_non_positive_window(self):
        with pytest.raises(ConfigurationError):
            RollingGauge("r", window_s=0.0)

    def test_mean_over_surviving_samples(self):
        gauge = RollingGauge("r", window_s=5.0)
        gauge.observe(0.0, 10.0)
        gauge.observe(1.0, 20.0)
        assert gauge.value == 15.0
        assert gauge.latest == 20.0

    def test_eviction_drops_samples_behind_the_window(self):
        gauge = RollingGauge("r", window_s=2.0)
        gauge.observe(0.0, 100.0)
        gauge.observe(1.0, 50.0)
        gauge.observe(3.5, 10.0)
        # Eviction keeps samples with t > max_t - window_s = 1.5, so
        # both earlier samples are gone.
        assert len(gauge) == 1
        assert gauge.value == 10.0

    def test_eviction_boundary_is_exclusive(self):
        gauge = RollingGauge("r", window_s=2.0)
        gauge.observe(1.0, 40.0)
        gauge.observe(3.0, 60.0)
        # t=1.0 is exactly max_t - window_s and is evicted.
        assert len(gauge) == 1
        assert gauge.value == 60.0

    def test_empty_gauge_reads_zero(self):
        gauge = RollingGauge("r", window_s=1.0)
        assert gauge.value == 0.0
        assert gauge.latest == 0.0
        assert gauge.render() == "n=0"

    def test_merge_interleaves_then_reevicts(self):
        left = RollingGauge("r", window_s=4.0)
        right = RollingGauge("r", window_s=4.0)
        left.observe(0.0, 1.0)
        left.observe(2.0, 3.0)
        right.observe(5.0, 7.0)
        left.merge_snapshot(right.snapshot())
        # max_t=5.0, window 4.0: the t=0 sample dies, t=2 and t=5 live.
        assert len(left) == 2
        assert left.value == 5.0

    def test_merge_rejects_window_mismatch(self):
        left = RollingGauge("r", window_s=4.0)
        right = RollingGauge("r", window_s=2.0)
        with pytest.raises(ConfigurationError):
            left.merge_snapshot(right.snapshot())

    def test_registry_roundtrip_via_snapshot(self):
        source = MetricsRegistry()
        gauge = source.rolling_gauge("serve.mw", window_s=3.0)
        gauge.observe(1.0, 10.0)
        gauge.observe(2.0, 30.0)
        target = MetricsRegistry()
        merged = target.merge_snapshot(
            json.loads(json.dumps(source.snapshot()))
        )
        assert merged == 1
        restored = target.rolling_gauge("serve.mw", window_s=3.0)
        assert restored.value == 20.0

    def test_remove_and_remove_prefix(self):
        reg = MetricsRegistry()
        reg.counter("serve.a")
        reg.rolling_gauge('serve.win.mw{sid="x"}', window_s=1.0)
        reg.rolling_gauge('serve.win.mw{sid="y"}', window_s=1.0)
        assert reg.remove("serve.a") is True
        assert reg.remove("serve.a") is False
        assert reg.remove_prefix("serve.win.mw{") == 2
        assert "serve.a" not in reg.names()


class TestLabelled:
    def test_no_labels_is_identity(self):
        assert labelled("serve.fps", {}) == "serve.fps"

    def test_labels_sorted_and_quoted(self):
        key = labelled("serve.fps", {"sid": "s1", "ns": "fleet"})
        assert key == 'serve.fps{ns="fleet",sid="s1"}'

    def test_label_values_escaped(self):
        key = labelled("m", {"sid": 'we"ird\\x\nline'})
        assert key == 'm{sid="we\\"ird\\\\x\\nline"}'
