"""The metrics registry: counters, gauges, histograms, reports."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.bucket_counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == 55.5
        assert histogram.minimum == 0.5
        assert histogram.maximum == 50.0
        assert histogram.mean == 18.5

    def test_empty_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(10.0, 1.0))

    def test_snapshot_buckets(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        histogram.observe(2.0)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"le_1": 1, "le_inf": 1}


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_snapshot_and_json(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.gauge("a").set(1.5)
        snapshot = reg.snapshot()
        assert list(snapshot) == ["a", "z"]  # sorted
        assert snapshot["z"] == {"type": "counter", "value": 2}
        parsed = json.loads(reg.to_json())
        assert parsed["a"]["value"] == 1.5

    def test_table_report(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits").inc(3)
        reg.histogram("wall_s").observe(0.5)
        table = reg.table()
        assert "cache.hits" in table
        assert "counter" in table
        assert "n=1" in table

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert len(reg) == 0

    def test_process_wide_registry_is_shared(self):
        assert registry() is registry()


class TestInstrumentationFeedsRegistry:
    def test_simulator_updates_counters(self):
        from repro.analysis.runner import cache_disabled
        from repro.config import FHD, skylake_tablet
        from repro.pipeline import ConventionalScheme, FrameWindowSimulator
        from repro.video.source import AnalyticContentModel

        reg = registry()
        before = reg.counter("sim.windows").value
        frames = AnalyticContentModel().frames(FHD, 2, seed=3)
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(frames, 30.0)
        assert (
            reg.counter("sim.windows").value - before == run.stats.windows
        )

    def test_power_model_updates_counters(self):
        from repro.analysis.runner import cache_disabled
        from repro.config import FHD, skylake_tablet
        from repro.pipeline import ConventionalScheme, FrameWindowSimulator
        from repro.power import PowerModel
        from repro.video.source import AnalyticContentModel

        reg = registry()
        before = reg.counter("power.reports").value
        frames = AnalyticContentModel().frames(FHD, 2, seed=3)
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(frames, 30.0)
        PowerModel().report(run)
        assert reg.counter("power.reports").value == before + 1

    def test_codec_updates_counters(self):
        import numpy as np

        from repro.video.codec import Codec
        from repro.video.frames import FrameType

        reg = registry()
        before_enc = reg.counter("codec.frames_encoded").value
        before_dec = reg.counter("codec.frames_decoded").value
        frame = np.zeros((32, 32, 3), dtype=np.uint8)
        codec = Codec()
        encoded, _ = codec.encode_frame(0, frame, FrameType.I)
        codec.decode_frame(encoded)
        assert reg.counter("codec.frames_encoded").value == before_enc + 1
        assert reg.counter("codec.frames_decoded").value == before_dec + 1
        assert reg.counter("codec.macroblocks_encoded").value >= 4
