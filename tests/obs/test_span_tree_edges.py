"""render_span_tree edge cases: unclosed spans, deep nesting, root
events."""

from repro.obs.trace import Tracer, render_span_tree


class TestUnclosedSpans:
    def test_unclosed_span_renders_without_time_window(self):
        tracer = Tracer()
        tracer.begin_span("sim.run", t=0.0, scheme="x")
        text = render_span_tree(tracer)
        assert "sim.run" in text
        assert "->" not in text  # no [t0 -> t1] window without an end

    def test_children_of_unclosed_span_still_indent(self):
        tracer = Tracer()
        tracer.begin_span("outer", t=0.0)
        inner = tracer.begin_span("inner", t=0.1)
        tracer.end_span(inner, t=0.2)
        lines = render_span_tree(tracer).splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "[0.100000s -> 0.200000s]" in lines[1]

    def test_export_with_open_spans_is_stable(self):
        # Exporting mid-run must not mutate tracer state.
        tracer = Tracer()
        span = tracer.begin_span("work", t=0.0)
        before = render_span_tree(tracer)
        assert render_span_tree(tracer) == before
        assert tracer.open_spans == 1
        tracer.end_span(span, t=1.0)
        assert "[0.000000s -> 1.000000s]" in render_span_tree(tracer)


class TestDeepNesting:
    def test_fifty_levels_indent_linearly(self):
        tracer = Tracer()
        spans = [
            tracer.begin_span(f"level{i}", t=float(i))
            for i in range(50)
        ]
        for i, span in enumerate(reversed(spans)):
            tracer.end_span(span, t=100.0 - i)
        lines = render_span_tree(tracer).splitlines()
        assert len(lines) == 50
        for depth, line in enumerate(lines):
            assert line.startswith("  " * depth + f"level{depth}")

    def test_depth_never_goes_negative(self):
        # More ends than begins (a spliced stream) must clamp at the
        # left margin instead of raising.
        tracer = Tracer()
        span = tracer.begin_span("a", t=0.0)
        tracer.end_span(span, t=1.0)
        tracer.events.append(
            {"seq": 99, "kind": "E", "name": "", "span": 0}
        )
        tracer.events.append(
            {"seq": 100, "kind": "I", "name": "after", "t": 2.0}
        )
        lines = render_span_tree(tracer).splitlines()
        assert lines[-1] == ". after @2.000000s"


class TestRootEvents:
    def test_events_outside_any_span_render_at_margin(self):
        tracer = Tracer()
        tracer.event("boot", t=0.0, phase="init")
        tracer.counter("imports", value=3)
        with tracer.span("body", t=1.0):
            pass
        lines = render_span_tree(tracer).splitlines()
        assert lines[0] == ". boot @0.000000s  phase=init"
        assert lines[1] == "+ imports  value=3"
        assert lines[2].startswith("body")

    def test_events_can_be_suppressed(self):
        tracer = Tracer()
        tracer.event("noise", t=0.0)
        tracer.counter("more.noise")
        with tracer.span("signal", t=1.0):
            tracer.event("inner.noise", t=1.5)
        text = render_span_tree(tracer, events_inline=False)
        assert "noise" not in text
        assert text.startswith("signal")
