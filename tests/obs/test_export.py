"""The exporters: Chrome trace-event JSON and Prometheus text."""

import json

from repro.obs.export import (
    chrome_trace,
    chrome_trace_events,
    chrome_trace_json,
    prometheus_name,
    prometheus_text,
    write_chrome_trace,
)
from repro.obs.golden import capture_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def small_tracer() -> Tracer:
    tracer = Tracer()
    outer = tracer.begin_span("sim.run", t=0.0, scheme="x")
    tracer.event("sim.segment", t=0.25, state="C0")
    tracer.counter("cache.hit", value=2)
    tracer.counter("cache.hit", value=3)
    tracer.end_span(outer, t=1.0)
    return tracer


class TestChromeTrace:
    def test_span_becomes_complete_event(self):
        events = chrome_trace_events(small_tracer().events)
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == 1
        (span,) = complete
        assert span["name"] == "sim.run"
        assert span["ts"] == 0.0
        assert span["dur"] == 1.0e6  # one simulated second in µs
        assert span["cat"] == "sim"
        assert span["args"]["scheme"] == "x"

    def test_instant_and_counter_events(self):
        events = chrome_trace_events(small_tracer().events)
        (instant,) = [e for e in events if e.get("ph") == "i"]
        assert instant["s"] == "t" and instant["ts"] == 0.25e6
        counters = [e for e in events if e.get("ph") == "C"]
        # Counter samples are cumulative totals, not deltas.
        assert [c["args"]["value"] for c in counters] == [2.0, 5.0]

    def test_metadata_names_process_and_threads(self):
        events = chrome_trace_events(small_tracer().events)
        metadata = [e for e in events if e.get("ph") == "M"]
        names = {e["name"] for e in metadata}
        assert names == {"process_name", "thread_name"}

    def test_unclosed_span_extends_to_horizon(self):
        tracer = Tracer()
        tracer.begin_span("a", t=0.0)
        tracer.event("tick", t=3.0)
        events = chrome_trace_events(tracer.events)
        (span,) = [e for e in events if e.get("ph") == "X"]
        assert span["dur"] == 3.0e6

    def test_exhibit_trace_is_valid_and_monotonic(self, tmp_path):
        # The acceptance check: the exported conventional trace is
        # valid JSON with monotonically consistent ts/dur.
        tracer, _ = capture_trace("conventional")
        target = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(target))
        payload = json.loads(target.read_text(encoding="utf-8"))
        events = payload["traceEvents"]
        assert len(events) == count > 0
        stamps = [e["ts"] for e in events if e.get("ph") != "M"]
        assert stamps == sorted(stamps)
        for event in events:
            assert event["ts"] >= 0
            if event.get("ph") == "X":
                assert event["dur"] >= 0

    def test_overlapping_roots_get_distinct_threads(self):
        # sim.run and power.report both walk the same simulated
        # timeline; they must land on different thread tracks.
        tracer, _ = capture_trace("conventional")
        payload = chrome_trace(tracer)
        roots = [
            e for e in payload["traceEvents"]
            if e.get("ph") == "X" and e["name"] in (
                "sim.run", "power.report"
            )
        ]
        assert len({e["tid"] for e in roots}) == len(roots) >= 2

    def test_json_export_is_deterministic(self):
        tracer, _ = capture_trace("conventional")
        assert chrome_trace_json(tracer) == chrome_trace_json(tracer)


class TestPrometheusText:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry()
        registry.counter("sim.runs", "runs").inc(3)
        registry.gauge("queue.depth").set(7)
        text = prometheus_text(registry)
        assert "# TYPE repro_sim_runs_total counter" in text
        assert "repro_sim_runs_total 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 7" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat.s", "latency", buckets=(1.0, 10.0)
        )
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert 'repro_lat_s_bucket{le="1"} 2' in text
        assert 'repro_lat_s_bucket{le="10"} 3' in text
        assert 'repro_lat_s_bucket{le="+Inf"} 4' in text
        assert "repro_lat_s_sum 56.2" in text
        assert "repro_lat_s_count 4" in text

    def test_name_sanitized(self):
        assert prometheus_name("cache.load_s") == "repro_cache_load_s"
        assert prometheus_name("a-b c") == "repro_a_b_c"

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_help_lines_precede_types(self):
        registry = MetricsRegistry()
        registry.counter("x", "what x counts").inc()
        lines = prometheus_text(registry).splitlines()
        assert lines[0] == "# HELP repro_x_total what x counts"
        assert lines[1] == "# TYPE repro_x_total counter"
        assert lines[2] == "repro_x_total 1"

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", "line one\nback\\slash").set(1)
        text = prometheus_text(registry)
        assert "# HELP repro_g line one\\nback\\\\slash" in text

    def test_labelled_keys_group_under_one_header(self):
        from repro.obs.metrics import labelled

        registry = MetricsRegistry()
        registry.gauge(
            labelled("serve.win_mw", {"sid": "a"}), "rolling power"
        ).set(4.0)
        registry.gauge(
            labelled("serve.win_mw", {"sid": "b"})
        ).set(6.0)
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_serve_win_mw gauge") == 1
        assert 'repro_serve_win_mw{sid="a"} 4' in text
        assert 'repro_serve_win_mw{sid="b"} 6' in text

    def test_label_values_escaped(self):
        from repro.obs.metrics import labelled

        registry = MetricsRegistry()
        key = labelled("serve.fps", {"sid": 'we"ird\\x'})
        registry.gauge(key).set(1.0)
        text = prometheus_text(registry)
        assert 'repro_serve_fps{sid="we\\"ird\\\\x"} 1' in text

    def test_rolling_gauge_exports_windowed_mean(self):
        registry = MetricsRegistry()
        rolling = registry.rolling_gauge(
            "serve.mw", "rolling", window_s=2.0
        )
        rolling.observe(0.0, 100.0)  # evicted by the 10.0 sample
        rolling.observe(9.0, 40.0)
        rolling.observe(10.0, 60.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_serve_mw gauge" in text
        assert "repro_serve_mw 50" in text

    def test_labelled_histogram_merges_le_label(self):
        from repro.obs.metrics import labelled

        registry = MetricsRegistry()
        histogram = registry.histogram(
            labelled("lat.s", {"sid": "a"}), buckets=(1.0,)
        )
        histogram.observe(0.5)
        text = prometheus_text(registry)
        assert 'repro_lat_s_bucket{sid="a",le="1"} 1' in text
        assert 'repro_lat_s_sum{sid="a"} 0.5' in text
        assert 'repro_lat_s_count{sid="a"} 1' in text
