"""Cross-process observability: shard protocol, merges, progress."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.obs import dist
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.dist import (
    ProgressMonitor,
    TraceContext,
    absorb_trace,
    merge_groups,
    merge_worker_metrics,
    new_context,
    normalize_events,
    normalized_jsonl,
    progress_record,
    read_shards,
    read_worker_metrics,
    run_worker_task,
)
from repro.obs.trace import Tracer


@pytest.fixture
def context(tmp_path):
    ctx = new_context(
        collect_trace=True, heartbeat=True,
        shard_root=tmp_path / "shards",
    )
    yield ctx
    dist.cleanup(ctx)


@pytest.fixture
def fresh_worker_state():
    """Reset the per-process worker-run marker and global registry so
    each test behaves like a freshly forked worker."""
    saved = dist._worker_run_id
    snapshot = obs_metrics.registry().snapshot()
    dist._worker_run_id = None
    obs_metrics.registry().reset()
    yield
    dist._worker_run_id = saved
    obs_metrics.registry().reset()
    obs_metrics.registry().merge_snapshot(snapshot)


def _task(name="alpha", windows=2):
    """A traced unit of work: one span, one nested event, a counter."""
    tracer = obs_trace.active()
    if tracer is not None:
        with tracer.span("exhibit", exhibit=name):
            for index in range(windows):
                with tracer.span(
                    "sim.window", t=index * 0.1, index=index
                ):
                    tracer.event("sim.segment", t=index * 0.1 + 0.05)
    obs_metrics.registry().counter("sim.windows").inc(windows)
    return name


class TestTraceContext:
    def test_payload_round_trip(self, context):
        rebuilt = TraceContext.from_payload(context.to_payload())
        assert rebuilt == context

    def test_context_is_picklable(self, context):
        import pickle

        assert pickle.loads(pickle.dumps(context)) == context


class TestWorkerSide:
    def test_shard_and_metrics_written(
        self, context, fresh_worker_state
    ):
        result = run_worker_task(
            context, 0, "alpha", lambda: _task("alpha")
        )
        assert result == "alpha"
        groups = read_shards(context)
        assert len(groups) == 1
        names = [
            e["name"] for e in groups[0].events if e["kind"] == "B"
        ]
        assert names == ["exhibit", "sim.window", "sim.window"]
        snapshots = read_worker_metrics(context)
        assert snapshots[0]["sim.windows"]["value"] == 2

    def test_worker_registry_reset_once_per_run(
        self, context, fresh_worker_state
    ):
        # Simulate fork inheritance: pre-existing registry state must
        # not leak into the worker's published snapshot.
        obs_metrics.registry().counter("inherited.noise").inc(99)
        run_worker_task(context, 0, "a", lambda: _task("a"))
        run_worker_task(context, 1, "b", lambda: _task("b"))
        (snapshot,) = read_worker_metrics(context)
        assert "inherited.noise" not in snapshot
        # Two tasks accumulate in one worker snapshot.
        assert snapshot["sim.windows"]["value"] == 4

    def test_heartbeats_stream_start_and_done(
        self, context, fresh_worker_state
    ):
        run_worker_task(
            context, 0, "alpha", lambda: _task("alpha"),
            summarize=lambda result: {"wall_s": 0.5},
        )
        files = sorted(
            Path(context.shard_dir).glob("*.hb.jsonl")
        )
        assert len(files) == 1
        records = [
            json.loads(line)
            for line in files[0].read_text().splitlines()
        ]
        assert [r["event"] for r in records] == ["start", "done"]
        assert records[1]["wall_s"] == 0.5

    def test_no_shard_without_collect_trace(
        self, tmp_path, fresh_worker_state
    ):
        ctx = new_context(
            collect_trace=False, shard_root=tmp_path / "s"
        )
        run_worker_task(ctx, 0, "alpha", lambda: _task("alpha"))
        assert read_shards(ctx) == []
        # Metrics still publish — the merge path works untraced.
        assert read_worker_metrics(ctx)


class TestMerge:
    def _record_two_tasks(self, context):
        run_worker_task(context, 1, "beta", lambda: _task("beta", 1))
        run_worker_task(
            context, 0, "alpha", lambda: _task("alpha", 2)
        )

    def test_groups_ordered_by_task_index(
        self, context, fresh_worker_state
    ):
        self._record_two_tasks(context)
        groups = read_shards(context)
        assert [g.task for g in groups] == [0, 1]

    def test_absorb_renumbers_into_parent(
        self, context, fresh_worker_state
    ):
        self._record_two_tasks(context)
        parent = Tracer()
        parent.event("exhibits.fanout", workers=2)
        absorbed = absorb_trace(parent, context)
        assert absorbed == len(parent.events) - 1
        seqs = [e["seq"] for e in parent.events]
        assert seqs == list(range(len(parent.events)))
        # Worker events carry the w tag; the parent's own do not.
        assert "w" not in parent.events[0]
        assert all("w" in e for e in parent.events[1:])
        # Span ends still reference their renumbered starts.
        for event in parent.events:
            if event["kind"] == "E":
                start = parent.events[event["span"]]
                assert start["kind"] == "B"

    def test_absorb_nests_under_open_parent_span(
        self, context, fresh_worker_state
    ):
        run_worker_task(context, 0, "alpha", lambda: _task("alpha"))
        parent = Tracer()
        outer = parent.begin_span("suite")
        absorb_trace(parent, context)
        parent.end_span(outer)
        roots = [
            e for e in parent.events
            if e["kind"] == "B" and e["name"] == "exhibit"
        ]
        assert all(e["parent"] == outer for e in roots)

    def test_merge_groups_assigns_stable_worker_indexes(self):
        def group(worker, task):
            tracer = Tracer()
            with tracer.span("exhibit", exhibit=f"t{task}"):
                pass
            return dist.TaskGroup(worker, task, tracer.events)

        merged = merge_groups(
            [group(4242, 0), group(1111, 1)]
        )
        by_task = {e["task"]: e["w"] for e in merged}
        # Worker ids sort (1111 < 4242) into 1-based indexes.
        assert by_task == {0: 2, 1: 1}

    def test_metrics_merge_sums_workers(
        self, context, fresh_worker_state
    ):
        self._record_two_tasks(context)
        registry = obs_metrics.MetricsRegistry()
        merged = merge_worker_metrics(registry, context)
        assert merged == 1  # same pid -> one worker snapshot
        assert registry.counter("sim.windows").value == 3


class TestNormalization:
    def test_strips_worker_tags_and_renumbers(self):
        tracer = Tracer()
        with tracer.span("exhibit", exhibit="x"):
            tracer.counter("cache.miss")
        tagged = [
            {**event, "w": 3, "task": 7} for event in tracer.events
        ]
        # Offset the ids as a merge would.
        for event in tagged:
            event["seq"] += 100
            if "span" in event:
                event["span"] += 100
            if "parent" in event:
                event["parent"] += 100
        assert normalized_jsonl(tagged) == tracer.to_jsonl()

    def test_strips_volatile_attrs(self):
        a = Tracer()
        a.event("exhibits.fanout", workers=1, selected=3)
        b = Tracer()
        b.event("exhibits.fanout", workers=4, selected=3)
        assert normalized_jsonl(a.events) == normalized_jsonl(b.events)

    def test_drops_dangling_parent_references(self):
        events = [
            {"seq": 5, "kind": "I", "name": "orphan", "parent": 2}
        ]
        (normalized,) = normalize_events(events)
        assert normalized["seq"] == 0
        assert "parent" not in normalized


class TestProgressMonitor:
    def test_feed_renders_start_and_done(self):
        lines = []
        monitor = ProgressMonitor(lines.append, total=2)
        monitor.feed(progress_record("start", 0, "fig01"))
        monitor.feed(
            progress_record(
                "done", 0, "fig01",
                wall_s=0.25, hits=1, misses=2, windows=8,
            )
        )
        assert lines[0] == "fig01 started [worker 0]"
        assert lines[1] == (
            "[1/2] fig01 done in 0.25s "
            "(hits=1 misses=2 windows=8) [worker 0]"
        )

    def test_poll_reads_incrementally(
        self, context, fresh_worker_state
    ):
        lines = []
        monitor = ProgressMonitor(lines.append, total=2)
        run_worker_task(context, 0, "a", lambda: _task("a"))
        assert monitor.poll(context) == 2
        run_worker_task(context, 1, "b", lambda: _task("b"))
        # Only the new records render on the second poll.
        assert monitor.poll(context) == 2
        assert monitor.poll(context) == 0
        assert monitor.done == 2


class TestIngestGuards:
    def test_ingest_rejects_discontinuous_seq(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.ingest([{"seq": 5, "kind": "I", "name": "x"}])


class TestTailCompleteLines:
    """Torn-write tolerance for live heartbeat ingestion."""

    def _heartbeat(self, event, index):
        return json.dumps(
            {"event": event, "index": index, "name": f"shard-{index}"}
        )

    def test_truncated_final_record_is_deferred(self, tmp_path):
        path = tmp_path / "w.hb.jsonl"
        whole = self._heartbeat("start", 0) + "\n"
        torn = self._heartbeat("done", 0)
        # A writer died (or is still writing) mid-record: no newline.
        path.write_bytes((whole + torn[: len(torn) // 2]).encode())
        records, offset = dist.tail_complete_lines(path, 0)
        assert [r["event"] for r in records] == ["start"]
        assert offset == len(whole.encode())
        # The writer finishes the line; a re-poll from the returned
        # offset picks up exactly the completed record.
        path.write_bytes((whole + torn + "\n").encode())
        records, offset = dist.tail_complete_lines(path, offset)
        assert [r["event"] for r in records] == ["done"]
        assert offset == len((whole + torn).encode()) + 1

    def test_corrupt_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "w.hb.jsonl"
        path.write_text(
            "{not json}\n" + self._heartbeat("start", 1) + "\n"
        )
        records, offset = dist.tail_complete_lines(path, 0)
        assert [r["index"] for r in records] == [1]
        assert offset == path.stat().st_size

    def test_missing_file_returns_nothing(self, tmp_path):
        records, offset = dist.tail_complete_lines(
            tmp_path / "absent.hb.jsonl", 7
        )
        assert records == []
        assert offset == 7


class TestPinnedHeartbeats:
    def test_unpinned_environment_yields_no_emitter(self, monkeypatch):
        monkeypatch.delenv(dist.HEARTBEAT_DIR_ENV, raising=False)
        assert dist.pinned_heartbeat_emitter("fleet") is None

    def test_emitter_appends_namespaced_records(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(dist.HEARTBEAT_DIR_ENV, str(tmp_path))
        emit = dist.pinned_heartbeat_emitter("fleet")
        assert emit is not None
        emit(progress_record("start", 0, "shard-0"))
        emit(progress_record("done", 0, "shard-0", windows=8))
        files = list(tmp_path.glob("*.hb.jsonl"))
        assert len(files) == 1
        records, _ = dist.tail_complete_lines(files[0], 0)
        assert [r["event"] for r in records] == ["start", "done"]
        assert all(r["ns"] == "fleet" for r in records)

    def test_new_context_pins_and_keeps_heartbeats(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(dist.HEARTBEAT_DIR_ENV, str(tmp_path))
        context = new_context()
        assert Path(context.shard_dir) == tmp_path
        assert context.heartbeat is True
        hb = tmp_path / f"{context.run_id}-w1.hb.jsonl"
        hb.write_text(json.dumps({"event": "start", "index": 0}) + "\n")
        other = tmp_path / f"{context.run_id}-w1.trace.jsonl"
        other.write_text("{}\n")
        dist.cleanup(context)
        # The pinned directory survives cleanup and so do heartbeat
        # files (the serve watcher may still be tailing them); other
        # shard files are removed as usual.
        assert tmp_path.is_dir()
        assert hb.exists()
        assert not other.exists()
