"""Cross-cutting instrumentation behavior: the traced hot paths stay
correct when tracing is on, silent when it is off."""

import numpy as np
import pytest

from repro.analysis.runner import SimulationCache, cache_disabled
from repro.config import FHD, skylake_tablet
from repro.errors import CodecError
from repro.obs import trace
from repro.obs.trace import tracing
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import install_run_memo
from repro.video.codec import Codec
from repro.video.frames import EncodedFrame, FrameType
from repro.video.source import AnalyticContentModel


def _run(frame_count=2, seed=5, fps=30.0):
    frames = AnalyticContentModel().frames(FHD, frame_count, seed=seed)
    return FrameWindowSimulator(
        skylake_tablet(FHD), ConventionalScheme()
    ).run(frames, fps)


class TestNoOpDefault:
    def test_untraced_run_emits_nothing(self):
        assert trace.active() is None
        with cache_disabled():
            run = _run()
        assert run.stats.windows > 0  # ran fine with tracing off

    def test_traced_and_untraced_runs_agree(self):
        with cache_disabled():
            plain = _run()
            with tracing():
                traced = _run()
        assert plain.stats == traced.stats
        assert list(plain.timeline) == list(traced.timeline)


class TestSimulatorTrace:
    def test_run_span_carries_stats(self):
        with cache_disabled(), tracing() as tracer:
            run = _run()
        begin = next(
            e for e in tracer.events
            if e["kind"] == "B" and e["name"] == "sim.run"
        )
        end = next(
            e for e in tracer.events
            if e["kind"] == "E" and e["span"] == begin["seq"]
        )
        assert end["attrs"]["windows"] == run.stats.windows
        assert end["attrs"]["psr_windows"] == run.stats.psr_windows
        assert end["t"] == pytest.approx(run.timeline.end)

    def test_cache_hit_skips_sim_span(self):
        cache = SimulationCache()
        previous = install_run_memo(cache)
        try:
            _run()
            with tracing() as tracer:
                _run()  # memoized: no simulation happens
        finally:
            install_run_memo(previous)
        names = [e["name"] for e in tracer.events]
        assert "cache.hit" in names
        assert "sim.run" not in names


class TestCodecTrace:
    def test_encode_decode_spans_balance(self):
        frame = np.zeros((32, 32, 3), dtype=np.uint8)
        codec = Codec()
        with tracing() as tracer:
            encoded, _ = codec.encode_frame(0, frame, FrameType.I)
            codec.decode_frame(encoded)
        assert tracer.open_spans == 0
        names = [
            e["name"] for e in tracer.events if e["kind"] == "B"
        ]
        assert names == ["codec.encode", "codec.decode"]
        phases = [
            e["attrs"]["phase"]
            for e in tracer.events
            if e["name"] == "codec.phase"
        ]
        assert phases == [
            "header", "macroblocks", "header", "macroblocks",
        ]

    def test_decode_error_closes_span(self):
        codec = Codec()
        bogus = EncodedFrame(
            index=0,
            frame_type=FrameType.I,
            width=32,
            height=32,
            payload=b"\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        with tracing() as tracer:
            with pytest.raises(CodecError):
                codec.decode_frame(bogus)
            # The tracer must still accept balanced spans afterwards.
            with tracer.span("after"):
                pass
        assert tracer.open_spans == 0
        end = next(
            e for e in tracer.events
            if e["kind"] == "E" and "error" in e.get("attrs", {})
        )
        assert end["attrs"]["error"] == "CodecError"


class TestCliTraceIntegration:
    def test_figures_trace_writes_jsonl(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.jsonl"
        code = main(
            [
                "figures",
                "--out", str(tmp_path / "figs"),
                "--trace", str(out),
            ]
        )
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert '"name":"exhibit"' in text
        assert "wrote trace" in capsys.readouterr().out

    def test_trace_metrics_flag(self, capsys):
        from repro.cli import main

        assert main(["trace", "burstlink", "--metrics"]) == 0
        stdout = capsys.readouterr().out
        assert "sim.windows" in stdout
        assert "metric" in stdout
