"""The event tracer: API semantics, JSONL stability, no-op default."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import trace
from repro.obs.trace import Tracer, render_span_tree, tracing
from repro.soc.cstates import PackageCState


class TestTracerApi:
    def test_disabled_by_default(self):
        assert trace.active() is None
        assert not trace.enabled()

    def test_install_returns_previous(self):
        tracer = Tracer()
        assert trace.install(tracer) is None
        try:
            assert trace.active() is tracer
            assert trace.enabled()
        finally:
            assert trace.install(None) is tracer
        assert trace.active() is None

    def test_tracing_context_restores(self):
        with tracing() as tracer:
            assert trace.active() is tracer
        assert trace.active() is None

    def test_span_nesting_and_ids(self):
        tracer = Tracer()
        outer = tracer.begin_span("outer", t=0.0)
        inner = tracer.begin_span("inner", t=0.1)
        tracer.end_span(inner, t=0.2)
        tracer.end_span(outer, t=0.3)
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == ["B", "B", "E", "E"]
        assert tracer.events[1]["parent"] == outer
        assert tracer.events[2]["span"] == inner
        assert tracer.open_spans == 0

    def test_mismatched_end_rejected(self):
        tracer = Tracer()
        outer = tracer.begin_span("outer")
        tracer.begin_span("inner")
        with pytest.raises(ConfigurationError):
            tracer.end_span(outer)

    def test_end_without_open_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer().end_span(0)

    def test_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("work", t=1.0, step=3):
            tracer.event("inside")
        assert tracer.open_spans == 0
        assert tracer.events[1]["parent"] == tracer.events[0]["seq"]

    def test_counter_records_delta(self):
        tracer = Tracer()
        tracer.counter("hits", 5, layer="memory")
        event = tracer.events[0]
        assert event["kind"] == "C"
        assert event["attrs"] == {"value": 5, "layer": "memory"}

    def test_sequence_numbers_are_ordinal(self):
        tracer = Tracer()
        for index in range(5):
            tracer.event("tick")
            assert tracer.events[index]["seq"] == index


class TestSanitization:
    def test_enum_becomes_name(self):
        tracer = Tracer()
        tracer.event("state", state=PackageCState.C8)
        assert tracer.events[0]["attrs"]["state"] == "C8"

    def test_numpy_scalar_becomes_string_not_crash(self):
        tracer = Tracer()
        tracer.event("x", n=np.int64(3))
        json.dumps(tracer.events[0])  # must be JSON-serializable

    def test_nested_containers(self):
        tracer = Tracer()
        tracer.event("x", items=(1, "a"), table={"k": PackageCState.C2})
        attrs = tracer.events[0]["attrs"]
        assert attrs["items"] == [1, "a"]
        assert attrs["table"] == {"k": "C2"}


class TestJsonl:
    def test_one_line_per_event_sorted_keys(self):
        tracer = Tracer()
        with tracer.span("s", t=0.5, b=1, a=2):
            pass
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert list(first) == sorted(first)

    def test_identical_traces_identical_bytes(self):
        def build():
            tracer = Tracer()
            with tracer.span("run", t=0.0, fps=30.0):
                tracer.event("seg", t=1 / 60, state="C8")
                tracer.counter("windows", 2)
            return tracer.to_jsonl()

        assert build() == build()

    def test_write(self, tmp_path):
        tracer = Tracer()
        tracer.event("x")
        path = tmp_path / "t.jsonl"
        tracer.write(str(path))
        assert path.read_text(encoding="utf-8") == tracer.to_jsonl()


class TestRendering:
    def test_tree_indents_and_merges_end_attrs(self):
        tracer = Tracer()
        span = tracer.begin_span("sim.window", t=0.0, index=0)
        tracer.event("sim.segment", t=0.0, state="C0")
        tracer.counter("windows")
        tracer.end_span(span, t=0.016, deadline_missed=False)
        text = render_span_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("sim.window [0.000000s -> 0.016000s]")
        assert "deadline_missed=False" in lines[0]
        assert lines[1].startswith("  . sim.segment")
        assert lines[2].startswith("  + windows")

    def test_events_can_be_suppressed(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("noise")
        assert "noise" not in render_span_tree(
            tracer, events_inline=False
        )


class TestEnvHook:
    def test_no_env_var_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace.install_env_tracer() is None

    def test_env_var_installs_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "out.jsonl"))
        monkeypatch.setattr(trace, "_env_hook_registered", False)
        previous = trace.active()
        try:
            tracer = trace.install_env_tracer()
            assert tracer is not None
            assert trace.active() is tracer
            # Idempotent: a second call keeps the same tracer.
            assert trace.install_env_tracer() is tracer
        finally:
            trace.install(previous)
            monkeypatch.setattr(trace, "_env_hook_registered", False)
