"""The bench-history recorder and wall-clock regression gate."""

import json
import types

import pytest

from repro.analysis.runner import ExperimentMetrics
from repro.errors import ConfigurationError, SimulationError
from repro.obs.drift import (
    bench_snapshot,
    check_bench,
    latest_baseline,
    record_bench,
)


def outcome(name: str, wall_s: float, hits: int = 4, misses: int = 1):
    return types.SimpleNamespace(
        name=name,
        metrics=ExperimentMetrics(
            name=name,
            wall_clock_s=wall_s,
            cache_hits=hits,
            cache_misses=misses,
            windows_simulated=60,
        ),
    )


class TestSnapshot:
    def test_totals_and_per_exhibit_detail(self):
        snapshot = bench_snapshot(
            [outcome("a", 1.0), outcome("b", 2.0)], date="2026-08-06"
        )
        assert snapshot["date"] == "2026-08-06"
        assert snapshot["total_wall_s"] == 3.0
        assert snapshot["total_cache_hits"] == 8
        assert snapshot["exhibits"]["b"]["wall_s"] == 2.0
        assert snapshot["exhibits"]["a"]["windows"] == 60

    def test_empty_run_rejected(self):
        with pytest.raises(SimulationError):
            bench_snapshot([])


class TestRecord:
    def test_writes_dated_file(self, tmp_path):
        path = record_bench(
            [outcome("a", 1.0)], tmp_path, date="2026-08-06"
        )
        assert path.name == "BENCH_2026-08-06.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["format"] == 1

    def test_same_day_rerun_overwrites(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-06")
        record_bench([outcome("a", 9.0)], tmp_path, date="2026-08-06")
        assert len(list(tmp_path.glob("BENCH_*.json"))) == 1
        _, payload = latest_baseline(tmp_path)
        assert payload["total_wall_s"] == 9.0


class TestLatestBaseline:
    def test_picks_most_recent_date(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-01")
        record_bench([outcome("a", 2.0)], tmp_path, date="2026-08-05")
        path, payload = latest_baseline(tmp_path)
        assert path.name == "BENCH_2026-08-05.json"
        assert payload["total_wall_s"] == 2.0

    def test_empty_directory_is_none(self, tmp_path):
        assert latest_baseline(tmp_path) is None
        assert latest_baseline(tmp_path / "missing") is None

    def test_corrupt_entry_skipped(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-01")
        (tmp_path / "BENCH_2026-08-09.json").write_text(
            "{not json", encoding="utf-8"
        )
        path, _ = latest_baseline(tmp_path)
        assert path.name == "BENCH_2026-08-01.json"


class TestCheckBench:
    def test_within_threshold_passes(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-01")
        verdict = check_bench([outcome("a", 1.1)], tmp_path)
        assert verdict.ok
        assert "PASS" in verdict.summary()

    def test_regression_beyond_threshold_fails(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-01")
        verdict = check_bench([outcome("a", 1.2)], tmp_path)
        assert not verdict.ok
        assert verdict.growth == pytest.approx(0.2)
        assert "FAIL" in verdict.summary()

    def test_per_exhibit_regressions_noted(self, tmp_path):
        record_bench(
            [outcome("a", 1.0), outcome("b", 1.0)],
            tmp_path, date="2026-08-01",
        )
        verdict = check_bench(
            [outcome("a", 2.0), outcome("b", 0.05)], tmp_path,
        )
        assert any("a" in note for note in verdict.notes)
        assert "note" in verdict.summary()

    def test_cache_hit_drop_noted(self, tmp_path):
        record_bench(
            [outcome("a", 1.0, hits=10)], tmp_path, date="2026-08-01"
        )
        verdict = check_bench([outcome("a", 1.0, hits=2)], tmp_path)
        assert verdict.ok  # informational, not gating
        assert any("cache hits" in note for note in verdict.notes)

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            check_bench([outcome("a", 1.0)], tmp_path)

    def test_custom_threshold(self, tmp_path):
        record_bench([outcome("a", 1.0)], tmp_path, date="2026-08-01")
        assert not check_bench(
            [outcome("a", 1.1)], tmp_path, threshold=0.05
        ).ok
