"""The live telemetry plane: sessions, rolling metrics, HTTP scrape."""

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import serve
from repro.obs.dist import tail_complete_lines
from repro.obs.serve import (
    PROMETHEUS_CONTENT_TYPE,
    EventLog,
    HeartbeatWatcher,
    PowerAdvisorService,
    SessionClient,
)
from repro.pipeline import ConventionalScheme
from repro.video.source import AnalyticContentModel


def _frames(count, seed=7):
    return AnalyticContentModel().frames(FHD, count, seed=seed)


def _open(service, sid, scheme="burstlink", **extra):
    response = service.handle(
        {
            "op": "open",
            "scheme": scheme,
            "resolution": "FHD",
            "fps": 30.0,
            "session": sid,
            **extra,
        }
    )
    assert response["ok"], response
    return response


class TestEventLog:
    def test_sequenced_and_leveled(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, level="info")
        assert log.emit("noise", level="debug") is None
        first = log.emit("session.open", session="s1")
        second = log.emit("backpressure.stall", level="warn")
        assert (first["seq"], second["seq"]) == (0, 1)
        records, _ = tail_complete_lines(path, 0)
        assert [r["event"] for r in records] == [
            "session.open",
            "backpressure.stall",
        ]

    def test_no_wall_clock_fields(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        record = log.emit("session.open", session="s1", t=1.25)
        assert set(record) == {"seq", "level", "event", "session", "t"}

    def test_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError):
            EventLog(level="verbose")
        with pytest.raises(ConfigurationError):
            EventLog().emit("x", level="verbose")

    def test_memory_only_log_needs_no_path(self):
        log = EventLog()
        log.emit("session.open")
        assert [r["event"] for r in log.recent] == ["session.open"]


class TestServiceOps:
    def test_open_rejects_unknown_scheme_and_resolution(self):
        service = PowerAdvisorService()
        bad = service.handle({"op": "open", "scheme": "nope"})
        assert not bad["ok"] and "nope" in bad["error"]
        bad = service.handle({"op": "open", "resolution": "8K"})
        assert not bad["ok"] and "8K" in bad["error"]

    def test_unknown_op_is_an_error_not_a_crash(self):
        service = PowerAdvisorService()
        response = service.handle({"op": "explode"})
        assert response == {"ok": False, "error": "unknown op 'explode'"}

    def test_duplicate_session_rejected(self):
        service = PowerAdvisorService()
        _open(service, "dup")
        response = service.handle(
            {"op": "open", "session": "dup", "scheme": "burstlink"}
        )
        assert not response["ok"]

    def test_frames_advance_and_stall(self):
        service = PowerAdvisorService()
        _open(service, "adv")
        frames = [f.to_payload() for f in _frames(6)]
        response = service.handle(
            {"op": "frames", "session": "adv", "frames": frames}
        )
        assert response["ok"]
        assert response["windows"] == response["advanced"] > 0
        assert response["stalled"] is True
        assert not response["finished"]

    def test_stream_chunks_equal_one_shot(self):
        service = PowerAdvisorService()
        _open(service, "chunked", window_s=4.0)
        _open(service, "oneshot", window_s=4.0)
        for _ in range(3):
            assert service.handle(
                {
                    "op": "stream",
                    "session": "chunked",
                    "count": 8,
                    "seed": 3,
                }
            )["ok"]
        assert service.handle(
            {"op": "stream", "session": "oneshot", "count": 24, "seed": 3}
        )["ok"]
        chunked = service.handle({"op": "close", "session": "chunked"})
        oneshot = service.handle({"op": "close", "session": "oneshot"})
        assert json.dumps(
            chunked["final"]["summary"], sort_keys=True
        ) == json.dumps(oneshot["final"]["summary"], sort_keys=True)

    def test_rolling_series_appear_labelled(self):
        service = PowerAdvisorService()
        _open(service, "metrics-sid", window_s=2.0)
        service.handle(
            {"op": "stream", "session": "metrics-sid", "count": 12}
        )
        report = service.handle({"op": "report", "session": "metrics-sid"})
        rolling = report["rolling"]
        assert rolling["total_mw"] > rolling["panel_mw"] > 0
        assert 0.0 <= rolling["deep_residency"] <= 1.0
        assert rolling["fps"] == pytest.approx(30.0)
        key = 'serve.win.total_mw{sid="metrics-sid"}'
        assert key in obs_metrics.registry().names()
        service.handle(
            {"op": "close", "session": "metrics-sid", "retire": True}
        )
        assert key not in obs_metrics.registry().names()

    def test_backpressure_stall_logged_when_starved(self):
        service = PowerAdvisorService(
            events=EventLog(level="debug")
        )
        # max_windows far beyond what one frame unlocks: the walker
        # stays conservative and reports a stall.
        _open(service, "starved", max_windows=1000)
        frame = _frames(1)[0].to_payload()
        response = service.handle(
            {"op": "frames", "session": "starved", "frames": [frame]}
        )
        assert response["stalled"]
        # A single frame can't unlock its own windows (the horizon is
        # round(1 * wpf) but the first window needs the frame pulled
        # before planning) — progress may be zero until more arrive.
        events = [r["event"] for r in service.events.recent]
        if response["advanced"] == 0:
            assert "backpressure.stall" in events

    def test_close_is_end_exhaustive(self):
        service = PowerAdvisorService()
        _open(service, "short")
        service.handle(
            {
                "op": "frames",
                "session": "short",
                "frames": [f.to_payload() for f in _frames(4)],
            }
        )
        ended = service.handle({"op": "end", "session": "short"})
        assert ended["finished"]
        again = service.handle({"op": "end", "session": "short"})
        assert not again["ok"]
        final = service.handle({"op": "close", "session": "short"})
        assert final["ok"]
        assert final["final"]["stats"]["windows"] == ended["windows"]
        assert "short" not in service.sessions
        events = [r["event"] for r in service.events.recent]
        assert events == [
            "session.open",
            "source.exhausted",
            "session.close",
        ]

    def test_session_status_payload(self):
        service = PowerAdvisorService()
        _open(service, "status")
        service.handle(
            {"op": "stream", "session": "status", "count": 6}
        )
        payload = service.sessions_payload()
        (status,) = payload["sessions"]
        assert status["session"] == "status"
        assert status["scheme"] == "burstlink"
        assert status["windows"] > 0
        assert status["simulated_s"] > 0


class TestOfflineParity:
    """The acceptance invariant: live observation never perturbs the
    simulation — a served session's final summary is byte-identical to
    the same stream through ``compare_schemes`` at ``retain="summary"``.
    """

    def test_served_summary_matches_compare_schemes(self, tmp_path):
        from repro.analysis.energy import compare_schemes

        frames = _frames(40, seed=11)
        service = PowerAdvisorService()
        _open(service, "parity", window_s=2.0)
        # Push in raggedy chunks, polling rolling metrics between
        # pushes — observation must not perturb the stream.
        for lo, hi in ((0, 3), (3, 4), (4, 21), (21, 40)):
            service.handle(
                {
                    "op": "frames",
                    "session": "parity",
                    "frames": [f.to_payload() for f in frames[lo:hi]],
                }
            )
            service.handle({"op": "report", "session": "parity"})
        final = service.handle({"op": "close", "session": "parity"})

        comparison = compare_schemes(
            skylake_tablet(FHD),
            frames,
            30.0,
            schemes={"burstlink": (BurstLinkScheme(), True)},
            baseline=ConventionalScheme(),
            retain="summary",
        )
        offline = comparison.runs["burstlink"]
        assert json.dumps(
            final["final"]["summary"], sort_keys=True
        ) == json.dumps(offline.summary.to_payload(), sort_keys=True)

        # And `repro obs diff` agrees the artifacts are identical.
        live_path = tmp_path / "live.json"
        offline_path = tmp_path / "offline.json"
        live_path.write_text(
            json.dumps({"summary": final["final"]["summary"]})
        )
        offline_path.write_text(
            json.dumps({"summary": offline.summary.to_payload()})
        )
        assert (
            main(["obs", "diff", str(live_path), str(offline_path)])
            == 0
        )


class TestHeartbeatWatcher:
    def _write(self, path, records):
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )

    def test_progress_series_by_namespace(self, tmp_path):
        self._write(
            tmp_path / "a-w1.hb.jsonl",
            [
                {"event": "start", "index": 0, "ns": "exhibits"},
                {"event": "done", "index": 0, "ns": "exhibits"},
                {"event": "start", "index": 1, "ns": "exhibits"},
            ],
        )
        self._write(
            tmp_path / "b-w2.hb.jsonl",
            [{"event": "start", "index": 0, "ns": "fleet"}],
        )
        watcher = HeartbeatWatcher(tmp_path)
        reg = obs_metrics.registry()
        started = reg.counter(
            'serve.progress.started{ns="exhibits"}'
        ).value
        assert watcher.poll() == 4
        assert (
            reg.counter('serve.progress.started{ns="exhibits"}').value
            == started + 2
        )
        assert (
            reg.gauge('serve.progress.active{ns="exhibits"}').value == 1
        )
        assert reg.gauge('serve.progress.active{ns="fleet"}').value == 1

    def test_poll_is_incremental_and_torn_tolerant(self, tmp_path):
        path = tmp_path / "c-w3.hb.jsonl"
        whole = json.dumps({"event": "start", "index": 0, "ns": "fleet"})
        torn = json.dumps({"event": "done", "index": 0, "ns": "fleet"})
        path.write_text(whole + "\n" + torn[:10])
        watcher = HeartbeatWatcher(tmp_path)
        assert watcher.poll() == 1
        path.write_text(whole + "\n" + torn + "\n")
        assert watcher.poll() == 1
        assert watcher.poll() == 0

    def test_missing_directory_is_quiet(self, tmp_path):
        watcher = HeartbeatWatcher(tmp_path / "nope")
        assert watcher.poll() == 0


class TestHttpPlane:
    """One real server exercises the socket + HTTP surface end to end."""

    @pytest.fixture
    def server(self, tmp_path):
        ports = {}
        up = threading.Event()

        def ready(bound):
            ports.update(bound)
            up.set()

        hb_dir = tmp_path / "hb"
        hb_dir.mkdir()
        thread = threading.Thread(
            target=serve.run_server,
            kwargs={
                "port": 0,
                "http_port": 0,
                "events_path": tmp_path / "events.jsonl",
                "heartbeat_dir": hb_dir,
                "window_s": 2.0,
                "ready": ready,
            },
            daemon=True,
        )
        thread.start()
        assert up.wait(10), "serve never came up"
        yield {**ports, "hb_dir": hb_dir, "events": tmp_path / "events.jsonl"}
        with SessionClient("127.0.0.1", ports["port"]) as client:
            client.call(op="shutdown")
        thread.join(10)
        assert not thread.is_alive()

    def _get(self, server, path):
        response = urllib.request.urlopen(
            f"http://127.0.0.1:{server['http_port']}{path}", timeout=10
        )
        return response.headers.get("Content-Type"), response.read()

    def test_full_session_over_the_wire(self, server):
        (server["hb_dir"] / "x-w9.hb.jsonl").write_text(
            json.dumps({"event": "start", "index": 0, "ns": "fleet"})
            + "\n"
        )
        with SessionClient("127.0.0.1", server["port"]) as client:
            assert client.call(op="ping")["pong"]
            client.call(
                op="open",
                scheme="burstlink",
                resolution="FHD",
                fps=30.0,
                session="wire",
            )
            pushed = client.call(
                op="stream", session="wire", count=24, seed=5
            )
            assert pushed["windows"] > 0

            ctype, body = self._get(server, "/metrics")
            assert ctype == PROMETHEUS_CONTENT_TYPE
            text = body.decode()
            assert 'repro_serve_win_total_mw{sid="wire"}' in text
            # The registry is process-wide (other tests may have fed
            # it), so assert the series exists rather than its value.
            assert (
                'repro_serve_progress_started_total{ns="fleet"}' in text
            )

            ctype, body = self._get(server, "/healthz")
            assert ctype == "application/json"
            health = json.loads(body)
            assert health["ok"] and health["sessions"] == 1

            _, body = self._get(server, "/sessions")
            (status,) = json.loads(body)["sessions"]
            assert status["session"] == "wire"
            assert status["rolling"]["total_mw"] > 0

            final = client.call(op="close", session="wire", retire=True)
            assert final["final"]["stats"]["windows"] == pushed["windows"]

        records, _ = tail_complete_lines(server["events"], 0)
        events = [r["event"] for r in records]
        assert "session.open" in events and "session.close" in events

    def test_unknown_route_404s(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_malformed_json_reported_per_line(self, server):
        import socket

        with socket.create_connection(
            ("127.0.0.1", server["port"]), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(b"this is not json\n")
            handle.flush()
            response = json.loads(handle.readline())
            assert not response["ok"]
            assert "JSON" in response["error"]


class TestCliSurface:
    def test_list_mentions_serve(self, capsys):
        assert main(["list"]) == 0
        assert "serve" in capsys.readouterr().out

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.port == 7070
        assert args.http_port == 7071
        assert args.window == 10.0
        assert args.log_level == "info"
