"""The paper-drift regression gate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs.drift import (
    DRIFT_SECTIONS,
    PAPER_EXPECTATIONS,
    Expectation,
    check_drift,
    expectations_for,
    measure_expectations,
)
from repro.power.calibration import SKYLAKE_TABLET_POWER


class TestExpectation:
    def test_band_from_absolute_tolerance(self):
        e = Expectation("k", "table2", "d", 40.0, "%", tol_abs=3.0)
        assert (e.low, e.high) == (37.0, 43.0)

    def test_band_from_relative_tolerance(self):
        e = Expectation("k", "table2", "d", 2000.0, "mW", tol_rel=0.05)
        assert e.tolerance == 100.0

    def test_requires_exactly_one_tolerance(self):
        with pytest.raises(ConfigurationError):
            Expectation("k", "s", "d", 1.0, "mW")
        with pytest.raises(ConfigurationError):
            Expectation(
                "k", "s", "d", 1.0, "mW", tol_abs=1.0, tol_rel=0.1
            )

    def test_check_flags_out_of_band(self):
        e = Expectation("k", "s", "d", 10.0, "%", tol_abs=1.0)
        assert e.check(10.5).ok
        assert not e.check(12.0).ok
        assert not e.check(float("nan")).ok

    def test_table_is_well_formed(self):
        keys = [e.key for e in PAPER_EXPECTATIONS]
        assert len(keys) == len(set(keys))
        assert {e.section for e in PAPER_EXPECTATIONS} == set(
            DRIFT_SECTIONS
        )


class TestSections:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError):
            expectations_for(("table3",))
        with pytest.raises(ConfigurationError):
            measure_expectations(("nope",))

    def test_selection_filters(self):
        selected = expectations_for(("fig01",))
        assert selected and all(
            e.section == "fig01" for e in selected
        )


class TestCheckDrift:
    def test_supplied_actuals_pass(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        report = check_drift(actuals=actuals)
        assert report.ok and not report.skipped
        assert len(report.rows) == len(PAPER_EXPECTATIONS)

    def test_supplied_actuals_fail_out_of_band(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        actuals["table2.reduction_pct"] = 0.0
        report = check_drift(actuals=actuals)
        assert not report.ok
        assert [
            r.expectation.key for r in report.failures
        ] == ["table2.reduction_pct"]
        assert "FAIL" in report.summary()

    def test_missing_actuals_reported_as_skipped(self):
        report = check_drift(
            actuals={}, sections=("fig01",)
        )
        assert report.ok  # nothing measured, nothing failed
        assert set(report.skipped) == {
            e.key for e in expectations_for(("fig01",))
        }
        assert "skipped" in report.summary()

    def test_to_dict_shape(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        payload = check_drift(actuals=actuals).to_dict()
        assert payload["ok"] is True
        anchor = payload["anchors"][0]
        assert {
            "key", "section", "paper", "low", "high", "actual",
            "deviation", "ok",
        } <= set(anchor)


class TestLiveMeasurement:
    def test_table2_anchors_in_band(self):
        report = check_drift(sections=("table2",))
        assert report.ok, report.summary()
        assert len(report.rows) == 8

    def test_perturbed_power_constant_caught(self):
        # The acceptance demonstration: perturbing one calibrated
        # constant must trip the gate.
        perturbed = dataclasses.replace(
            SKYLAKE_TABLET_POWER,
            cpu_active=SKYLAKE_TABLET_POWER.cpu_active * 3,
        )
        report = check_drift(
            sections=("table2", "fig04"), library=perturbed
        )
        assert not report.ok
        assert report.failures
        assert "DRIFT" in report.summary()

    def test_summary_mentions_pass(self):
        report = check_drift(sections=("table2",))
        assert "drift gate: PASS" in report.summary()


class TestIntervalSemantics:
    """The uncertainty-aware gate: a CI that overlaps the paper band
    passes; one seed degenerates to exactly the point check."""

    def _expectation(self):
        return Expectation("k", "s", "d", 40.0, "%", tol_abs=3.0)

    def test_overlapping_ci_passes(self):
        from repro.stats.bootstrap import IntervalEstimate

        e = self._expectation()
        # Mean outside the band but CI reaching into it still passes —
        # the reproduction is *consistent* with the paper value.
        row = e.check_interval(IntervalEstimate(
            n=3, mean=44.0, sd=1.5, lo=42.5, hi=45.5,
        ))
        assert row.ok
        assert row.estimate is not None

    def test_disjoint_ci_fails(self):
        from repro.stats.bootstrap import IntervalEstimate

        e = self._expectation()
        row = e.check_interval(IntervalEstimate(
            n=3, mean=50.0, sd=1.0, lo=49.0, hi=51.0,
        ))
        assert not row.ok

    def test_single_seed_equals_point_check(self):
        from repro.stats.bootstrap import bootstrap_mean

        e = self._expectation()
        for value in (36.9, 37.0, 40.0, 43.0, 43.1):
            degenerate = e.check_interval(bootstrap_mean([value]))
            point = e.check(value)
            assert degenerate.ok == point.ok
            assert degenerate.actual == point.actual

    def test_non_finite_mean_fails(self):
        from repro.stats.bootstrap import IntervalEstimate

        e = self._expectation()
        nan = float("nan")
        row = e.check_interval(IntervalEstimate(
            n=2, mean=nan, sd=0.0, lo=nan, hi=nan,
        ))
        assert not row.ok


class TestCheckDriftInterval:
    def _samples(self, **overrides):
        samples = {
            e.key: [e.paper, e.paper] for e in PAPER_EXPECTATIONS
        }
        samples.update(overrides)
        return samples

    def test_supplied_samples_pass(self):
        from repro.obs.drift import check_drift_interval

        report = check_drift_interval(samples=self._samples())
        assert report.ok and report.interval
        assert len(report.rows) == len(PAPER_EXPECTATIONS)
        assert all(r.estimate.n == 2 for r in report.rows)

    def test_out_of_band_samples_fail(self):
        from repro.obs.drift import check_drift_interval

        report = check_drift_interval(samples=self._samples(
            **{"table2.reduction_pct": [0.0, 0.1]}
        ))
        assert not report.ok
        assert [r.expectation.key for r in report.failures] == [
            "table2.reduction_pct"
        ]

    def test_missing_anchor_skipped(self):
        from repro.obs.drift import check_drift_interval

        samples = self._samples()
        del samples["fig01.dram_share_fhd_pct"]
        report = check_drift_interval(samples=samples)
        assert report.ok
        assert report.skipped == ["fig01.dram_share_fhd_pct"]

    def test_summary_gains_ci_column_and_seed_count(self):
        from repro.obs.drift import check_drift_interval

        text = check_drift_interval(
            samples=self._samples()
        ).summary()
        assert "ci" in text.splitlines()[0]
        assert "CI overlap over 2 seeds" in text

    def test_point_summary_has_no_ci_column(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        text = check_drift(actuals=actuals).summary()
        assert "ci" not in text.splitlines()[0]
        assert "CI overlap" not in text

    def test_to_dict_carries_interval_fields(self):
        from repro.obs.drift import check_drift_interval

        payload = check_drift_interval(
            samples=self._samples()
        ).to_dict()
        assert payload["mode"] == "interval"
        anchor = payload["anchors"][0]
        assert {"lo", "hi", "tolerance", "ci"} <= set(anchor)
        assert anchor["ci"]["n"] == 2
        assert anchor["ci"]["lo"] <= anchor["ci"]["hi"]

    def test_point_to_dict_keeps_aliases_without_ci(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        payload = check_drift(actuals=actuals).to_dict()
        assert payload["mode"] == "point"
        anchor = payload["anchors"][0]
        assert {"lo", "hi", "tolerance"} <= set(anchor)
        assert "ci" not in anchor
        assert anchor["lo"] == anchor["low"]
        assert anchor["hi"] == anchor["high"]

    def test_live_two_seed_fig04_passes(self):
        from repro.obs.drift import check_drift_interval

        report = check_drift_interval(
            sections=("fig04",), seeds=2
        )
        assert report.ok, report.summary()
        assert report.interval
        assert all(r.estimate.n == 2 for r in report.rows)


class TestBenchCiFields:
    def _outcomes(self):
        from repro.analysis.runner import run_exhibit

        return [run_exhibit("fig04")]

    def test_snapshot_without_samples_unchanged(self):
        from repro.obs.drift import bench_snapshot

        snapshot = bench_snapshot(self._outcomes(), date="2026-01-01")
        assert snapshot["format"] == 1
        assert "repeat" not in snapshot
        assert "total_wall_ci_half_s" not in snapshot
        assert "wall_ci_half_s" not in snapshot["exhibits"]["fig04"]

    def test_snapshot_with_samples_adds_ci_fields(self):
        from repro.obs.drift import bench_snapshot

        snapshot = bench_snapshot(
            self._outcomes(),
            date="2026-01-01",
            wall_samples={"fig04": [1.0, 1.2, 1.1]},
        )
        assert snapshot["format"] == 1
        assert snapshot["repeat"] == 3
        entry = snapshot["exhibits"]["fig04"]
        assert entry["wall_mean_s"] == pytest.approx(1.1)
        assert entry["wall_ci_half_s"] >= 0.0
        assert snapshot["total_wall_ci_half_s"] == (
            entry["wall_ci_half_s"]
        )

    def test_check_bench_reports_baseline_noise(self, tmp_path):
        from repro.obs.drift import check_bench, record_bench

        outcomes = self._outcomes()
        record_bench(
            outcomes, tmp_path, date="2026-01-01",
            wall_samples={"fig04": [1.0, 1.2]},
        )
        check = check_bench(outcomes, tmp_path)
        assert any(
            "baseline noise" in note for note in check.notes
        )
