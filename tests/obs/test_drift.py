"""The paper-drift regression gate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.obs.drift import (
    DRIFT_SECTIONS,
    PAPER_EXPECTATIONS,
    Expectation,
    check_drift,
    expectations_for,
    measure_expectations,
)
from repro.power.calibration import SKYLAKE_TABLET_POWER


class TestExpectation:
    def test_band_from_absolute_tolerance(self):
        e = Expectation("k", "table2", "d", 40.0, "%", tol_abs=3.0)
        assert (e.low, e.high) == (37.0, 43.0)

    def test_band_from_relative_tolerance(self):
        e = Expectation("k", "table2", "d", 2000.0, "mW", tol_rel=0.05)
        assert e.tolerance == 100.0

    def test_requires_exactly_one_tolerance(self):
        with pytest.raises(ConfigurationError):
            Expectation("k", "s", "d", 1.0, "mW")
        with pytest.raises(ConfigurationError):
            Expectation(
                "k", "s", "d", 1.0, "mW", tol_abs=1.0, tol_rel=0.1
            )

    def test_check_flags_out_of_band(self):
        e = Expectation("k", "s", "d", 10.0, "%", tol_abs=1.0)
        assert e.check(10.5).ok
        assert not e.check(12.0).ok
        assert not e.check(float("nan")).ok

    def test_table_is_well_formed(self):
        keys = [e.key for e in PAPER_EXPECTATIONS]
        assert len(keys) == len(set(keys))
        assert {e.section for e in PAPER_EXPECTATIONS} == set(
            DRIFT_SECTIONS
        )


class TestSections:
    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError):
            expectations_for(("table3",))
        with pytest.raises(ConfigurationError):
            measure_expectations(("nope",))

    def test_selection_filters(self):
        selected = expectations_for(("fig01",))
        assert selected and all(
            e.section == "fig01" for e in selected
        )


class TestCheckDrift:
    def test_supplied_actuals_pass(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        report = check_drift(actuals=actuals)
        assert report.ok and not report.skipped
        assert len(report.rows) == len(PAPER_EXPECTATIONS)

    def test_supplied_actuals_fail_out_of_band(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        actuals["table2.reduction_pct"] = 0.0
        report = check_drift(actuals=actuals)
        assert not report.ok
        assert [
            r.expectation.key for r in report.failures
        ] == ["table2.reduction_pct"]
        assert "FAIL" in report.summary()

    def test_missing_actuals_reported_as_skipped(self):
        report = check_drift(
            actuals={}, sections=("fig01",)
        )
        assert report.ok  # nothing measured, nothing failed
        assert set(report.skipped) == {
            e.key for e in expectations_for(("fig01",))
        }
        assert "skipped" in report.summary()

    def test_to_dict_shape(self):
        actuals = {e.key: e.paper for e in PAPER_EXPECTATIONS}
        payload = check_drift(actuals=actuals).to_dict()
        assert payload["ok"] is True
        anchor = payload["anchors"][0]
        assert {
            "key", "section", "paper", "low", "high", "actual",
            "deviation", "ok",
        } <= set(anchor)


class TestLiveMeasurement:
    def test_table2_anchors_in_band(self):
        report = check_drift(sections=("table2",))
        assert report.ok, report.summary()
        assert len(report.rows) == 8

    def test_perturbed_power_constant_caught(self):
        # The acceptance demonstration: perturbing one calibrated
        # constant must trip the gate.
        perturbed = dataclasses.replace(
            SKYLAKE_TABLET_POWER,
            cpu_active=SKYLAKE_TABLET_POWER.cpu_active * 3,
        )
        report = check_drift(
            sections=("table2", "fig04"), library=perturbed
        )
        assert not report.ok
        assert report.failures
        assert "DRIFT" in report.summary()

    def test_summary_mentions_pass(self):
        report = check_drift(sections=("table2",))
        assert "drift gate: PASS" in report.summary()
