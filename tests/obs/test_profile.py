"""The energy-attribution profiler: forest, ledger, reconciliation."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.golden import capture_trace
from repro.obs.profile import (
    OUTSIDE_WINDOWS,
    RECONCILE_RTOL,
    build_span_forest,
    energy_ledger,
    iter_spans,
    percentile,
    profile_capture,
    profile_exhibit,
    reconcile,
    render_profile,
    span_time_stats,
    traced_component_energies,
    window_spans,
    window_stats,
)
from repro.obs.trace import Tracer
from repro.power.model import (
    COMPONENT_IDS,
    COMPONENT_KEYS,
    component_id,
    state_id,
)
from repro.soc.cstates import PackageCState


@pytest.fixture(scope="module")
def burstlink_profile():
    return profile_exhibit("burstlink")


class TestSpanForest:
    def test_nested_spans_reassemble(self):
        tracer = Tracer()
        outer = tracer.begin_span("outer", t=0.0)
        inner = tracer.begin_span("inner", t=0.1)
        tracer.event("tick", t=0.15)
        tracer.end_span(inner, t=0.2)
        tracer.end_span(outer, t=1.0)
        roots, root_events = build_span_forest(tracer.events)
        assert len(roots) == 1 and not root_events
        (root,) = roots
        assert root.name == "outer" and root.duration == 1.0
        (child,) = root.children
        assert child.name == "inner"
        assert child.events[0]["name"] == "tick"

    def test_unclosed_span_survives(self):
        tracer = Tracer()
        tracer.begin_span("never.ends", t=0.0)
        roots, _ = build_span_forest(tracer.events)
        assert roots[0].closed is False
        assert roots[0].duration is None

    def test_end_without_begin_ignored(self):
        events = [{"seq": 0, "kind": "E", "name": "", "span": 99}]
        roots, root_events = build_span_forest(events)
        assert roots == [] and root_events == []

    def test_events_outside_spans_go_to_root(self):
        tracer = Tracer()
        tracer.event("orphan", t=0.0)
        tracer.counter("hits")
        roots, root_events = build_span_forest(tracer.events)
        assert roots == []
        assert [e["name"] for e in root_events] == ["orphan", "hits"]

    def test_iter_spans_walks_depth_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        roots, _ = build_span_forest(tracer.events)
        assert [n.name for n in iter_spans(roots)] == ["a", "b", "c"]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value(self):
        assert percentile([3.0], 99) == 3.0

    def test_interpolates(self):
        assert percentile([0.0, 10.0], 50) == 5.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            percentile([1.0], 101)


class TestStableIds:
    def test_component_ids_pinned(self):
        # The append-only contract: existing ids must never change.
        assert COMPONENT_IDS["soc_floor"] == 0
        assert COMPONENT_IDS["always_on"] == 1
        assert COMPONENT_IDS["cpu"] == 2
        assert COMPONENT_IDS["panel"] == 7
        assert COMPONENT_IDS["transition"] == 12
        assert len(COMPONENT_IDS) == len(COMPONENT_KEYS)
        assert sorted(COMPONENT_IDS.values()) == list(
            range(len(COMPONENT_KEYS))
        )

    def test_component_id_rejects_unknown(self):
        with pytest.raises(SimulationError):
            component_id("flux_capacitor")

    def test_state_id_accepts_enum_and_string(self):
        assert state_id(PackageCState.C7) == "C7"
        assert state_id("C9") == "C9"

    def test_state_id_rejects_unknown(self):
        with pytest.raises(SimulationError):
            state_id("C99")


class TestWindowJoin:
    def test_window_spans_sorted_with_kinds(self):
        tracer, _ = capture_trace("conventional")
        roots, _ = build_span_forest(tracer.events)
        windows = window_spans(roots)
        assert windows
        starts = [w.start_t for w in windows]
        assert starts == sorted(starts)
        assert {w.kind for w in windows} <= {"new_frame", "repeat"}

    def test_window_stats_rows(self):
        tracer, _ = capture_trace("conventional")
        roots, _ = build_span_forest(tracer.events)
        stats = window_stats(roots)
        for kind in stats.kinds():
            count, p50, p90, p99, worst = stats.row(kind)
            assert count > 0
            assert 0 < p50 <= p90 <= p99 <= worst


class TestLedger:
    def test_reconciles_with_traced_report(self, burstlink_profile):
        recon = burstlink_profile.reconciliation
        assert recon.ok
        # The acceptance bar is 0.1%; the join is exact, so we hold it
        # to the reconciliation tolerance itself.
        assert recon.total_rel_err <= RECONCILE_RTOL
        assert recon.max_component_rel_err <= RECONCILE_RTOL

    def test_ledger_total_matches_model_report(self, burstlink_profile):
        assert burstlink_profile.ledger.total_mj == pytest.approx(
            burstlink_profile.total_energy_mj, rel=1e-9
        )

    def test_rollups_sum_to_total(self, burstlink_profile):
        ledger = burstlink_profile.ledger
        for rollup in (
            ledger.by_component(),
            ledger.by_state(),
            ledger.by_window_kind(),
        ):
            assert sum(rollup.values()) == pytest.approx(
                ledger.total_mj, rel=1e-9
            )

    def test_window_kinds_cover_the_run(self, burstlink_profile):
        kinds = burstlink_profile.ledger.by_window_kind()
        assert "new_frame" in kinds and "repeat" in kinds

    def test_top_rows_descending(self, burstlink_profile):
        rows = burstlink_profile.ledger.top_rows(limit=10)
        energies = [row.energy_mj for row in rows]
        assert energies == sorted(energies, reverse=True)
        assert all(e > 0 for e in energies)

    def test_segments_outside_windows_attributed(self):
        # A run profiled against *no* windows lands everything in the
        # "outside" bucket rather than dropping energy.
        _, run = capture_trace("conventional")
        ledger = energy_ledger(run, windows=[])
        kinds = ledger.by_window_kind()
        assert set(kinds) == {OUTSIDE_WINDOWS}
        assert kinds[OUTSIDE_WINDOWS] == pytest.approx(
            ledger.total_mj
        )

    def test_mismatch_detected(self):
        tracer, run = capture_trace("conventional")
        roots, _ = build_span_forest(tracer.events)
        ledger = energy_ledger(run, window_spans(roots))
        traced = traced_component_energies(roots)
        traced["panel"] *= 1.5  # simulate a drifted power report
        assert not reconcile(ledger, traced).ok


class TestExhibitProfile:
    def test_span_stats_cover_the_pipeline(self, burstlink_profile):
        names = set(burstlink_profile.span_stats)
        assert {"sim.run", "sim.window", "power.report"} <= names
        run_stat = burstlink_profile.span_stats["sim.run"]
        window_stat = burstlink_profile.span_stats["sim.window"]
        # Windows tile the run: their total equals the run's duration,
        # and the run span's self time is fully explained by them.
        assert window_stat.total_s == pytest.approx(
            run_stat.total_s, rel=1e-9
        )
        assert run_stat.self_s == pytest.approx(0.0, abs=1e-12)

    def test_to_dict_round_trips_as_json(self, burstlink_profile):
        payload = json.loads(burstlink_profile.to_json())
        assert payload["exhibit"] == "burstlink"
        assert payload["reconciliation"]["ok"] is True
        assert payload["ledger"]
        for row in payload["ledger"]:
            assert row["component_id"] == COMPONENT_IDS[row["component"]]

    def test_render_mentions_reconciliation(self, burstlink_profile):
        text = render_profile(burstlink_profile)
        assert "Energy attribution" in text
        assert "reconciliation:" in text and "[OK]" in text

    def test_profile_capture_matches_exhibit(self):
        tracer, run = capture_trace("vr")
        profile = profile_capture("vr", tracer, run)
        assert profile.scheme == run.scheme
        assert profile.reconciliation.ok
