"""Synthetic head-movement traces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.traces import (
    HeadTrace,
    HeadTraceParams,
    generate_head_trace,
)
from repro.workloads.vr import VR_WORKLOADS


@pytest.fixture
def calm():
    return HeadTraceParams(yaw_speed_mean=8.0, yaw_speed_std=4.0)


@pytest.fixture
def wild():
    return HeadTraceParams(yaw_speed_mean=45.0, yaw_speed_std=30.0)


class TestParams:
    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            HeadTraceParams(yaw_speed_mean=-1, yaw_speed_std=1)

    def test_zero_reversion_rejected(self):
        with pytest.raises(ConfigurationError):
            HeadTraceParams(
                yaw_speed_mean=1, yaw_speed_std=1, reversion=0
            )


class TestGeneration:
    def test_deterministic(self, calm):
        a = generate_head_trace(calm, 2.0, seed=5)
        b = generate_head_trace(calm, 2.0, seed=5)
        assert np.array_equal(a.yaw, b.yaw)

    def test_seeds_differ(self, calm):
        a = generate_head_trace(calm, 2.0, seed=1)
        b = generate_head_trace(calm, 2.0, seed=2)
        assert not np.array_equal(a.yaw, b.yaw)

    def test_length(self, calm):
        trace = generate_head_trace(calm, 2.0, sample_hz=30)
        assert len(trace) == 60

    def test_yaw_wraps(self, wild):
        trace = generate_head_trace(wild, 30.0)
        assert np.all(trace.yaw >= -180)
        assert np.all(trace.yaw <= 180)

    def test_pitch_clamped(self, wild):
        trace = generate_head_trace(wild, 30.0)
        assert np.all(np.abs(trace.pitch) <= 90)

    def test_speeds_nonnegative(self, calm):
        trace = generate_head_trace(calm, 2.0)
        assert np.all(trace.angular_speed >= 0)

    def test_wild_faster_than_calm(self, calm, wild):
        calm_trace = generate_head_trace(calm, 10.0, seed=3)
        wild_trace = generate_head_trace(wild, 10.0, seed=3)
        assert wild_trace.mean_speed > 2 * calm_trace.mean_speed

    def test_mean_speed_tracks_parameter(self, calm):
        trace = generate_head_trace(calm, 30.0)
        assert trace.mean_speed == pytest.approx(
            calm.yaw_speed_mean, rel=0.8
        )

    def test_peak_at_least_mean(self, wild):
        trace = generate_head_trace(wild, 5.0)
        assert trace.peak_speed >= trace.mean_speed

    def test_bad_duration_rejected(self, calm):
        with pytest.raises(ConfigurationError):
            generate_head_trace(calm, 0.0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            HeadTrace(
                timestamps=np.zeros(3),
                yaw=np.zeros(2),
                pitch=np.zeros(3),
                angular_speed=np.zeros(3),
            )


class TestTraceIO:
    def test_roundtrip(self, calm, tmp_path):
        from repro.workloads.traces import (
            load_head_trace,
            save_head_trace,
        )

        original = generate_head_trace(calm, 2.0, seed=7)
        path = tmp_path / "trace.csv"
        save_head_trace(original, str(path))
        loaded = load_head_trace(str(path))
        assert len(loaded) == len(original)
        assert np.allclose(loaded.yaw, original.yaw, atol=1e-3)
        assert np.allclose(loaded.pitch, original.pitch, atol=1e-3)

    def test_derived_speed_close_to_original(self, wild, tmp_path):
        from repro.workloads.traces import (
            load_head_trace,
            save_head_trace,
        )

        original = generate_head_trace(wild, 5.0, seed=7)
        path = tmp_path / "trace.csv"
        save_head_trace(original, str(path))
        loaded = load_head_trace(str(path))
        # Speeds are re-derived from positions; yaw wrapping and pitch
        # clamping mean they only agree in aggregate.
        assert loaded.mean_speed == pytest.approx(
            original.mean_speed, rel=0.5
        )

    def test_bad_header_rejected(self, tmp_path):
        from repro.workloads.traces import load_head_trace

        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n0,0,0\n1,0,0\n")
        with pytest.raises(ConfigurationError):
            load_head_trace(str(path))

    def test_non_numeric_rejected(self, tmp_path):
        from repro.workloads.traces import load_head_trace

        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,yaw_deg,pitch_deg\n0,0,0\nx,0,0\n"
        )
        with pytest.raises(ConfigurationError):
            load_head_trace(str(path))

    def test_non_monotonic_time_rejected(self, tmp_path):
        from repro.workloads.traces import load_head_trace

        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,yaw_deg,pitch_deg\n1,0,0\n0.5,0,0\n"
        )
        with pytest.raises(ConfigurationError):
            load_head_trace(str(path))

    def test_too_short_rejected(self, tmp_path):
        from repro.workloads.traces import load_head_trace

        path = tmp_path / "bad.csv"
        path.write_text("time_s,yaw_deg,pitch_deg\n0,0,0\n")
        with pytest.raises(ConfigurationError):
            load_head_trace(str(path))


class TestWorkloadCharacterisation:
    def test_rollercoaster_is_the_fastest_head(self):
        speeds = {
            name: generate_head_trace(
                workload.head, 10.0, seed=workload.seed
            ).mean_speed
            for name, workload in VR_WORKLOADS.items()
        }
        assert max(speeds, key=speeds.get) == "Rollercoaster"

    def test_elephant_is_calm(self):
        speeds = {
            name: generate_head_trace(
                workload.head, 10.0, seed=workload.seed
            ).mean_speed
            for name, workload in VR_WORKLOADS.items()
        }
        assert speeds["Elephant"] < speeds["Rollercoaster"] / 2
