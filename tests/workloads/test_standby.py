"""Connected standby (the C10 regime)."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.pipeline import ConventionalScheme
from repro.pipeline.sim import install_run_memo
from repro.power.model import PlatformExtras, PowerModel
from repro.soc.cstates import PackageCState
from repro.workloads.standby import (
    AmbientStandbyWorkload,
    ambient_standby_run,
    standby_power_mw,
    standby_timeline,
)


@pytest.fixture
def config():
    return skylake_tablet(FHD)


class TestTimeline:
    def test_duration(self, config):
        timeline = standby_timeline(config, duration_s=30.0)
        assert timeline.duration == pytest.approx(30.0)

    def test_c10_dominates(self, config):
        fractions = standby_timeline(
            config, duration_s=30.0
        ).residency_fractions()
        assert fractions[PackageCState.C10] > 0.98

    def test_wake_count(self, config):
        timeline = standby_timeline(
            config, duration_s=60.0, wake_interval_s=10.0
        )
        wakes = [
            s for s in timeline
            if s.cpu_active and not s.transition
        ]
        # One wake per 10 s cadence tick, including the one that lands
        # exactly on the 60 s boundary.
        assert len(wakes) == 6

    def test_panel_stays_off(self, config):
        from repro.pipeline.timeline import PanelMode

        timeline = standby_timeline(config, duration_s=20.0)
        assert all(
            s.panel_mode is PanelMode.OFF for s in timeline
        )

    def test_validation(self, config):
        with pytest.raises(ConfigurationError):
            standby_timeline(config, duration_s=0)
        with pytest.raises(ConfigurationError):
            standby_timeline(config, wake_interval_s=0)
        with pytest.raises(ConfigurationError):
            standby_timeline(
                config, wake_interval_s=1.0, wake_work_s=2.0
            )


class TestPower:
    def test_standby_is_tens_of_milliwatts(self, config):
        """With the panel off and C10 dominating, the floor sits
        orders of magnitude below any display workload."""
        power = standby_power_mw(config)
        assert power < 150.0

    def test_more_wakes_cost_more(self, config):
        frequent = standby_power_mw(config, wake_interval_s=2.0)
        rare = standby_power_mw(config, wake_interval_s=30.0)
        assert frequent > rare

    def test_standby_far_below_video(self, config):
        """The whole point of the regime split: video is ~2 W, standby
        is ~0.05 W."""
        from repro.pipeline import (
            ConventionalScheme,
            FrameWindowSimulator,
        )
        from repro.video.source import AnalyticContentModel

        video = PowerModel().report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                AnalyticContentModel().frames(FHD, 8), 30.0
            )
        )
        assert standby_power_mw(config) < (
            video.average_power_mw / 10
        )

    def test_c10_exit_latency_charged(self, config):
        """Every wake pays the long C10 exit: the timeline carries one
        transition excursion per wake plus the re-entries."""
        timeline = standby_timeline(
            config, duration_s=60.0, wake_interval_s=10.0
        )
        assert timeline.transition_count() >= 10
        extras = PlatformExtras(
            streaming=False, local_playback=False
        )
        report = PowerModel(extras=extras).report_timeline(
            timeline, config.panel
        )
        assert report.transition_energy_mj > 0


@pytest.fixture
def no_memo():
    """Ambient runs below must actually simulate, not hit the cache."""
    previous = install_run_memo(None)
    yield
    install_run_memo(previous)


class TestAmbientStandby:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmbientStandbyWorkload(duration_s=0)
        with pytest.raises(ConfigurationError):
            AmbientStandbyWorkload(update_fps=0)
        with pytest.raises(ConfigurationError):
            AmbientStandbyWorkload(update_fps=120.0, refresh_hz=60.0)

    def test_counts(self):
        workload = AmbientStandbyWorkload(
            duration_s=60.0, update_fps=0.2
        )
        assert workload.window_count == 3600
        # A 0.2 FPS clock face redraws 12 times in a minute.
        assert workload.frame_count == 12
        assert len(workload.source()) == 12

    def test_run_is_summary_only(self, no_memo):
        run = ambient_standby_run(
            AmbientStandbyWorkload(duration_s=5.0),
            ConventionalScheme(),
        )
        assert run.timeline is None
        assert run.summary is not None
        assert run.duration == pytest.approx(5.0)
        assert run.stats.repeat_windows > run.stats.new_frame_windows

    def test_full_retain_available(self, no_memo):
        run = ambient_standby_run(
            AmbientStandbyWorkload(duration_s=1.0),
            ConventionalScheme(),
            retain="full",
        )
        assert run.timeline is not None
        assert run.timeline.duration == pytest.approx(1.0)

    def test_collapse_hits_dominate(self, no_memo):
        """The ambient regime is the collapse showcase: >= 95% of
        windows replay the memoized previous plan."""
        registry = obs_metrics.registry()
        before_hit = registry.counter("sim.collapse.hit", "").value
        before_miss = registry.counter("sim.collapse.miss", "").value
        run = ambient_standby_run(
            AmbientStandbyWorkload(duration_s=30.0),
            ConventionalScheme(),
        )
        hits = (
            registry.counter("sim.collapse.hit", "").value - before_hit
        )
        misses = (
            registry.counter("sim.collapse.miss", "").value
            - before_miss
        )
        assert hits + misses == run.stats.windows
        assert hits / run.stats.windows >= 0.95

    def test_power_sits_between_dark_standby_and_video(
        self, config, no_memo
    ):
        """Screen-on standby costs more than the panel-off floor but
        far less than active video playback."""
        run = ambient_standby_run(
            AmbientStandbyWorkload(duration_s=10.0),
            ConventionalScheme(),
        )
        extras = PlatformExtras(streaming=False, local_playback=False)
        ambient_mw = PowerModel(extras=extras).report(
            run
        ).average_power_mw
        assert ambient_mw > standby_power_mw(config)
