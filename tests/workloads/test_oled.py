"""The OLED video workload: luminance-aware panel pricing end to end."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.power.calibration import SKYLAKE_TABLET_POWER
from repro.video.source import CONTENT_APL, ContentClass
from repro.workloads.oled import OledVideoWorkload, oled_video_run


class TestWorkloadShape:
    def test_brightness_validated(self):
        with pytest.raises(ConfigurationError):
            OledVideoWorkload(brightness=0.0)
        with pytest.raises(ConfigurationError):
            OledVideoWorkload(brightness=1.2)

    def test_config_swaps_the_panel_for_an_oled(self):
        workload = OledVideoWorkload(brightness=0.6)
        config = workload.system_config()
        assert config.panel.is_oled
        assert config.panel.brightness == 0.6
        assert not skylake_tablet(FHD).panel.is_oled

    def test_frames_carry_the_content_family_apl(self):
        workload = OledVideoWorkload(content=ContentClass.SCREEN)
        frame = next(iter(workload.source()))
        assert frame.attributes is not None
        assert frame.attributes.apl == CONTENT_APL[ContentClass.SCREEN]


class TestLuminancePricing:
    def _avg_power(self, brightness, scheme=None, with_drfb=False):
        workload = OledVideoWorkload(
            brightness=brightness, frame_count=30
        )
        run = oled_video_run(
            workload,
            scheme or ConventionalScheme(),
            with_drfb=with_drfb,
        )
        return PowerModel().report(run)

    def test_panel_energy_scales_with_brightness(self):
        dim = self._avg_power(0.5)
        full = self._avg_power(1.0)
        assert full.by_component_mj["panel"] > dim.by_component_mj["panel"]
        assert full.total_energy_mj > dim.total_energy_mj

    def test_emission_is_linear_in_brightness(self):
        # panel(b) = base + b * emission: the brightness-dependent part
        # must double from 0.5 to 1.0.
        quarter = self._avg_power(0.25).by_component_mj["panel"]
        half = self._avg_power(0.5).by_component_mj["panel"]
        full = self._avg_power(1.0).by_component_mj["panel"]
        assert full - half == pytest.approx(
            2.0 * (half - quarter), rel=1e-6
        )

    def test_reduction_shrinks_as_brightness_grows(self):
        # The emissive floor grows with brightness, so BurstLink's
        # relative saving falls — the Duinkharjav et al. trade-off.
        def reduction(brightness):
            base = self._avg_power(brightness).average_power_mw
            burst = self._avg_power(
                brightness, BurstLinkScheme(), with_drfb=True
            ).average_power_mw
            return 1.0 - burst / base

        assert reduction(1.0) < reduction(0.4)

    def test_oled_run_reconciles_per_segment_and_summary(self):
        # The registry's panel term prices APL-seconds identically on
        # the timeline path and the class-totals path.
        workload = OledVideoWorkload(frame_count=30)
        config = workload.system_config()
        model = PowerModel()
        full = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                workload.source(), workload.fps, retain="full"
            )
        )
        streamed = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                workload.source(), workload.fps, retain="summary"
            )
        )
        assert streamed.total_energy_mj == pytest.approx(
            full.total_energy_mj
        )
        assert streamed.by_component_mj["panel"] == pytest.approx(
            full.by_component_mj["panel"]
        )
