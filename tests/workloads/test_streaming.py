"""The network-streamed playback workload: ABR wiring and the
Herglotz-style power behavior it was built to exhibit."""

import pytest

from repro.config import FHD
from repro.core import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme
from repro.power import PlatformExtras, PowerModel
from repro.workloads.streaming import (
    NetworkStreamWorkload,
    network_stream_run,
)


class TestWorkloadShape:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkStreamWorkload(frame_count=0)
        with pytest.raises(ConfigurationError):
            NetworkStreamWorkload(fps=0)
        with pytest.raises(ConfigurationError):
            NetworkStreamWorkload(bandwidth_mbps=0)

    def test_source_wires_the_abr_client(self):
        workload = NetworkStreamWorkload(
            bandwidth_mbps=4.0, fluctuation=0.1, chunk_frames=12, seed=7
        )
        source = workload.source()
        assert source.bandwidth_bps == 4.0e6
        assert source.fluctuation == 0.1
        assert source.chunk_frames == 12
        assert source.seed == 7
        assert len(source) == workload.frame_count
        assert source.resolution == FHD

    def test_constrained_session_rebuffers(self):
        workload = NetworkStreamWorkload(bandwidth_mbps=1.2)
        source = workload.source()
        assert source.rebuffer_events > 0
        assert source.stall_ratio > 0.0


class TestStreamedRuns:
    def _avg_power(self, scheme, with_drfb=False, **overrides):
        workload = NetworkStreamWorkload(**overrides)
        run = network_stream_run(workload, scheme, with_drfb=with_drfb)
        return PowerModel(
            extras=PlatformExtras(streaming=True)
        ).report(run).average_power_mw

    def test_run_covers_the_session(self):
        workload = NetworkStreamWorkload()
        run = network_stream_run(workload, ConventionalScheme())
        expected = workload.frame_count / workload.fps
        assert run.timeline.duration == pytest.approx(expected, rel=0.05)

    def test_burstlink_beats_conventional(self):
        base = self._avg_power(ConventionalScheme())
        burst = self._avg_power(BurstLinkScheme(), with_drfb=True)
        assert burst < base

    def test_power_moves_weakly_with_bandwidth(self):
        # Herglotz et al.: streaming power is display-dominated; a 4x
        # bandwidth cut moves end-to-end power by well under 5%.
        ample = self._avg_power(ConventionalScheme(), bandwidth_mbps=20.0)
        lean = self._avg_power(ConventionalScheme(), bandwidth_mbps=5.0)
        assert abs(ample - lean) / ample < 0.05
