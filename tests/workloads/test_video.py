"""Planar video workloads: streaming and local playback."""

import pytest

from repro.config import FHD, UHD_4K, UHD_5K
from repro.core.bypass import FrameBufferBypassScheme
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.workloads.video import (
    EDP_HIGH_REFRESH,
    PlanarVideoWorkload,
    local_playback_run,
    planar_streaming_run,
)


class TestWorkloadConfig:
    def test_standard_modes_use_stock_link(self):
        workload = PlanarVideoWorkload(resolution=UHD_4K)
        assert workload.system_config().edp.name == "eDP 1.4"

    def test_high_refresh_substitutes_fast_link(self):
        workload = PlanarVideoWorkload(
            resolution=UHD_4K, fps=60.0, refresh_hz=144.0
        )
        assert workload.system_config().edp is EDP_HIGH_REFRESH

    def test_frames_generated(self):
        workload = PlanarVideoWorkload(
            resolution=FHD, frame_count=10
        )
        frames = workload.frames()
        assert len(frames) == 10
        assert frames[0].decoded_bytes == FHD.frame_bytes()

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanarVideoWorkload(resolution=FHD, frame_count=0)

    def test_bad_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanarVideoWorkload(resolution=FHD, fps=0)


class TestRunners:
    def test_streaming_run(self):
        workload = PlanarVideoWorkload(
            resolution=FHD, frame_count=8
        )
        run = planar_streaming_run(workload, ConventionalScheme())
        assert run.stats.windows == 16  # 8 frames at 30 on 60 Hz

    def test_drfb_flag_propagates(self):
        workload = PlanarVideoWorkload(
            resolution=FHD, frame_count=4
        )
        run = planar_streaming_run(
            workload, ConventionalScheme(), with_drfb=True
        )
        assert run.config.panel.has_drfb

    def test_local_requires_local_flag(self):
        workload = PlanarVideoWorkload(resolution=FHD)
        with pytest.raises(ConfigurationError):
            local_playback_run(workload, ConventionalScheme())

    def test_local_playback_at_high_refresh(self):
        workload = PlanarVideoWorkload(
            resolution=UHD_4K,
            fps=60.0,
            refresh_hz=120.0,
            frame_count=4,
            local=True,
        )
        run = local_playback_run(
            workload, FrameBufferBypassScheme()
        )
        assert run.stats.deadline_misses == 0

    def test_5k60_runs(self):
        workload = PlanarVideoWorkload(
            resolution=UHD_5K, fps=60.0, frame_count=4, local=True
        )
        run = local_playback_run(workload, ConventionalScheme())
        assert run.stats.windows == 4
