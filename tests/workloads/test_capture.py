"""The capture workload runner."""

import pytest

from repro.config import FHD, UHD_4K
from repro.core.capture import (
    BurstCaptureScheme,
    ConventionalCaptureScheme,
)
from repro.errors import ConfigurationError
from repro.power import PowerModel
from repro.workloads.capture import CaptureWorkload, capture_run


class TestWorkload:
    def test_frames_have_capture_sizes(self):
        workload = CaptureWorkload(sensor=FHD, encode_ratio=20.0,
                                   frame_count=5)
        frames = workload.frames()
        assert len(frames) == 5
        assert frames[0].decoded_bytes == FHD.frame_bytes()
        assert frames[0].encoded_bytes == pytest.approx(
            FHD.frame_bytes() / 20.0
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CaptureWorkload(sensor=FHD, fps=0)
        with pytest.raises(ConfigurationError):
            CaptureWorkload(sensor=FHD, encode_ratio=1.0)
        with pytest.raises(ConfigurationError):
            CaptureWorkload(sensor=FHD, frame_count=0)


class TestRunner:
    def test_conventional_run(self):
        run = capture_run(
            CaptureWorkload(sensor=FHD, frame_count=8),
            ConventionalCaptureScheme(),
        )
        assert run.stats.windows == 16
        assert run.stats.deadline_misses == 0

    def test_burst_run_needs_drfb(self):
        run = capture_run(
            CaptureWorkload(sensor=FHD, frame_count=8),
            BurstCaptureScheme(),
            with_drfb=True,
        )
        assert run.config.panel.has_drfb
        assert run.stats.bypassed_windows == (
            run.stats.new_frame_windows
        )

    def test_generalization_saving_at_4k(self):
        workload = CaptureWorkload(sensor=UHD_4K, frame_count=8)
        model = PowerModel()
        base = model.report(
            capture_run(workload, ConventionalCaptureScheme())
        )
        burst = model.report(
            capture_run(workload, BurstCaptureScheme(), with_drfb=True)
        )
        assert burst.average_power_mw < 0.75 * base.average_power_mw
