"""VR workloads and runners."""

import pytest

from repro.config import VR_EYE_RESOLUTIONS
from repro.core.burstlink import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.workloads.vr import (
    VR_WORKLOADS,
    VrWorkload,
    build_vr_setup,
    source_resolution_for,
    vr_streaming_run,
)


class TestCatalogue:
    def test_five_workloads(self):
        assert set(VR_WORKLOADS) == {
            "Elephant", "Paris", "Rollercoaster", "Timelapse", "Rhino",
        }

    def test_rollercoaster_most_compute_intense(self):
        intensities = {
            name: w.compute_intensity
            for name, w in VR_WORKLOADS.items()
        }
        assert max(intensities, key=intensities.get) == (
            "Rollercoaster"
        )

    def test_bad_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            VrWorkload(
                name="x",
                source_resolution=VR_WORKLOADS["Rhino"]
                .source_resolution,
                content=VR_WORKLOADS["Rhino"].content,
                head=VR_WORKLOADS["Rhino"].head,
                compute_intensity=0,
            )


class TestSourceScaling:
    def test_sphere_is_2_to_1(self):
        for per_eye in VR_EYE_RESOLUTIONS:
            sphere = source_resolution_for(per_eye)
            assert sphere.width == 2 * sphere.height

    def test_sphere_grows_with_eye_resolution(self):
        small = source_resolution_for(VR_EYE_RESOLUTIONS[0])
        large = source_resolution_for(VR_EYE_RESOLUTIONS[-1])
        assert large.pixels > small.pixels

    def test_macroblock_aligned(self):
        for per_eye in VR_EYE_RESOLUTIONS:
            sphere = source_resolution_for(per_eye)
            assert sphere.width % 16 == 0


class TestSetup:
    def test_setup_shapes(self):
        setup = build_vr_setup(
            VR_WORKLOADS["Rhino"], frame_count=12
        )
        assert len(setup.frames) == 12
        assert len(setup.vr_work) == 12
        assert setup.config.panel.resolution.width == 2 * 1440

    def test_projection_varies_with_head_speed(self):
        setup = build_vr_setup(
            VR_WORKLOADS["Rollercoaster"], frame_count=30
        )
        projections = [w.projection_s for w in setup.vr_work]
        assert max(projections) > min(projections)

    def test_compute_intensity_scales_projection(self):
        calm = build_vr_setup(VR_WORKLOADS["Elephant"], frame_count=8)
        wild = build_vr_setup(
            VR_WORKLOADS["Rollercoaster"], frame_count=8
        )
        assert (
            sum(w.projection_s for w in wild.vr_work)
            > sum(w.projection_s for w in calm.vr_work)
        )


class TestViewportAdaptive:
    def test_fraction_bounds(self):
        from repro.workloads.vr import viewport_fraction

        calm = viewport_fraction(90.0, 0.0)
        assert 0 < calm < 1

    def test_fraction_grows_with_head_speed(self):
        from repro.workloads.vr import viewport_fraction

        assert viewport_fraction(90.0, 120.0) > viewport_fraction(
            90.0, 0.0
        )

    def test_fraction_capped_at_full_sphere(self):
        from repro.workloads.vr import viewport_fraction

        assert viewport_fraction(170.0, 10000.0) == 1.0

    def test_bad_fov_rejected(self):
        from repro.workloads.vr import viewport_fraction

        with pytest.raises(ConfigurationError):
            viewport_fraction(0.0, 0.0)

    def test_adaptive_setup_shrinks_traffic(self):
        full = build_vr_setup(VR_WORKLOADS["Rhino"], frame_count=8)
        tiled = build_vr_setup(
            VR_WORKLOADS["Rhino"], frame_count=8,
            viewport_adaptive=True,
        )
        assert sum(f.encoded_bytes for f in tiled.frames) < (
            0.6 * sum(f.encoded_bytes for f in full.frames)
        )
        assert sum(w.source_bytes for w in tiled.vr_work) < (
            0.6 * sum(w.source_bytes for w in full.vr_work)
        )

    def test_adaptive_baseline_saves_energy(self):
        from repro.power import PowerModel

        model = PowerModel()
        full = model.report(
            vr_streaming_run(
                VR_WORKLOADS["Rhino"], ConventionalScheme(),
                frame_count=12,
            )
        )
        tiled = model.report(
            vr_streaming_run(
                VR_WORKLOADS["Rhino"], ConventionalScheme(),
                frame_count=12, viewport_adaptive=True,
            )
        )
        assert tiled.average_power_mw < full.average_power_mw

    def test_burstlink_still_wins_on_top_of_tiling(self):
        """BurstLink composes with viewport adaptation: its savings
        target the frame buffers tiling does not touch."""
        from repro.power import PowerModel

        model = PowerModel()
        tiled_base = model.report(
            vr_streaming_run(
                VR_WORKLOADS["Rhino"], ConventionalScheme(),
                frame_count=12, viewport_adaptive=True,
            )
        )
        tiled_burst = model.report(
            vr_streaming_run(
                VR_WORKLOADS["Rhino"], BurstLinkScheme(),
                frame_count=12, viewport_adaptive=True,
                with_drfb=True,
            )
        )
        reduction = 1 - (
            tiled_burst.average_power_mw
            / tiled_base.average_power_mw
        )
        assert reduction > 0.20


class TestRunner:
    def test_baseline_run(self):
        run = vr_streaming_run(
            VR_WORKLOADS["Rhino"], ConventionalScheme(), frame_count=8
        )
        assert run.stats.windows == 16
        assert run.stats.deadline_misses == 0

    def test_burstlink_run_with_drfb(self):
        run = vr_streaming_run(
            VR_WORKLOADS["Rhino"],
            BurstLinkScheme(),
            frame_count=8,
            with_drfb=True,
        )
        assert run.config.panel.has_drfb
        assert run.stats.deadline_misses == 0

    def test_all_eye_resolutions_feasible(self):
        for per_eye in VR_EYE_RESOLUTIONS:
            run = vr_streaming_run(
                VR_WORKLOADS["Rollercoaster"],
                ConventionalScheme(),
                per_eye=per_eye,
                frame_count=4,
            )
            assert run.stats.deadline_misses == 0, str(per_eye)
