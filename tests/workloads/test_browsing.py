"""The Fig. 4 browsing-phase generator."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel
from repro.workloads.browsing import browsing_timeline


@pytest.fixture
def config():
    return skylake_tablet(FHD)


class TestStructure:
    def test_duration(self, config):
        timeline = browsing_timeline(config, duration_s=1.0)
        assert timeline.duration == pytest.approx(1.0, abs=0.02)

    def test_deterministic(self, config):
        a = browsing_timeline(config, seed=3)
        b = browsing_timeline(config, seed=3)
        assert a.pattern() == b.pattern()

    def test_activity_zero_is_all_psr(self, config):
        timeline = browsing_timeline(config, activity=0.0)
        fractions = timeline.residency_fractions()
        assert fractions[PackageCState.C8] > 0.85
        assert PackageCState.C2 not in fractions

    def test_activity_one_keeps_pipeline_busy(self, config):
        timeline = browsing_timeline(config, activity=1.0)
        fractions = timeline.residency_fractions()
        assert fractions[PackageCState.C0] > 0.12
        assert fractions.get(PackageCState.C2, 0) > 0.05

    def test_bad_inputs_rejected(self, config):
        with pytest.raises(ConfigurationError):
            browsing_timeline(config, duration_s=0)
        with pytest.raises(ConfigurationError):
            browsing_timeline(config, activity=1.5)
        with pytest.raises(ConfigurationError):
            browsing_timeline(config, burst_windows=0)


class TestFig4Shape:
    def test_browsing_cheaper_than_streaming(self, config):
        """Fig. 4: starting the stream visibly raises system power."""
        model = PowerModel()
        browse = model.report_timeline(
            browsing_timeline(config, duration_s=2.0), config.panel
        )
        frames = AnalyticContentModel().frames(FHD, 30)
        stream = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, 60.0
            )
        )
        assert browse.average_power_mw < stream.average_power_mw

    def test_browsing_power_in_plausible_band(self, config):
        model = PowerModel()
        report = model.report_timeline(
            browsing_timeline(config, duration_s=2.0), config.panel
        )
        assert 1200 < report.average_power_mw < 2600
