"""The Fig. 14b mobile workloads."""

import pytest

from repro.config import FHD, UHD_4K
from repro.core.bursting import FrameBurstingScheme
from repro.errors import ConfigurationError
from repro.pipeline.conventional import ConventionalScheme
from repro.power.model import PowerModel
from repro.workloads.mobile import (
    MOBILE_WORKLOADS,
    MobileWorkload,
    mobile_workload_run,
)


class TestCatalogue:
    def test_four_workloads(self):
        assert set(MOBILE_WORKLOADS) == {
            "video-conferencing",
            "video-capture",
            "casual-gaming",
            "mobilemark",
        }

    def test_gaming_updates_every_window(self):
        assert MOBILE_WORKLOADS["casual-gaming"].update_fps == 60.0

    def test_mobilemark_is_sparse(self):
        assert MOBILE_WORKLOADS["mobilemark"].update_fps < 30.0

    def test_conferencing_streams(self):
        assert MOBILE_WORKLOADS["video-conferencing"].streaming

    def test_capture_records(self):
        assert MOBILE_WORKLOADS["video-capture"].recording


class TestValidation:
    def test_bad_fps_rejected(self):
        with pytest.raises(ConfigurationError):
            MobileWorkload(name="x", update_fps=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            MobileWorkload(name="x", update_fps=30, produced_fraction=0)


class TestRunner:
    def test_gaming_run_has_no_repeats(self):
        run = mobile_workload_run(
            MOBILE_WORKLOADS["casual-gaming"],
            ConventionalScheme(),
            FHD,
            frame_count=8,
        )
        assert run.stats.repeat_windows == 0

    def test_mobilemark_mostly_repeats(self):
        run = mobile_workload_run(
            MOBILE_WORKLOADS["mobilemark"],
            ConventionalScheme(),
            FHD,
            frame_count=10,
        )
        assert run.stats.repeat_windows > (
            run.stats.new_frame_windows * 3
        )

    def test_bursting_saves_on_every_workload_at_fhd(self):
        """Fig. 14b: all four workloads benefit from Frame Bursting."""
        model = PowerModel()
        for name, workload in MOBILE_WORKLOADS.items():
            base = model.report(
                mobile_workload_run(
                    workload, ConventionalScheme(), FHD,
                    frame_count=12,
                )
            )
            burst = model.report(
                mobile_workload_run(
                    workload,
                    FrameBurstingScheme(),
                    FHD,
                    frame_count=12,
                    with_drfb=True,
                )
            )
            reduction = (
                1 - burst.average_power_mw / base.average_power_mw
            )
            assert reduction > 0.15, name

    def test_fhd_reduction_near_paper_range(self):
        """Paper: ~27-30% at the tablet's native resolution."""
        model = PowerModel()
        workload = MOBILE_WORKLOADS["casual-gaming"]
        base = model.report(
            mobile_workload_run(
                workload, ConventionalScheme(), FHD, frame_count=12
            )
        )
        burst = model.report(
            mobile_workload_run(
                workload,
                FrameBurstingScheme(),
                FHD,
                frame_count=12,
                with_drfb=True,
            )
        )
        reduction = 1 - burst.average_power_mw / base.average_power_mw
        assert reduction == pytest.approx(0.28, abs=0.07)

    def test_4k_still_positive(self):
        model = PowerModel()
        workload = MOBILE_WORKLOADS["video-conferencing"]
        base = model.report(
            mobile_workload_run(
                workload, ConventionalScheme(), UHD_4K, frame_count=8
            )
        )
        burst = model.report(
            mobile_workload_run(
                workload,
                FrameBurstingScheme(),
                UHD_4K,
                frame_count=8,
                with_drfb=True,
            )
        )
        assert burst.average_power_mw < base.average_power_mw
