"""The multi-phase scenario engine with dynamic fallback."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.workloads.scenario import (
    Phase,
    Scenario,
    notification_appears,
    notification_dismissed,
    second_stream_closes,
    second_stream_opens,
    streaming_session,
    touch_settles,
    user_touch,
)


@pytest.fixture
def config():
    return skylake_tablet(FHD)


class TestValidation:
    def test_phase_needs_positive_duration(self):
        with pytest.raises(ConfigurationError):
            Phase("x", duration_s=0)

    def test_phase_needs_positive_fps(self):
        with pytest.raises(ConfigurationError):
            Phase("x", duration_s=1, fps=0)

    def test_scenario_needs_phases(self, config):
        with pytest.raises(ConfigurationError):
            Scenario(config=config, phases=[])


class TestCannedSession:
    @pytest.fixture(scope="class")
    def result(self):
        return streaming_session(skylake_tablet(FHD)).play()

    def test_scheme_sequence_tracks_events(self, result):
        assert result.scheme_sequence() == [
            "burstlink",      # steady playback
            "conventional",   # touch -> PSR2 exit
            "burstlink",      # touch settles
            "conventional",   # notification plane
            "burstlink",      # dismissed
        ]

    def test_timeline_covers_session(self, result):
        expected = sum(o.phase.duration_s for o in result.outcomes)
        assert result.duration_s == pytest.approx(expected, rel=0.02)

    def test_fallback_phases_cost_more(self, result):
        powers = [
            o.report.average_power_mw for o in result.outcomes
        ]
        assert powers[1] > powers[0]  # touch phase vs steady
        assert powers[3] > powers[2]  # notification vs steady

    def test_session_average_between_extremes(self, result):
        powers = [
            o.report.average_power_mw for o in result.outcomes
        ]
        assert min(powers) < result.average_power_mw < max(powers)

    def test_summary_mentions_every_phase(self, result):
        summary = result.summary()
        for outcome in result.outcomes:
            assert outcome.phase.name in summary
        assert "session average" in summary


class TestSecondStream:
    def test_second_session_forces_conventional(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase("solo", duration_s=0.5),
                Phase("pip opens", duration_s=0.5,
                      events=(second_stream_opens,)),
                Phase("pip closes", duration_s=0.5,
                      events=(second_stream_closes,)),
            ],
        )
        result = scenario.play()
        assert result.scheme_sequence() == [
            "burstlink", "conventional", "burstlink",
        ]


class TestEventOrder:
    def test_multiple_events_in_one_phase(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase(
                    "touch+notification",
                    duration_s=0.5,
                    events=(user_touch, notification_appears),
                ),
                Phase(
                    "both clear",
                    duration_s=0.5,
                    events=(touch_settles, notification_dismissed),
                ),
            ],
        )
        result = scenario.play()
        assert result.scheme_sequence() == [
            "conventional", "burstlink",
        ]

    def test_reasons_recorded(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase("touch", duration_s=0.5, events=(user_touch,)),
            ],
        )
        outcome = scenario.play().outcomes[0]
        assert "PSR2" in outcome.reason
