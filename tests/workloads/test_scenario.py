"""The multi-phase scenario engine with dynamic fallback."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.soc.registers import RegisterFile
from repro.workloads.scenario import (
    Phase,
    Scenario,
    notification_appears,
    notification_dismissed,
    second_stream_closes,
    second_stream_opens,
    streaming_session,
    touch_settles,
    user_touch,
)


@pytest.fixture
def config():
    return skylake_tablet(FHD)


class TestValidation:
    def test_phase_needs_positive_duration(self):
        with pytest.raises(ConfigurationError):
            Phase("x", duration_s=0)

    def test_phase_needs_positive_fps(self):
        with pytest.raises(ConfigurationError):
            Phase("x", duration_s=1, fps=0)

    def test_scenario_needs_phases(self, config):
        with pytest.raises(ConfigurationError):
            Scenario(config=config, phases=[])


class TestCannedSession:
    @pytest.fixture(scope="class")
    def result(self):
        return streaming_session(skylake_tablet(FHD)).play()

    def test_scheme_sequence_tracks_events(self, result):
        assert result.scheme_sequence() == [
            "burstlink",      # steady playback
            "conventional",   # touch -> PSR2 exit
            "burstlink",      # touch settles
            "conventional",   # notification plane
            "burstlink",      # dismissed
        ]

    def test_timeline_covers_session(self, result):
        expected = sum(o.phase.duration_s for o in result.outcomes)
        assert result.duration_s == pytest.approx(expected, rel=0.02)

    def test_fallback_phases_cost_more(self, result):
        powers = [
            o.report.average_power_mw for o in result.outcomes
        ]
        assert powers[1] > powers[0]  # touch phase vs steady
        assert powers[3] > powers[2]  # notification vs steady

    def test_session_average_between_extremes(self, result):
        powers = [
            o.report.average_power_mw for o in result.outcomes
        ]
        assert min(powers) < result.average_power_mw < max(powers)

    def test_summary_mentions_every_phase(self, result):
        summary = result.summary()
        for outcome in result.outcomes:
            assert outcome.phase.name in summary
        assert "session average" in summary


class TestSecondStream:
    def test_second_session_forces_conventional(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase("solo", duration_s=0.5),
                Phase("pip opens", duration_s=0.5,
                      events=(second_stream_opens,)),
                Phase("pip closes", duration_s=0.5,
                      events=(second_stream_closes,)),
            ],
        )
        result = scenario.play()
        assert result.scheme_sequence() == [
            "burstlink", "conventional", "burstlink",
        ]


class TestEventOrder:
    def test_multiple_events_in_one_phase(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase(
                    "touch+notification",
                    duration_s=0.5,
                    events=(user_touch, notification_appears),
                ),
                Phase(
                    "both clear",
                    duration_s=0.5,
                    events=(touch_settles, notification_dismissed),
                ),
            ],
        )
        result = scenario.play()
        assert result.scheme_sequence() == [
            "conventional", "burstlink",
        ]

    def test_reasons_recorded(self, config):
        scenario = Scenario(
            config=config,
            phases=[
                Phase("touch", duration_s=0.5, events=(user_touch,)),
            ],
        )
        outcome = scenario.play().outcomes[0]
        assert "PSR2" in outcome.reason


class TestRegisterEvents:
    """The six canned register events, applied directly to a register
    file (the unit the scenario engine feeds them)."""

    def test_user_touch_raises_psr2_exit(self):
        registers = RegisterFile.full_screen_video()
        assert not registers.fallback_required
        user_touch(registers)
        assert registers.psr2_exited
        assert registers.fallback_required

    def test_touch_settles_clears_psr2_exit(self):
        registers = RegisterFile.full_screen_video()
        user_touch(registers)
        touch_settles(registers)
        assert not registers.psr2_exited
        assert registers.bypass_eligible

    def test_notification_raises_graphics_interrupt(self):
        registers = RegisterFile.full_screen_video()
        notification_appears(registers)
        assert registers.graphics_interrupt
        assert registers.fallback_required

    def test_notification_dismissed_clears_interrupt(self):
        registers = RegisterFile.full_screen_video()
        notification_appears(registers)
        notification_dismissed(registers)
        assert not registers.graphics_interrupt
        assert registers.bypass_eligible

    def test_second_stream_breaks_single_video(self):
        registers = RegisterFile.full_screen_video()
        assert registers.single_video
        second_stream_opens(registers)
        assert registers.video_sessions == 2
        assert not registers.single_video
        assert not registers.bypass_eligible

    def test_second_stream_closes_restores_eligibility(self):
        registers = RegisterFile.full_screen_video()
        second_stream_opens(registers)
        second_stream_closes(registers)
        assert registers.single_video
        assert registers.bypass_eligible

    def test_closing_without_a_session_rejected(self):
        registers = RegisterFile()
        with pytest.raises(ConfigurationError):
            second_stream_closes(registers)


class TestPhaseOutcomeAccounting:
    @pytest.fixture(scope="class")
    def result(self):
        return streaming_session(skylake_tablet(FHD)).play()

    def test_total_energy_sums_phase_reports(self, result):
        assert result.total_energy_mj == pytest.approx(
            sum(o.report.total_energy_mj for o in result.outcomes)
        )

    def test_average_power_is_energy_over_duration(self, result):
        assert result.average_power_mw == pytest.approx(
            result.total_energy_mj / result.duration_s
        )

    def test_each_outcome_covers_its_phase(self, result):
        for outcome in result.outcomes:
            assert outcome.run.timeline.duration == pytest.approx(
                outcome.phase.duration_s, rel=0.05
            )

    def test_outcome_carries_selector_verdict(self, result):
        for outcome in result.outcomes:
            assert outcome.scheme == outcome.run.scheme
            assert outcome.reason

    def test_sub_frame_phase_still_simulates(self, config):
        scenario = Scenario(
            config=config,
            phases=[Phase("blip", duration_s=0.01)],
        )
        result = scenario.play()
        assert result.outcomes[0].run.stats.windows >= 1
        assert result.total_energy_mj > 0


class TestPlayTransitions:
    def test_register_state_persists_across_phases(self, config):
        # No clearing event in phase 2: the phase-1 touch still forces
        # the conventional path.
        scenario = Scenario(
            config=config,
            phases=[
                Phase("touch", duration_s=0.5, events=(user_touch,)),
                Phase("still touching", duration_s=0.5),
                Phase("settled", duration_s=0.5,
                      events=(touch_settles,)),
            ],
        )
        assert scenario.play().scheme_sequence() == [
            "conventional", "conventional", "burstlink",
        ]

    def test_play_is_deterministic(self, config):
        first = streaming_session(config).play()
        second = streaming_session(config).play()
        assert first.scheme_sequence() == second.scheme_sequence()
        assert first.total_energy_mj == second.total_energy_mj

    def test_phase_count_matches_outcomes(self, config):
        scenario = streaming_session(config)
        result = scenario.play()
        assert len(result.outcomes) == len(scenario.phases)
