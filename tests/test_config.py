"""Configuration objects: resolutions, panels, links, whole systems."""

import pytest

from repro.config import (
    EDP_1_3,
    EDP_1_4,
    DisplayControllerConfig,
    DramConfig,
    EdpConfig,
    FHD,
    GpuConfig,
    OrchestrationConfig,
    PLANAR_RESOLUTIONS,
    PanelConfig,
    QHD,
    Resolution,
    SystemConfig,
    UHD_4K,
    UHD_5K,
    VR_EYE_RESOLUTIONS,
    VideoDecoderConfig,
    skylake_tablet,
    vr_headset,
    vr_panel_resolution,
)
from repro.errors import ConfigurationError
from repro.units import gbps, mib


class TestResolution:
    def test_pixels(self):
        assert FHD.pixels == 1920 * 1080

    def test_frame_bytes_24bpp(self):
        # The paper quotes ~24 MB for a 4K frame.
        assert UHD_4K.frame_bytes() == 3840 * 2160 * 3
        assert UHD_4K.frame_bytes() / mib(1) == pytest.approx(23.7, abs=0.1)

    def test_frame_bytes_30bpp_rejected_unless_byte_aligned(self):
        with pytest.raises(ConfigurationError):
            FHD.frame_bytes(bits_per_pixel=30)

    def test_frame_bytes_32bpp(self):
        assert FHD.frame_bytes(32) == FHD.pixels * 4

    def test_macroblocks(self):
        assert FHD.macroblocks(16) == 120 * 68  # 1920/16 x ceil(1080/16)

    def test_macroblocks_rounds_up(self):
        assert Resolution(17, 17).macroblocks(16) == 4

    def test_macroblocks_rejects_bad_block(self):
        with pytest.raises(ConfigurationError):
            FHD.macroblocks(0)

    def test_scaled(self):
        half = FHD.scaled(0.5)
        assert (half.width, half.height) == (960, 540)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            FHD.scaled(0)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ConfigurationError):
            Resolution(0, 1080)

    def test_str_uses_name(self):
        assert str(FHD) == "FHD"
        assert str(Resolution(640, 480)) == "640x480"

    def test_planar_sweep_order(self):
        assert PLANAR_RESOLUTIONS == (FHD, QHD, UHD_4K, UHD_5K)

    def test_vr_eye_resolutions_match_fig11b(self):
        assert [str(r) for r in VR_EYE_RESOLUTIONS] == [
            "960x1080", "1080x1200", "1280x1440", "1440x1600",
        ]

    def test_vr_panel_doubles_width(self):
        panel = vr_panel_resolution(VR_EYE_RESOLUTIONS[0])
        assert panel.width == 2 * 960
        assert panel.height == 1080


class TestEdpConfig:
    def test_edp14_peak_matches_paper(self):
        assert EDP_1_4.max_bandwidth == pytest.approx(gbps(25.92))

    def test_edp13_slower(self):
        assert EDP_1_3.max_bandwidth < EDP_1_4.max_bandwidth

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            EdpConfig(max_bandwidth=0)

    def test_rejects_bad_lanes(self):
        with pytest.raises(ConfigurationError):
            EdpConfig(lane_count=0)

    def test_rejects_negative_wake(self):
        with pytest.raises(ConfigurationError):
            EdpConfig(wake_latency=-1)


class TestPanelConfig:
    def test_frame_window(self):
        assert PanelConfig(refresh_hz=60).frame_window == pytest.approx(
            1 / 60
        )

    def test_pixel_update_bandwidth_4k60(self):
        # The paper's Observation 2: ~11.3 Gbps for 4K 60 Hz.
        panel = PanelConfig(resolution=UHD_4K, refresh_hz=60)
        assert panel.pixel_update_bandwidth * 8 / 1e9 == pytest.approx(
            11.9, abs=0.1
        )

    def test_drfb_flag(self):
        assert not PanelConfig().has_drfb
        assert PanelConfig().with_drfb().has_drfb

    def test_with_drfb_preserves_resolution(self):
        panel = PanelConfig(resolution=UHD_4K).with_drfb()
        assert panel.resolution is UHD_4K

    def test_rejects_zero_refresh(self):
        with pytest.raises(ConfigurationError):
            PanelConfig(refresh_hz=0)

    def test_rejects_bad_buffer_count(self):
        with pytest.raises(ConfigurationError):
            PanelConfig(remote_buffers=3)

    def test_psr_needs_a_buffer(self):
        with pytest.raises(ConfigurationError):
            PanelConfig(remote_buffers=0, supports_psr=True)


class TestDramConfig:
    def test_default_is_lpddr3(self):
        assert "LPDDR3" in DramConfig().name

    def test_rejects_fetch_above_peak(self):
        with pytest.raises(ConfigurationError):
            DramConfig(sustained_fetch_bandwidth=1e12)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            DramConfig(capacity=0)

    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigurationError):
            DramConfig(channels=0)


class TestVideoDecoderConfig:
    def test_race_decodes_at_max_rate(self):
        decoder = VideoDecoderConfig()
        frame = FHD.frame_bytes()
        assert decoder.decode_time(frame, 1 / 60, race=True) == (
            pytest.approx(frame / decoder.max_output_rate)
        )

    def test_latency_tolerant_stretches_to_target(self):
        decoder = VideoDecoderConfig()
        window = 1 / 60
        stretched = decoder.decode_time(
            FHD.frame_bytes(), window, race=False
        )
        assert stretched == pytest.approx(
            decoder.deadline_utilization * window
        )

    def test_latency_tolerant_never_faster_than_max_rate(self):
        decoder = VideoDecoderConfig()
        frame = UHD_5K.frame_bytes()
        window = 1 / 60
        lower_bound = frame / decoder.max_output_rate
        assert decoder.decode_time(frame, window, race=False) >= (
            lower_bound - 1e-12
        )

    def test_rejects_bad_utilization(self):
        with pytest.raises(ConfigurationError):
            VideoDecoderConfig(deadline_utilization=0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            VideoDecoderConfig(max_output_rate=0)


class TestGpuConfig:
    def test_projection_time_scales_superlinearly(self):
        gpu = GpuConfig()
        one = gpu.projection_time(1e6)
        four = gpu.projection_time(4e6)
        assert four > 4 * one  # super-linear in pixels

    def test_motion_overhead(self):
        gpu = GpuConfig()
        calm = gpu.projection_time(1e6, head_velocity_deg_s=0)
        fast = gpu.projection_time(1e6, head_velocity_deg_s=100)
        assert fast > calm

    def test_intensity_scales_linearly(self):
        gpu = GpuConfig()
        assert gpu.projection_time(1e6, intensity=2.0) == pytest.approx(
            2 * gpu.projection_time(1e6)
        )

    def test_rejects_sublinear_exponent(self):
        with pytest.raises(ConfigurationError):
            GpuConfig(resolution_exponent=0.9)

    def test_rejects_negative_velocity(self):
        with pytest.raises(ConfigurationError):
            GpuConfig().projection_time(1e6, head_velocity_deg_s=-1)


class TestDisplayControllerConfig:
    def test_half_buffer(self):
        dc = DisplayControllerConfig(buffer_size=mib(1))
        assert dc.half_buffer == mib(1) / 2

    def test_bypass_chunk_cycles(self):
        dc = DisplayControllerConfig(buffer_size=mib(1))
        assert dc.bypass_chunk_cycles(mib(6)) == 12

    def test_bypass_chunk_cycles_rounds_up(self):
        dc = DisplayControllerConfig(buffer_size=mib(1))
        assert dc.bypass_chunk_cycles(mib(1) / 2 + 1) == 2

    def test_bypass_rejects_nonpositive_frame(self):
        with pytest.raises(ConfigurationError):
            DisplayControllerConfig().bypass_chunk_cycles(0)

    def test_chunk_cannot_exceed_buffer(self):
        with pytest.raises(ConfigurationError):
            DisplayControllerConfig(
                buffer_size=mib(1), chunk_size=mib(2)
            )

    def test_rejects_zero_fetch_cycles(self):
        with pytest.raises(ConfigurationError):
            DisplayControllerConfig(max_fetch_cycles_per_window=0)


class TestOrchestrationConfig:
    def test_burstlink_cheaper_than_baseline(self):
        orchestration = OrchestrationConfig()
        assert (
            orchestration.burstlink_per_frame
            < orchestration.baseline_per_frame
        )

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            OrchestrationConfig(baseline_per_frame=-1)


class TestSystemConfig:
    def test_default_builds(self):
        config = SystemConfig()
        assert config.panel.resolution is FHD

    def test_frame_window(self):
        assert skylake_tablet(FHD).frame_window == pytest.approx(1 / 60)

    def test_with_panel(self):
        config = skylake_tablet(FHD).with_panel(UHD_4K, refresh_hz=60)
        assert config.panel.resolution is UHD_4K

    def test_with_drfb(self):
        assert skylake_tablet(FHD).with_drfb().panel.has_drfb

    def test_rejects_link_slower_than_panel(self):
        # A 4K 144 Hz panel needs ~28.7 Gbps > eDP 1.4's 25.92.
        with pytest.raises(ConfigurationError):
            skylake_tablet(UHD_4K, refresh_hz=144)

    def test_5k60_fits_edp14(self):
        config = skylake_tablet(UHD_5K, refresh_hz=60)
        assert config.panel.pixel_update_bandwidth < (
            config.edp.max_bandwidth
        )

    def test_vr_headset_panel_is_two_eyes(self):
        config = vr_headset(VR_EYE_RESOLUTIONS[0])
        assert config.panel.resolution.width == 1920
