"""Remote frame buffers: the PSR RFB and the BurstLink DRFB."""

import pytest

from repro.display.rfb import DoubleRemoteFrameBuffer, RemoteFrameBuffer
from repro.errors import (
    BufferOverflowError,
    BufferUnderflowError,
    ConfigurationError,
    DataPathError,
)
from repro.units import mib


class TestRemoteFrameBuffer:
    def test_store_and_scan(self):
        rfb = RemoteFrameBuffer(mib(24))
        rfb.store(0, mib(24))
        assert rfb.holds_frame
        assert rfb.scan_out() == mib(24)
        assert rfb.bytes_scanned == mib(24)

    def test_store_replaces(self):
        rfb = RemoteFrameBuffer(mib(24))
        rfb.store(0, mib(24))
        rfb.store(1, mib(20))
        assert rfb.frame_id == 1
        assert rfb.stored_bytes == mib(20)

    def test_oversized_frame(self):
        rfb = RemoteFrameBuffer(mib(24))
        with pytest.raises(BufferOverflowError):
            rfb.store(0, mib(25))

    def test_scan_without_frame(self):
        with pytest.raises(BufferUnderflowError):
            RemoteFrameBuffer(mib(1)).scan_out()

    def test_selective_update(self):
        rfb = RemoteFrameBuffer(mib(24))
        rfb.store(0, mib(24))
        rfb.selective_update(mib(6))
        assert rfb.bytes_written == mib(30)

    def test_selective_update_needs_frame(self):
        with pytest.raises(BufferUnderflowError):
            RemoteFrameBuffer(mib(1)).selective_update(10)

    def test_selective_update_bounds(self):
        rfb = RemoteFrameBuffer(mib(24))
        rfb.store(0, mib(10))
        with pytest.raises(DataPathError):
            rfb.selective_update(mib(11))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            RemoteFrameBuffer(0)

    def test_nonpositive_frame_rejected(self):
        with pytest.raises(DataPathError):
            RemoteFrameBuffer(mib(1)).store(0, 0)


class TestDoubleRemoteFrameBuffer:
    def test_total_capacity_doubles(self):
        # Sec. 4.4: a 24 MB RFB becomes a 48 MB DRFB.
        drfb = DoubleRemoteFrameBuffer(mib(24))
        assert drfb.total_capacity == mib(48)

    def test_burst_lands_in_back_buffer(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        assert drfb.pending_frame == 0
        assert drfb.displayable_frame is None

    def test_swap_promotes_pending_frame(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        assert drfb.displayable_frame == 0
        assert drfb.swaps == 1

    def test_swap_requires_complete_frame(self):
        with pytest.raises(BufferUnderflowError):
            DoubleRemoteFrameBuffer(mib(24)).swap()

    def test_decoupling_invariant(self):
        """The BurstLink key property: a burst into the back buffer
        never disturbs the frame the panel is scanning."""
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        # Frame 1 bursts in while frame 0 displays.
        drfb.receive_burst(1, mib(24))
        assert drfb.displayable_frame == 0
        assert drfb.scan_out() == mib(24)
        drfb.swap()
        assert drfb.displayable_frame == 1

    def test_steady_state_pipelining(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        for frame in range(1, 6):
            drfb.receive_burst(frame, mib(24))
            drfb.scan_out()
            drfb.swap()
            assert drfb.displayable_frame == frame
        assert drfb.swaps == 6

    def test_selective_update_hits_front_buffer(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        before = drfb.front.bytes_written
        drfb.selective_update(mib(6))
        assert drfb.front.bytes_written == before + mib(6)

    def test_byte_counters_track_both_buffers(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        drfb.receive_burst(1, mib(24))
        drfb.scan_out()
        assert drfb.bytes_written == mib(48)
        assert drfb.bytes_scanned == mib(24)
