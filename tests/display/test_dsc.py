"""The DSC extension: fixed-rate line codec and link scaling."""

import numpy as np
import pytest

from repro.config import UHD_4K, skylake_tablet
from repro.display.dsc import DscConfig, DscLineCodec, with_dsc
from repro.errors import CodecError, ConfigurationError


@pytest.fixture
def codec():
    return DscLineCodec(DscConfig(ratio=2.0))


def gradient_line(pixels=128):
    x = np.arange(pixels)
    return np.stack(
        [x % 250, (x // 2) % 250, 250 - x % 250], axis=-1
    ).astype(np.uint8)


class TestConfig:
    def test_ratio_bounds(self):
        with pytest.raises(ConfigurationError):
            DscConfig(ratio=1.0)
        with pytest.raises(ConfigurationError):
            DscConfig(ratio=3.5)

    def test_functional_codec_caps_at_2(self):
        with pytest.raises(ConfigurationError):
            DscLineCodec(DscConfig(ratio=3.0))

    def test_effective_link_scales(self):
        config = skylake_tablet(UHD_4K)
        scaled = DscConfig(ratio=2.0).effective_link(config.edp)
        assert scaled.max_bandwidth == pytest.approx(
            2 * config.edp.max_bandwidth
        )
        assert "DSC" in scaled.name

    def test_with_dsc_enables_4k144(self):
        """4K@144 exceeds eDP 1.4 raw; DSC 2:1 makes it feasible."""
        with pytest.raises(ConfigurationError):
            skylake_tablet(UHD_4K, refresh_hz=144)
        config = with_dsc(skylake_tablet(UHD_4K, refresh_hz=60))
        assert config.edp.max_bandwidth > (
            UHD_4K.frame_bytes() * 144
        )


class TestFixedRate:
    def test_budget_respected_on_worst_case(self, codec):
        """Pure noise — the hardest content — still fits the budget."""
        rng = np.random.default_rng(1)
        for _ in range(5):
            line = rng.integers(0, 256, (128, 3), dtype=np.uint8)
            assert len(codec.encode_line(line)) <= codec.budget(128)

    def test_budget_converges_to_ratio(self, codec):
        budget = codec.budget(3840)
        assert budget / (3840 * 3) == pytest.approx(0.5, abs=0.01)


class TestQuality:
    def test_gradient_near_lossless(self, codec):
        line = gradient_line()
        decoded = codec.decode_line(codec.encode_line(line), 128)
        error = np.abs(
            decoded.astype(int) - line.astype(int)
        ).max()
        assert error <= 2

    def test_natural_content_visually_lossless(self, codec):
        rng = np.random.default_rng(2)
        frame = np.clip(
            np.cumsum(rng.normal(0, 3, (8, 96, 3)), axis=1) + 128,
            0, 255,
        ).astype(np.uint8)
        decoded = codec.decode_frame(codec.encode_frame(frame), 96)
        error = np.abs(decoded.astype(int) - frame.astype(int))
        assert error.max() <= 4

    def test_first_pixel_exact(self, codec):
        line = gradient_line()
        decoded = codec.decode_line(codec.encode_line(line), 128)
        assert np.array_equal(decoded[0], line[0])

    def test_closed_loop_error_does_not_accumulate(self, codec):
        """On a long constant-slope ramp the error stays bounded
        instead of growing with position — the closed-loop property."""
        x = np.arange(512)
        line = np.stack([x // 4] * 3, axis=-1).astype(np.uint8)
        decoded = codec.decode_line(codec.encode_line(line), 512)
        tail_error = np.abs(
            decoded[-64:].astype(int) - line[-64:].astype(int)
        ).max()
        assert tail_error <= 2


class TestValidation:
    def test_bad_line_shape(self, codec):
        with pytest.raises(CodecError):
            codec.encode_line(np.zeros((16,), dtype=np.uint8))

    def test_bad_dtype(self, codec):
        with pytest.raises(CodecError):
            codec.encode_line(np.zeros((16, 3), dtype=np.int32))

    def test_truncated_payload(self, codec):
        with pytest.raises(CodecError):
            codec.decode_line(b"\x01", 16)

    def test_payload_shorter_than_line(self, codec):
        encoded = codec.encode_line(gradient_line(32))
        with pytest.raises(CodecError):
            codec.decode_line(encoded, 64)

    def test_bad_frame_shape(self, codec):
        with pytest.raises(CodecError):
            codec.encode_frame(np.zeros((8, 8), dtype=np.uint8))
