"""The display controller: buffer mechanics, fetch plans, composition."""

import math

import pytest

from repro.config import DisplayControllerConfig, UHD_4K
from repro.display.controller import DisplayController
from repro.errors import (
    BufferOverflowError,
    BufferUnderflowError,
    ConfigurationError,
)
from repro.units import gb_per_s, kib, mib


@pytest.fixture
def dc():
    return DisplayController()


class TestBufferMechanics:
    def test_fill_and_drain(self, dc):
        dc.fill(kib(512))
        assert dc.buffered_bytes == kib(512)
        dc.drain(kib(512))
        assert dc.is_empty

    def test_overflow(self, dc):
        with pytest.raises(BufferOverflowError):
            dc.fill(dc.config.buffer_size + 1)

    def test_underflow(self, dc):
        with pytest.raises(BufferUnderflowError):
            dc.drain(1)

    def test_is_full_respects_chunk_granularity(self, dc):
        dc.fill(dc.config.buffer_size - dc.config.chunk_size / 2)
        assert dc.is_full  # no room for a full chunk

    def test_negative_sizes_rejected(self, dc):
        with pytest.raises(ConfigurationError):
            dc.fill(-1)
        with pytest.raises(ConfigurationError):
            dc.drain(-1)

    def test_counters(self, dc):
        dc.fill(kib(512))
        dc.drain(kib(256))
        dc.drain(kib(256))
        assert dc.fills == 1
        assert dc.drains == 2


class TestFetchPlan:
    def test_chunk_count(self, dc):
        plan = dc.fetch_plan(UHD_4K.frame_bytes(), gb_per_s(4))
        assert plan.chunk_count == math.ceil(
            UHD_4K.frame_bytes() / dc.config.chunk_size
        )

    def test_total_fetch_time(self, dc):
        frame = mib(6)
        plan = dc.fetch_plan(frame, gb_per_s(4))
        expected = (
            plan.chunk_count * dc.config.chunk_setup_latency
            + frame / gb_per_s(4)
        )
        assert plan.total_fetch_time == pytest.approx(expected)

    def test_per_chunk_time(self, dc):
        plan = dc.fetch_plan(mib(6), gb_per_s(4))
        assert plan.per_chunk_fetch_time == pytest.approx(
            dc.config.chunk_setup_latency
            + dc.config.chunk_size / gb_per_s(4)
        )

    def test_reads_whole_frame(self, dc):
        plan = dc.fetch_plan(mib(6), gb_per_s(4))
        assert plan.total_read_bytes == mib(6)

    def test_rejects_bad_inputs(self, dc):
        with pytest.raises(ConfigurationError):
            dc.fetch_plan(0, gb_per_s(4))
        with pytest.raises(ConfigurationError):
            dc.fetch_plan(mib(1), 0)


class TestBypassCycles:
    def test_cycles_per_half_buffer(self):
        dc = DisplayController(DisplayControllerConfig(
            buffer_size=mib(1)
        ))
        assert dc.bypass_chunk_cycles(mib(6)) == 12


class TestComposition:
    def test_reads_every_plane(self, dc):
        """Sec. 3: composition must read all plane buffers — the reason
        multi-plane display cannot bypass DRAM."""
        planes = [mib(6), mib(6), kib(64), kib(16)]
        assert dc.composition_read_bytes(planes) == sum(planes)
        assert dc.composed_planes == 4

    def test_single_plane(self, dc):
        assert dc.composition_read_bytes([mib(6)]) == mib(6)

    def test_empty_rejected(self, dc):
        with pytest.raises(ConfigurationError):
            dc.composition_read_bytes([])

    def test_nonpositive_plane_rejected(self, dc):
        with pytest.raises(ConfigurationError):
            dc.composition_read_bytes([mib(1), 0])
