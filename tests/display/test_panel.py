"""The assembled display panel."""

import pytest

from repro.config import PanelConfig, Resolution
from repro.display.panel import DisplayPanel
from repro.display.rfb import DoubleRemoteFrameBuffer, RemoteFrameBuffer
from repro.errors import ConfigurationError, DataPathError


def conventional_panel() -> DisplayPanel:
    return DisplayPanel(PanelConfig(resolution=Resolution(64, 32)))


def burstlink_panel() -> DisplayPanel:
    return DisplayPanel(
        PanelConfig(resolution=Resolution(64, 32), remote_buffers=2)
    )


class TestConstruction:
    def test_conventional_gets_single_rfb(self):
        panel = conventional_panel()
        assert isinstance(panel.remote_buffer, RemoteFrameBuffer)

    def test_burstlink_gets_drfb(self):
        panel = burstlink_panel()
        assert isinstance(
            panel.remote_buffer, DoubleRemoteFrameBuffer
        )

    def test_rfb_sized_for_one_frame(self):
        panel = conventional_panel()
        assert panel.remote_buffer.capacity == panel.config.frame_bytes

    def test_psr_engine_attached(self):
        assert conventional_panel().psr is not None

    def test_no_psr_without_support(self):
        panel = DisplayPanel(
            PanelConfig(
                resolution=Resolution(64, 32),
                supports_psr=False,
                supports_psr2=False,
                remote_buffers=1,
            )
        )
        assert panel.psr is None


class TestFrameFlow:
    def test_conventional_receive_then_refresh(self):
        panel = conventional_panel()
        panel.receive_frame(0)
        assert panel.can_self_refresh
        assert panel.refresh() == panel.config.frame_bytes
        assert panel.refreshes == 1

    def test_burstlink_needs_swap_before_refresh(self):
        panel = burstlink_panel()
        panel.receive_frame(0)
        assert not panel.can_self_refresh  # frame only in back buffer
        panel.swap_buffers()
        assert panel.can_self_refresh
        panel.refresh()

    def test_swap_on_conventional_panel_rejected(self):
        with pytest.raises(ConfigurationError):
            conventional_panel().swap_buffers()

    def test_receive_counts(self):
        panel = burstlink_panel()
        panel.receive_frame(0)
        panel.swap_buffers()
        panel.receive_frame(1)
        assert panel.received_frames == 2

    def test_partial_frame_size(self):
        panel = conventional_panel()
        panel.receive_frame(0, size_bytes=1024)
        assert panel.refresh() == 1024

    def test_nonpositive_frame_rejected(self):
        with pytest.raises(DataPathError):
            conventional_panel().receive_frame(0, size_bytes=0)

    def test_refresh_without_frame(self):
        from repro.errors import BufferUnderflowError

        with pytest.raises(BufferUnderflowError):
            conventional_panel().refresh()
