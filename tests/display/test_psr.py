"""The PSR/PSR2 protocol engine."""

import pytest

from repro.display.psr import PsrEngine, PsrState, SelectiveUpdate
from repro.display.rfb import DoubleRemoteFrameBuffer, RemoteFrameBuffer
from repro.errors import DataPathError, PowerStateError
from repro.units import mib


@pytest.fixture
def engine():
    rfb = RemoteFrameBuffer(mib(24))
    rfb.store(0, mib(24))
    return PsrEngine(rfb)


class TestEntryExit:
    def test_enter_requires_resident_frame(self):
        empty = PsrEngine(RemoteFrameBuffer(mib(1)))
        with pytest.raises(PowerStateError):
            empty.enter_psr()

    def test_enter_and_self_refresh(self, engine):
        engine.enter_psr()
        assert engine.state is PsrState.PSR_ACTIVE
        assert engine.self_refresh() == mib(24)
        assert engine.self_refresh_count == 1

    def test_self_refresh_requires_psr(self, engine):
        with pytest.raises(PowerStateError):
            engine.self_refresh()

    def test_exit_returns_to_live(self, engine):
        engine.enter_psr()
        engine.exit_psr()
        assert engine.state is PsrState.LIVE
        assert engine.exits == 1

    def test_exit_from_live_is_noop(self, engine):
        engine.exit_psr()
        assert engine.exits == 0

    def test_reentry_after_exit(self, engine):
        engine.enter_psr()
        engine.exit_psr()
        engine.enter_psr()
        assert engine.state is PsrState.PSR_ACTIVE


class TestSelectiveUpdates:
    def test_update_moves_to_psr2(self, engine):
        engine.enter_psr()
        engine.selective_update(SelectiveUpdate(0, mib(6)))
        assert engine.state is PsrState.PSR2_UPDATING
        assert engine.updated_bytes == mib(6)

    def test_update_requires_psr(self, engine):
        with pytest.raises(PowerStateError):
            engine.selective_update(SelectiveUpdate(0, 100))

    def test_update_requires_psr2_support(self):
        rfb = RemoteFrameBuffer(mib(24))
        rfb.store(0, mib(24))
        engine = PsrEngine(rfb, supports_psr2=False)
        engine.enter_psr()
        with pytest.raises(PowerStateError):
            engine.selective_update(SelectiveUpdate(0, 100))

    def test_update_bounds_checked(self, engine):
        engine.enter_psr()
        with pytest.raises(DataPathError):
            engine.selective_update(SelectiveUpdate(mib(20), mib(5)))

    def test_bad_update_geometry_rejected(self):
        with pytest.raises(DataPathError):
            SelectiveUpdate(-1, 10)
        with pytest.raises(DataPathError):
            SelectiveUpdate(0, 0)

    def test_multiple_updates_accumulate(self, engine):
        engine.enter_psr()
        for _ in range(3):
            engine.selective_update(SelectiveUpdate(0, mib(2)))
        assert engine.updated_bytes == mib(6)
        assert len(engine.selective_updates) == 3


class TestWithDrfb:
    def test_drfb_self_refresh_from_front(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        engine = PsrEngine(drfb)
        engine.enter_psr()
        assert engine.self_refresh() == mib(24)

    def test_drfb_without_displayable_frame(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))  # still only in the back buffer
        engine = PsrEngine(drfb)
        with pytest.raises(PowerStateError):
            engine.enter_psr()

    def test_drfb_selective_update_bounds(self):
        drfb = DoubleRemoteFrameBuffer(mib(24))
        drfb.receive_burst(0, mib(24))
        drfb.swap()
        engine = PsrEngine(drfb)
        engine.enter_psr()
        with pytest.raises(DataPathError):
            engine.selective_update(SelectiveUpdate(mib(23), mib(2)))
