"""Refresh timing and the new-frame/repeat cadence."""

import pytest

from repro.display.timing import RefreshTiming, WindowKind
from repro.errors import ConfigurationError


class TestBasics:
    def test_frame_window(self):
        assert RefreshTiming(60, 30).frame_window == pytest.approx(1 / 60)

    def test_windows_per_frame(self):
        assert RefreshTiming(60, 30).windows_per_frame == 2.0
        assert RefreshTiming(120, 30).windows_per_frame == 4.0

    def test_repeat_fraction(self):
        assert RefreshTiming(60, 30).repeat_fraction == pytest.approx(0.5)
        assert RefreshTiming(60, 60).repeat_fraction == pytest.approx(0.0)

    def test_fps_above_refresh_rejected(self):
        with pytest.raises(ConfigurationError):
            RefreshTiming(60, 61)

    def test_nonpositive_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            RefreshTiming(0, 30)
        with pytest.raises(ConfigurationError):
            RefreshTiming(60, 0)


class TestCadence:
    def test_30_on_60(self):
        assert RefreshTiming(60, 30).cadence_pattern(8) == "NRNRNRNR"

    def test_60_on_60(self):
        assert RefreshTiming(60, 60).cadence_pattern(6) == "NNNNNN"

    def test_24_on_60_is_3_2_pulldown(self):
        assert RefreshTiming(60, 24).cadence_pattern(10) == "NRRNRNRRNR"

    def test_30_on_120(self):
        assert RefreshTiming(120, 30).cadence_pattern(8) == "NRRRNRRR"

    def test_first_window_is_always_new(self):
        for fps in (1, 24, 30, 59.94, 60):
            first = next(iter(RefreshTiming(60, fps).windows(1)))
            assert first.kind is WindowKind.NEW_FRAME

    def test_frame_indices_monotonic(self):
        indices = [
            w.frame_index for w in RefreshTiming(60, 24).windows(30)
        ]
        assert indices == sorted(indices)
        assert indices[0] == 0

    def test_new_frame_count_matches_fps_ratio(self):
        windows = list(RefreshTiming(60, 24).windows(60))
        new_frames = sum(1 for w in windows if w.is_new_frame)
        assert new_frames == 24  # one second of 24 FPS video

    def test_window_times_tile_the_second(self):
        windows = list(RefreshTiming(60, 30).windows(60))
        assert windows[0].start == 0.0
        assert windows[-1].end == pytest.approx(1.0)
        for earlier, later in zip(windows, windows[1:]):
            assert later.start == pytest.approx(earlier.end)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(RefreshTiming(60, 30).windows(-1))

    def test_fractional_fps(self):
        # 59.94 on 60: almost every window new, a repeat every ~1000.
        pattern = RefreshTiming(60, 59.94).cadence_pattern(1000)
        assert pattern.count("R") == 1
