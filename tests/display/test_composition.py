"""The functional multi-plane compositor."""

import numpy as np
import pytest

from repro.config import Resolution
from repro.display.composition import (
    CompositionPlane,
    compose,
    desktop_stack,
)
from repro.errors import ConfigurationError, DataPathError
from repro.soc.registers import PlaneType


def solid(height, width, value):
    return np.full((height, width, 3), value, dtype=np.uint8)


OUTPUT = Resolution(64, 48)


class TestPlaneValidation:
    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            CompositionPlane(
                PlaneType.VIDEO, np.zeros((8, 8), dtype=np.uint8)
            )

    def test_bad_dtype(self):
        with pytest.raises(ConfigurationError):
            CompositionPlane(
                PlaneType.VIDEO, np.zeros((8, 8, 3), dtype=np.int32)
            )

    def test_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            CompositionPlane(
                PlaneType.VIDEO, solid(8, 8, 0), alpha=1.5
            )

    def test_negative_position(self):
        with pytest.raises(ConfigurationError):
            CompositionPlane(PlaneType.VIDEO, solid(8, 8, 0), x=-1)


class TestCompose:
    def test_single_plane_fills_region(self):
        plane = CompositionPlane(
            PlaneType.BACKGROUND, solid(48, 64, 99)
        )
        result = compose([plane], OUTPUT)
        assert result.frame.shape == (48, 64, 3)
        assert np.all(result.frame == 99)

    def test_z_order_wins(self):
        bottom = CompositionPlane(
            PlaneType.BACKGROUND, solid(48, 64, 10), z=0
        )
        top = CompositionPlane(
            PlaneType.VIDEO, solid(16, 16, 200), x=4, y=4, z=5
        )
        result = compose([bottom, top], OUTPUT)
        assert result.frame[10, 10, 0] == 200
        assert result.frame[40, 40, 0] == 10

    def test_z_order_independent_of_list_order(self):
        bottom = CompositionPlane(
            PlaneType.BACKGROUND, solid(48, 64, 10), z=0
        )
        top = CompositionPlane(
            PlaneType.VIDEO, solid(16, 16, 200), x=0, y=0, z=5
        )
        a = compose([bottom, top], OUTPUT)
        b = compose([top, bottom], OUTPUT)
        assert np.array_equal(a.frame, b.frame)

    def test_alpha_blend(self):
        bottom = CompositionPlane(
            PlaneType.BACKGROUND, solid(48, 64, 100), z=0
        )
        overlay = CompositionPlane(
            PlaneType.GRAPHICS, solid(48, 64, 200), z=1, alpha=0.5
        )
        result = compose([bottom, overlay], OUTPUT)
        assert result.frame[0, 0, 0] == 150

    def test_read_bytes_sum_all_planes(self):
        """Observation 1: the merge reads every plane buffer."""
        planes = desktop_stack(OUTPUT)
        result = compose(planes, OUTPUT)
        assert result.read_bytes == sum(p.size_bytes for p in planes)
        assert result.planes_merged == 4

    def test_out_of_bounds_plane_rejected(self):
        oversized = CompositionPlane(
            PlaneType.VIDEO, solid(64, 64, 0), x=10
        )
        with pytest.raises(DataPathError):
            compose([oversized], OUTPUT)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            compose([], OUTPUT)


class TestDesktopStack:
    def test_four_planes(self):
        planes = desktop_stack(OUTPUT)
        types = {p.plane_type for p in planes}
        assert types == {
            PlaneType.BACKGROUND,
            PlaneType.VIDEO,
            PlaneType.GRAPHICS,
            PlaneType.CURSOR,
        }

    def test_composes_cleanly(self):
        result = compose(desktop_stack(OUTPUT), OUTPUT)
        assert result.frame.shape == (48, 64, 3)
        # The cursor (white, topmost, at the screen centre) is visible.
        assert result.frame[24, 32, 0] > 200

    def test_custom_video_plane(self):
        video = solid(16, 16, 77)
        planes = desktop_stack(OUTPUT, video=video)
        video_plane = next(
            p for p in planes if p.plane_type is PlaneType.VIDEO
        )
        assert video_plane.content is video
