"""The eDP link model."""

import pytest

from repro.config import EdpConfig, UHD_4K
from repro.display.edp import EdpLink, EdpLinkState
from repro.errors import ConfigurationError, DataPathError, PowerStateError
from repro.units import gbps


@pytest.fixture
def link():
    return EdpLink()


class TestRateValidation:
    def test_maximum_allowed(self, link):
        link.validate_rate(link.config.max_bandwidth)

    def test_over_maximum_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.validate_rate(link.config.max_bandwidth * 1.01)

    def test_zero_rejected(self, link):
        with pytest.raises(ConfigurationError):
            link.validate_rate(0)


class TestPowerStates:
    def test_starts_off(self, link):
        assert link.state is EdpLinkState.OFF

    def test_power_on_pays_wake_once(self, link):
        assert link.power_on() == link.config.wake_latency
        assert link.power_on() == 0.0
        assert link.wake_count == 1

    def test_power_off_from_idle(self, link):
        link.power_on()
        link.power_off()
        assert link.state is EdpLinkState.OFF

    def test_cannot_gate_mid_transfer(self, link):
        link.state = EdpLinkState.ACTIVE
        with pytest.raises(PowerStateError):
            link.power_off()


class TestTransfers:
    def test_burst_duration_matches_paper(self, link):
        """A 4K frame at the eDP 1.4 maximum takes ~7.7 ms (the paper
        quotes 7.2 ms for its 24 MB figure)."""
        frame = UHD_4K.frame_bytes()
        transfer = link.transmit(frame, link.config.max_bandwidth)
        assert transfer.duration == pytest.approx(
            frame / gbps(25.92) + link.config.wake_latency
        )
        assert transfer.included_wake

    def test_second_transfer_skips_wake(self, link):
        link.transmit(1000, gbps(1))
        transfer = link.transmit(1000, gbps(1))
        assert not transfer.included_wake

    def test_byte_accounting(self, link):
        link.transmit(1000, gbps(1))
        link.transmit(500, gbps(1))
        assert link.bytes_transferred == 1500
        assert len(link.transfers) == 2

    def test_negative_size_rejected(self, link):
        with pytest.raises(DataPathError):
            link.transmit(-1, gbps(1))

    def test_link_left_idle(self, link):
        link.transmit(100, gbps(1))
        assert link.state is EdpLinkState.IDLE


class TestUtilization:
    def test_conventional_4k60_underutilizes(self, link):
        """Observation 2: conventional 4K 60 Hz uses under half the
        eDP 1.4 bandwidth."""
        pixel_rate = UHD_4K.frame_bytes() * 60
        assert link.utilization(pixel_rate) < 0.5

    def test_burst_is_full_utilization(self, link):
        assert link.utilization(link.config.max_bandwidth) == (
            pytest.approx(1.0)
        )

    def test_custom_generation(self):
        slow = EdpLink(EdpConfig(name="eDP 1.3",
                                 max_bandwidth=gbps(17.28)))
        assert slow.utilization(gbps(17.28)) == pytest.approx(1.0)
