"""The pixel formatter's fixed-rate scan-out."""

import numpy as np
import pytest

from repro.config import PanelConfig, Resolution, UHD_4K
from repro.display.pixel_formatter import PixelFormatter
from repro.errors import ConfigurationError


@pytest.fixture
def small_panel():
    return PanelConfig(resolution=Resolution(8, 4), refresh_hz=60)


class TestRates:
    def test_pixel_rate(self):
        formatter = PixelFormatter(PanelConfig(resolution=UHD_4K))
        assert formatter.pixel_rate == UHD_4K.pixels * 60

    def test_byte_rate_matches_panel(self):
        panel = PanelConfig(resolution=UHD_4K)
        assert PixelFormatter(panel).byte_rate == (
            panel.pixel_update_bandwidth
        )

    def test_full_frame_scan_takes_one_window(self):
        panel = PanelConfig(resolution=UHD_4K, refresh_hz=60)
        formatter = PixelFormatter(panel)
        assert formatter.scan_duration() == pytest.approx(1 / 60)

    def test_partial_scan_proportional(self):
        panel = PanelConfig(resolution=UHD_4K, refresh_hz=60)
        formatter = PixelFormatter(panel)
        assert formatter.scan_duration(panel.frame_bytes / 4) == (
            pytest.approx(1 / 240)
        )

    def test_negative_size_rejected(self, small_panel):
        with pytest.raises(ConfigurationError):
            PixelFormatter(small_panel).scan_duration(-1)


class TestFormatting:
    def test_output_shape(self, small_panel):
        formatter = PixelFormatter(small_panel)
        frame = np.zeros((4, 8, 3), dtype=np.uint8)
        pixels = formatter.format_frame(frame)
        assert pixels.shape == (32, 3)

    def test_channel_order_swapped_to_bgr(self, small_panel):
        formatter = PixelFormatter(small_panel)
        frame = np.zeros((4, 8, 3), dtype=np.uint8)
        frame[..., 0] = 10  # R
        frame[..., 2] = 30  # B
        pixels = formatter.format_frame(frame)
        assert pixels[0, 0] == 30  # B first
        assert pixels[0, 2] == 10  # R last

    def test_shape_mismatch_rejected(self, small_panel):
        formatter = PixelFormatter(small_panel)
        with pytest.raises(ConfigurationError):
            formatter.format_frame(np.zeros((8, 4, 3), dtype=np.uint8))

    def test_counters(self, small_panel):
        formatter = PixelFormatter(small_panel)
        frame = np.zeros((4, 8, 3), dtype=np.uint8)
        formatter.format_frame(frame)
        formatter.format_frame(frame)
        assert formatter.frames_formatted == 2
        assert formatter.bytes_formatted == 2 * frame.nbytes
