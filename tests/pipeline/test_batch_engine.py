"""The batch window engine and the cross-run plan cache."""

import dataclasses

import pytest

from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme, FrameBurstingScheme
from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import (
    default_engine,
    install_run_memo,
    set_default_engine,
    set_plan_cache,
)
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel, RepeatingFrameSource


@pytest.fixture(autouse=True)
def no_memo():
    """These tests measure the simulator itself, not the run cache."""
    previous = install_run_memo(None)
    yield
    install_run_memo(previous)


@pytest.fixture
def frames():
    return AnalyticContentModel().frames(FHD, 12, seed=5)


def _counter(name):
    return obs_metrics.registry().counter(name, "").value


def _run(config, scheme, frames, fps, **kwargs):
    return FrameWindowSimulator(config, scheme).run(
        frames, fps, **kwargs
    )


def _assert_same_aggregates(reference, other, rel=1e-9):
    assert other.stats == reference.stats
    assert other.duration == pytest.approx(
        reference.duration, rel=rel
    )
    ref_res = reference.residency_fractions()
    other_res = other.residency_fractions()
    assert set(ref_res) == set(other_res)
    for state, fraction in ref_res.items():
        assert other_res[state] == pytest.approx(
            fraction, rel=rel, abs=1e-12
        )
    assert other.dram_total_bytes == pytest.approx(
        reference.dram_total_bytes, rel=rel
    )
    assert other.edp_bytes == pytest.approx(
        reference.edp_bytes, rel=rel
    )
    ref_kinds = reference.summary.window_counts
    oth_kinds = other.summary.window_counts
    assert ref_kinds == oth_kinds


def _assert_same_power(reference, other, rel=1e-9):
    ref = PowerModel().report(reference)
    oth = PowerModel().report(other)
    assert oth.total_energy_mj == pytest.approx(
        ref.total_energy_mj, rel=rel
    )
    assert set(ref.by_component_mj) == set(oth.by_component_mj)
    for component, mj in ref.by_component_mj.items():
        assert oth.by_component_mj[component] == pytest.approx(
            mj, rel=rel, abs=1e-9
        )


class TestEngineSelection:
    def test_default_engine_round_trip(self):
        previous = set_default_engine("scalar")
        try:
            assert default_engine() == "scalar"
        finally:
            set_default_engine(previous)

    def test_unknown_engine_rejected(self, fhd_config, frames):
        with pytest.raises(SimulationError):
            _run(
                fhd_config, ConventionalScheme(), frames, 30.0,
                engine="bogus",
            )

    def test_set_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            set_default_engine("bogus")

    def test_batch_engine_runs_by_default(self, fhd_config, frames):
        before = _counter("sim.batch.runs")
        _run(fhd_config, ConventionalScheme(), frames, 30.0)
        assert _counter("sim.batch.runs") == before + 1

    def test_collapse_off_forces_scalar(self, fhd_config, frames):
        before = _counter("sim.batch.runs")
        _run(
            fhd_config, ConventionalScheme(), frames, 30.0,
            collapse=False,
        )
        assert _counter("sim.batch.runs") == before


class TestTracedFallback:
    """An active tracer must force the scalar loop even when the batch
    engine is requested explicitly — golden traces stay byte-exact."""

    def test_tracer_forces_scalar(self, fhd_config, frames):
        before = _counter("sim.batch.runs")
        with obs_trace.tracing():
            traced = _run(
                fhd_config, ConventionalScheme(), frames, 30.0,
                engine="batch",
            )
        assert _counter("sim.batch.runs") == before
        untraced = _run(
            fhd_config, ConventionalScheme(), frames, 30.0,
            engine="batch",
        )
        assert _counter("sim.batch.runs") == before + 1
        _assert_same_aggregates(traced, untraced)

    def test_traced_spans_unchanged_by_engine(self, fhd_config, frames):
        with obs_trace.tracing() as tracer:
            _run(
                fhd_config, ConventionalScheme(), frames, 30.0,
                engine="batch",
            )
        names = [
            event.get("name")
            for event in tracer.events
            if event.get("kind") == "B"
        ]
        assert "sim.run" in names
        assert "sim.window" in names


class TestBatchParity:
    SCHEMES = (
        ("conventional", ConventionalScheme, False),
        ("burstlink", BurstLinkScheme, True),
        ("bursting", FrameBurstingScheme, True),
    )

    @pytest.mark.parametrize(
        "name,scheme_cls,needs_drfb", SCHEMES,
        ids=[s[0] for s in SCHEMES],
    )
    @pytest.mark.parametrize("retain", ["full", "summary"])
    def test_matches_scalar(
        self, fhd_config, frames, name, scheme_cls, needs_drfb, retain
    ):
        config = (
            fhd_config.with_drfb() if needs_drfb else fhd_config
        )
        scalar = _run(
            config, scheme_cls(), frames, 30.0,
            retain=retain, engine="scalar",
        )
        batch = _run(
            config, scheme_cls(), frames, 30.0,
            retain=retain, engine="batch",
        )
        _assert_same_aggregates(scalar, batch)
        _assert_same_power(scalar, batch)

    def test_full_retain_timeline_is_contiguous(
        self, fhd_config, frames
    ):
        run = _run(
            fhd_config, ConventionalScheme(), frames, 15.0,
            retain="full", engine="batch",
        )
        segments = run.timeline.segments
        for previous, current in zip(segments, segments[1:]):
            assert current.start == pytest.approx(
                previous.end, abs=1e-12
            )

    def test_clamped_stream_matches_scalar(self, fhd_config):
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        scalar = _run(
            fhd_config, ConventionalScheme(), frames, 30.0,
            max_windows=40, engine="scalar",
        )
        batch = _run(
            fhd_config, ConventionalScheme(), frames, 30.0,
            max_windows=40, engine="batch",
        )
        assert batch.stats == scalar.stats
        assert batch.stats.windows == 40
        _assert_same_aggregates(scalar, batch)

    def test_stateful_scheme_matches_scalar(self, fhd_config, frames):
        from repro.baselines import FrameBufferCompressionScheme

        scalar = _run(
            fhd_config, FrameBufferCompressionScheme(), frames, 30.0,
            engine="scalar",
        )
        batch = _run(
            fhd_config, FrameBufferCompressionScheme(), frames, 30.0,
            engine="batch",
        )
        _assert_same_aggregates(scalar, batch)
        _assert_same_power(scalar, batch)

    def test_repeating_source_shares_plans(self, fhd_config):
        """Re-indexed copies of one frame must share a single batch
        entry: the engine keys on frame content, not the descriptor."""
        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        source = RepeatingFrameSource(frame, 12)
        before = _counter("sim.collapse.miss")
        run = _run(
            fhd_config, ConventionalScheme(), source, 30.0,
            max_windows=24, engine="batch",
        )
        fresh = _counter("sim.collapse.miss") - before
        # One new-frame plan + at most a couple of repeat plans; the
        # eleven re-issued identical frames plan nothing new.
        assert fresh <= 3
        assert run.stats.windows == 24


class TestBatchCounters:
    def test_counters_cover_every_window(self, fhd_config, frames):
        before_hit = _counter("sim.collapse.hit")
        before_miss = _counter("sim.collapse.miss")
        run = _run(
            fhd_config, ConventionalScheme(), frames, 15.0,
            engine="batch",
        )
        hits = _counter("sim.collapse.hit") - before_hit
        misses = _counter("sim.collapse.miss") - before_miss
        assert hits + misses == run.stats.windows
        assert hits > 0

    def test_group_histogram_observes_entries(self, fhd_config, frames):
        histogram = obs_metrics.registry().histogram(
            "sim.batch.group_windows", ""
        )
        before = histogram.count
        _run(
            fhd_config, ConventionalScheme(), frames, 15.0,
            engine="batch",
        )
        assert histogram.count > before

    def test_plan_cache_counters_silent_without_cache(
        self, fhd_config, frames
    ):
        before_hit = _counter("sim.plan_cache.hit")
        before_miss = _counter("sim.plan_cache.miss")
        _run(
            fhd_config, ConventionalScheme(), frames, 30.0,
            engine="batch",
        )
        assert _counter("sim.plan_cache.hit") == before_hit
        assert _counter("sim.plan_cache.miss") == before_miss


class TestPlanCache:
    @pytest.fixture
    def plan_cache(self, tmp_path):
        from repro.analysis.runner import SimulationCache

        cache = SimulationCache(directory=tmp_path)
        previous_memo = install_run_memo(cache)
        previous_active = set_plan_cache(True)
        yield cache
        set_plan_cache(previous_active)
        install_run_memo(previous_memo)

    def test_cross_run_hits(self, fhd_config, plan_cache):
        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 12), 30.0, max_windows=24,
        )
        assert plan_cache.stats.plan_stores > 0
        baseline = dataclasses.replace(plan_cache.stats)
        # A different window budget is a run-level miss but replays
        # every plan from the cache.
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 24), 30.0, max_windows=48,
        )
        stats = plan_cache.stats
        assert stats.misses - baseline.misses == 1
        assert stats.plan_hits > baseline.plan_hits
        assert stats.plan_misses == baseline.plan_misses

    def test_disk_round_trip(self, fhd_config, tmp_path, plan_cache):
        from repro.analysis.runner import SimulationCache

        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 12), 30.0, max_windows=24,
        )
        # A cold cache sharing the directory reads plans from disk.
        cold = SimulationCache(directory=plan_cache.directory)
        install_run_memo(cold)
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 24), 30.0, max_windows=48,
        )
        assert cold.stats.plan_disk_hits > 0
        assert cold.stats.plan_misses == 0

    def test_config_change_invalidates(self, fhd_config, plan_cache):
        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 12), 30.0, max_windows=24,
        )
        baseline = dataclasses.replace(plan_cache.stats)
        changed = dataclasses.replace(
            fhd_config,
            orchestration=dataclasses.replace(
                fhd_config.orchestration,
                baseline_per_frame=(
                    fhd_config.orchestration.baseline_per_frame * 2
                ),
            ),
        )
        _run(
            changed, ConventionalScheme(),
            RepeatingFrameSource(frame, 12), 30.0, max_windows=24,
        )
        stats = plan_cache.stats
        assert stats.plan_hits == baseline.plan_hits
        assert stats.plan_misses > baseline.plan_misses

    def test_cached_run_matches_scalar(self, fhd_config, plan_cache):
        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 12), 30.0, max_windows=24,
        )
        warm = _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 24), 30.0, max_windows=48,
        )
        assert plan_cache.stats.plan_hits > 0
        install_run_memo(None)
        scalar = _run(
            fhd_config, ConventionalScheme(),
            RepeatingFrameSource(frame, 24), 30.0, max_windows=48,
            engine="scalar",
        )
        _assert_same_aggregates(scalar, warm)
        _assert_same_power(scalar, warm)

    def test_strict_deadlines_raise_through_batch(self, plan_cache):
        from repro.errors import DeadlineMissError

        config = skylake_tablet(FHD)
        slow = dataclasses.replace(
            config,
            orchestration=dataclasses.replace(
                config.orchestration, baseline_per_frame=0.050
            ),
            strict_deadlines=False,
        )
        frame = AnalyticContentModel().frames(FHD, 1, seed=9)[0]
        lenient = _run(
            slow, ConventionalScheme(),
            RepeatingFrameSource(frame, 4), 30.0, max_windows=8,
        )
        assert lenient.stats.deadline_misses > 0
        strict = dataclasses.replace(slow, strict_deadlines=True)
        with pytest.raises(DeadlineMissError):
            _run(
                strict, ConventionalScheme(),
                RepeatingFrameSource(frame, 4), 30.0, max_windows=8,
            )
