"""The conventional (PSR-baseline) scheme."""

import pytest

from repro.config import FHD, UHD_4K, UHD_5K, skylake_tablet
from repro.pipeline.conventional import (
    ConventionalScheme,
    effective_fetch_bandwidth,
)
from repro.pipeline.sim import FrameWindowSimulator
from repro.pipeline.timeline import PanelMode
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(resolution=FHD, fps=30.0, frames=24, **config_kwargs):
    config = skylake_tablet(resolution)
    if config_kwargs:
        from dataclasses import replace

        config = replace(config, **config_kwargs)
    descriptors = AnalyticContentModel().frames(resolution, frames)
    return FrameWindowSimulator(config, ConventionalScheme()).run(
        descriptors, fps
    )


class TestTable2Residencies:
    """The scheme must land on the paper's measured Table 2 numbers."""

    def test_fhd30_residencies(self):
        fractions = run().residency_fractions()
        assert fractions[PackageCState.C0] == pytest.approx(
            0.09, abs=0.02
        )
        assert fractions[PackageCState.C2] == pytest.approx(
            0.11, abs=0.03
        )
        assert fractions[PackageCState.C8] == pytest.approx(
            0.80, abs=0.04
        )

    def test_no_c9_in_measured_baseline(self):
        """The measured baseline never reaches C9 during video."""
        fractions = run().residency_fractions()
        assert PackageCState.C9 not in fractions

    def test_idealised_variant_reaches_c9(self):
        """Fig. 3(a)'s idealised timeline parks PSR windows in C9."""
        fractions = run(
            baseline_c9_in_psr=True
        ).residency_fractions()
        assert fractions.get(PackageCState.C9, 0) > 0.3


class TestWindowStructure:
    def test_repeat_windows_use_psr(self):
        result = run(fps=30.0)
        assert result.stats.psr_windows == result.stats.repeat_windows

    def test_60fps_has_no_repeats(self):
        result = run(fps=60.0)
        assert result.stats.repeat_windows == 0

    def test_oscillation_pattern(self):
        result = run(frames=2, fps=60.0)
        pattern = result.timeline.pattern()
        assert pattern.startswith("C0 C2 C8")
        assert " C2 C8" in pattern[5:]

    def test_live_panel_in_new_frame_windows(self):
        result = run(frames=2, fps=60.0)
        live = [
            s for s in result.timeline
            if s.panel_mode is PanelMode.LIVE
        ]
        assert live


class TestTraffic:
    def test_decoded_frame_round_trips_dram(self):
        """Every displayed frame is written once and read back ~once."""
        result = run(fps=60.0, frames=30)
        frame_bytes = FHD.frame_bytes()
        writes_per_frame = (
            result.timeline.dram_write_bytes
            / result.stats.new_frame_windows
        )
        reads_per_frame = (
            result.timeline.dram_read_bytes
            / result.stats.new_frame_windows
        )
        assert writes_per_frame > frame_bytes  # decoded + encoded
        assert reads_per_frame > 0.9 * frame_bytes

    def test_repeat_windows_move_no_display_data(self):
        at_30 = run(fps=30.0, frames=30)
        at_60 = run(fps=60.0, frames=30)
        # Per second, 30 FPS moves roughly half the display traffic.
        ratio = (
            at_30.timeline.dram_total_bytes / at_30.duration
        ) / (at_60.timeline.dram_total_bytes / at_60.duration)
        assert ratio == pytest.approx(0.5, abs=0.12)


class TestScaling:
    def test_no_deadline_misses_at_any_evaluated_point(self):
        for resolution in (FHD, UHD_4K, UHD_5K):
            for fps in (30.0, 60.0):
                result = run(resolution=resolution, fps=fps, frames=8)
                assert result.stats.deadline_misses == 0, (
                    f"{resolution} @ {fps}"
                )

    def test_active_residency_grows_with_resolution(self):
        fhd = run(resolution=FHD, fps=60.0, frames=8)
        uhd = run(resolution=UHD_4K, fps=60.0, frames=8)
        busy_fhd = 1 - fhd.residency_fractions().get(
            PackageCState.C8, 0
        )
        busy_uhd = 1 - uhd.residency_fractions().get(
            PackageCState.C8, 0
        )
        assert busy_uhd > busy_fhd


class TestEffectiveFetchBandwidth:
    def test_floor_at_configured_value(self):
        config = skylake_tablet(FHD)
        assert effective_fetch_bandwidth(config) == (
            config.dram.sustained_fetch_bandwidth
        )

    def test_scales_with_pixel_rate(self):
        config = skylake_tablet(UHD_5K)
        assert effective_fetch_bandwidth(config) == pytest.approx(
            4.0 * config.panel.pixel_update_bandwidth
        )


class TestDerivedKnobs:
    def test_fetch_scale_reduces_reads(self):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 12)
        full = FrameWindowSimulator(
            config, ConventionalScheme()
        ).run(frames, 60.0)
        halved = FrameWindowSimulator(
            config, ConventionalScheme(fetch_scale=0.5)
        ).run(frames, 60.0)
        assert halved.timeline.dram_read_bytes < (
            0.75 * full.timeline.dram_read_bytes
        )

    def test_writeback_scale_reduces_writes(self):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 12)
        full = FrameWindowSimulator(
            config, ConventionalScheme()
        ).run(frames, 60.0)
        halved = FrameWindowSimulator(
            config, ConventionalScheme(writeback_scale=0.5)
        ).run(frames, 60.0)
        assert halved.timeline.dram_write_bytes < (
            0.8 * full.timeline.dram_write_bytes
        )
