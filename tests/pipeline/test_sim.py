"""The frame-window simulator."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.errors import DeadlineMissError, SimulationError
from repro.pipeline.builder import TimelineBuilder
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import (
    FrameWindowSimulator,
    RunStats,
    VrWork,
    WindowContext,
    WindowResult,
)
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


class BrokenScheme:
    """A scheme whose windows are too short — must be rejected."""

    name = "broken"

    def plan_window(self, ctx):
        builder = TimelineBuilder(
            start=ctx.window.start, initial_state=ctx.initial_state
        )
        builder.add(ctx.window.duration / 2, PackageCState.C8)
        return WindowResult(timeline=builder.build())


class MissingScheme:
    """A scheme that always reports a deadline miss."""

    name = "missing"

    def plan_window(self, ctx):
        builder = TimelineBuilder(
            start=ctx.window.start, initial_state=ctx.initial_state
        )
        builder.add(ctx.window.duration, PackageCState.C0,
                    cpu_active=True)
        return WindowResult(
            timeline=builder.build(), deadline_missed=True
        )


@pytest.fixture
def frames():
    return AnalyticContentModel().frames(FHD, 12, seed=1)


class TestRun:
    def test_window_count_from_fps(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0)
        # 12 frames at 30 FPS on 60 Hz = 24 windows.
        assert run.stats.windows == 24
        assert run.stats.new_frame_windows == 12
        assert run.stats.repeat_windows == 12

    def test_explicit_window_cap(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, max_windows=6)
        assert run.stats.windows == 6

    def test_timeline_is_contiguous(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0)
        assert run.duration == pytest.approx(24 / 60)

    def test_empty_frames_rejected(self, fhd_config):
        with pytest.raises(SimulationError):
            FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run([], 30.0)

    def test_broken_scheme_detected(self, fhd_config, frames):
        with pytest.raises(SimulationError):
            FrameWindowSimulator(fhd_config, BrokenScheme()).run(
                frames, 30.0
            )

    def test_strict_deadlines_raise(self, frames):
        from dataclasses import replace

        config = replace(skylake_tablet(FHD), strict_deadlines=True)
        with pytest.raises(DeadlineMissError):
            FrameWindowSimulator(config, MissingScheme()).run(
                frames, 30.0
            )

    def test_lenient_deadlines_record(self, fhd_config, frames):
        run = FrameWindowSimulator(fhd_config, MissingScheme()).run(
            frames, 30.0
        )
        assert run.stats.deadline_misses == run.stats.windows

    def test_vr_work_length_checked(self, fhd_config, frames):
        with pytest.raises(SimulationError):
            FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run(frames, 30.0, vr_work=[
                VrWork(1.0, 0.0, 1.0)
            ])

    def test_residency_fractions_sum(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0)
        assert sum(run.residency_fractions().values()) == (
            pytest.approx(1.0)
        )

    def test_effective_fps_matches_content(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0)
        assert run.effective_fps == pytest.approx(30.0)

    def test_effective_fps_drops_with_misses(self, fhd_config, frames):
        run = FrameWindowSimulator(fhd_config, MissingScheme()).run(
            frames, 30.0
        )
        assert run.effective_fps == 0.0


class TestVrWork:
    def test_validation(self):
        with pytest.raises(SimulationError):
            VrWork(source_bytes=0, projection_s=1, projected_bytes=1)
        with pytest.raises(SimulationError):
            VrWork(source_bytes=1, projection_s=-1, projected_bytes=1)


class TestWindowContext:
    def test_display_bytes_caps_at_panel(self, fhd_config, frames):
        from dataclasses import replace as dc_replace

        plan = next(iter(
            __import__("repro.display.timing", fromlist=["RefreshTiming"])
            .RefreshTiming(60, 30).windows(1)
        ))
        oversized = dc_replace(
            frames[0], decoded_bytes=fhd_config.panel.frame_bytes * 4
        )
        ctx = WindowContext(
            config=fhd_config, window=plan, frame=oversized
        )
        assert ctx.display_bytes == fhd_config.panel.frame_bytes

    def test_display_bytes_override(self, fhd_config, frames):
        from repro.display.timing import RefreshTiming

        plan = next(iter(RefreshTiming(60, 30).windows(1)))
        ctx = WindowContext(
            config=fhd_config,
            window=plan,
            frame=frames[0],
            display_bytes_override=123.0,
        )
        assert ctx.display_bytes == 123.0

    def test_vr_display_bytes_is_projected(self, fhd_config, frames):
        from repro.display.timing import RefreshTiming

        plan = next(iter(RefreshTiming(60, 30).windows(1)))
        ctx = WindowContext(
            config=fhd_config,
            window=plan,
            frame=frames[0],
            vr=VrWork(1e6, 1e-3, 2e6),
        )
        assert ctx.display_bytes == 2e6


class TestRunStats:
    def test_record_accumulates(self):
        from repro.display.timing import RefreshTiming

        stats = RunStats()
        plan = next(iter(RefreshTiming(60, 30).windows(1)))
        builder = TimelineBuilder(initial_state=PackageCState.C8)
        builder.add(plan.duration, PackageCState.C8)
        result = WindowResult(
            timeline=builder.build(),
            used_psr=True,
            vd_wakes=3,
            bypassed_dram=True,
            burst=True,
        )
        stats.record(plan, result)
        assert stats.psr_windows == 1
        assert stats.vd_wakes == 3
        assert stats.bypassed_windows == 1
        assert stats.burst_windows == 1
