"""Timeline and segment algebra."""

import pytest

from repro.errors import SimulationError
from repro.pipeline.timeline import (
    PanelMode,
    Segment,
    Timeline,
    VdMode,
)
from repro.soc.cstates import PackageCState


def seg(start, end, state, **kwargs):
    return Segment(start=start, end=end, state=state, **kwargs)


class TestSegment:
    def test_duration(self):
        assert seg(1.0, 3.0, PackageCState.C8).duration == 2.0

    def test_reversed_rejected(self):
        with pytest.raises(SimulationError):
            seg(3.0, 1.0, PackageCState.C8)

    def test_traffic_derivation(self):
        segment = seg(
            0.0, 2.0, PackageCState.C2,
            dram_read_bw=100.0, dram_write_bw=50.0, edp_rate=10.0,
        )
        assert segment.dram_read_bytes == 200.0
        assert segment.dram_write_bytes == 100.0
        assert segment.edp_bytes == 20.0

    def test_traffic_in_self_refresh_rejected(self):
        """A segment cannot move DRAM data while the package state puts
        DRAM in self-refresh — the central datapath invariant."""
        with pytest.raises(SimulationError):
            seg(0, 1, PackageCState.C8, dram_read_bw=1.0)

    def test_traffic_allowed_in_c0_c2(self):
        seg(0, 1, PackageCState.C0, dram_write_bw=1.0)
        seg(0, 1, PackageCState.C2, dram_read_bw=1.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(SimulationError):
            seg(0, 1, PackageCState.C0, dram_read_bw=-1)
        with pytest.raises(SimulationError):
            seg(0, 1, PackageCState.C0, edp_rate=-1)

    def test_shifted(self):
        shifted = seg(0.0, 1.0, PackageCState.C8).shifted(5.0)
        assert (shifted.start, shifted.end) == (5.0, 6.0)


class TestTimelineStructure:
    def test_contiguity_enforced(self):
        with pytest.raises(SimulationError):
            Timeline([
                seg(0.0, 1.0, PackageCState.C0),
                seg(1.5, 2.0, PackageCState.C8),
            ])

    def test_append_must_be_contiguous(self):
        timeline = Timeline([seg(0.0, 1.0, PackageCState.C0)])
        with pytest.raises(SimulationError):
            timeline.append(seg(2.0, 3.0, PackageCState.C8))

    def test_extend_shifts(self):
        a = Timeline([seg(0.0, 1.0, PackageCState.C0)])
        b = Timeline([seg(0.0, 2.0, PackageCState.C8)])
        a.extend(b)
        assert a.end == 3.0

    def test_concatenate(self):
        parts = [
            Timeline([seg(0.0, 1.0, PackageCState.C0)]),
            Timeline([seg(0.0, 1.0, PackageCState.C8)]),
            Timeline([seg(0.0, 1.0, PackageCState.C9)]),
        ]
        joined = Timeline.concatenate(parts)
        assert joined.duration == 3.0
        assert len(joined) == 3

    def test_empty_timeline(self):
        empty = Timeline()
        assert empty.duration == 0.0
        assert len(empty) == 0


class TestResidencies:
    def make(self):
        return Timeline([
            seg(0.0, 1.0, PackageCState.C0),
            seg(1.0, 2.0, PackageCState.C7),
            seg(2.0, 3.0, PackageCState.C7_PRIME),
            seg(3.0, 10.0, PackageCState.C9),
        ])

    def test_fold_prime_into_c7(self):
        residencies = self.make().residencies(fold_prime=True)
        assert residencies[PackageCState.C7] == pytest.approx(2.0)
        assert PackageCState.C7_PRIME not in residencies

    def test_unfolded(self):
        residencies = self.make().residencies(fold_prime=False)
        assert residencies[PackageCState.C7_PRIME] == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        fractions = self.make().residency_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty_rejected(self):
        with pytest.raises(SimulationError):
            Timeline().residency_fractions()

    def test_dominant_state(self):
        assert self.make().dominant_state() is PackageCState.C9

    def test_dominant_of_empty_rejected(self):
        with pytest.raises(SimulationError):
            Timeline().dominant_state()


class TestTransitions:
    def test_transition_accounting(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C0),
            seg(1.0, 1.1, PackageCState.C0, transition=True),
            seg(1.1, 2.0, PackageCState.C8),
        ])
        assert timeline.transition_time() == pytest.approx(0.1)
        assert timeline.transition_count() == 1


class TestTrafficTotals:
    def test_totals(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C0, dram_read_bw=10,
                dram_write_bw=5),
            seg(1.0, 2.0, PackageCState.C2, dram_read_bw=10),
        ])
        assert timeline.dram_read_bytes == pytest.approx(20.0)
        assert timeline.dram_write_bytes == pytest.approx(5.0)
        assert timeline.dram_total_bytes == pytest.approx(25.0)


class TestPattern:
    def test_collapsed_pattern(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C0),
            seg(1.0, 2.0, PackageCState.C2),
            seg(2.0, 3.0, PackageCState.C2),
            seg(3.0, 4.0, PackageCState.C8),
        ])
        assert timeline.pattern() == "C0 C2 C8"

    def test_uncollapsed(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C2),
            seg(1.0, 2.0, PackageCState.C2),
        ])
        assert timeline.pattern(collapse=False) == "C2 C2"

    def test_transitions_excluded(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C0),
            seg(1.0, 1.1, PackageCState.C2, transition=True),
            seg(1.1, 2.0, PackageCState.C8),
        ])
        assert timeline.pattern() == "C0 C8"

    def test_prime_label_in_pattern(self):
        timeline = Timeline([
            seg(0.0, 1.0, PackageCState.C7),
            seg(1.0, 2.0, PackageCState.C7_PRIME),
        ])
        assert timeline.pattern() == "C7 C7'"


class TestModes:
    def test_vd_modes(self):
        assert not VdMode.HALTED.name == VdMode.ACTIVE.name

    def test_panel_modes(self):
        assert PanelMode.LIVE is not PanelMode.SELF_REFRESH
