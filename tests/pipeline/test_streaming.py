"""Streaming retention modes and repeat-window collapsing."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import (
    default_retain,
    install_run_memo,
    set_default_retain,
)
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel


@pytest.fixture(autouse=True)
def no_memo():
    """These tests measure the simulator itself, not the run cache."""
    previous = install_run_memo(None)
    yield
    install_run_memo(previous)


@pytest.fixture
def frames():
    return AnalyticContentModel().frames(FHD, 12, seed=5)


def _counter(name):
    return obs_metrics.registry().counter(name, "").value


def _assert_same_aggregates(reference, other, rel=1e-9):
    assert other.stats == reference.stats
    assert other.duration == pytest.approx(
        reference.duration, rel=rel
    )
    ref_res = reference.residency_fractions()
    other_res = other.residency_fractions()
    assert set(ref_res) == set(other_res)
    for state, fraction in ref_res.items():
        assert other_res[state] == pytest.approx(
            fraction, rel=rel, abs=1e-12
        )
    assert other.dram_total_bytes == pytest.approx(
        reference.dram_total_bytes, rel=rel
    )
    assert other.edp_bytes == pytest.approx(
        reference.edp_bytes, rel=rel
    )


def _assert_same_power(reference, other, rel=1e-9):
    ref = PowerModel().report(reference)
    oth = PowerModel().report(other)
    assert oth.total_energy_mj == pytest.approx(
        ref.total_energy_mj, rel=rel
    )
    assert set(ref.by_component_mj) == set(oth.by_component_mj)
    for component, mj in ref.by_component_mj.items():
        assert oth.by_component_mj[component] == pytest.approx(
            mj, rel=rel, abs=1e-9
        )


class TestRetainModes:
    def test_summary_mode_drops_timeline(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, retain="summary")
        assert run.timeline is None
        assert run.summary is not None
        assert run.aggregate is run.summary

    def test_full_mode_also_builds_summary(self, fhd_config, frames):
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, retain="full")
        assert run.timeline is not None
        assert run.summary is not None
        assert run.summary.duration == pytest.approx(
            run.timeline.duration
        )
        assert run.summary.segment_count == len(run.timeline)

    def test_summary_parity_with_full(self, fhd_config, frames):
        full = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, retain="full")
        summary = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, retain="summary")
        _assert_same_aggregates(full, summary)
        _assert_same_power(full, summary)

    def test_summary_parity_for_burstlink(self, fhd_config, frames):
        config = fhd_config.with_drfb()
        full = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 30.0, retain="full"
        )
        summary = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 30.0, retain="summary"
        )
        _assert_same_aggregates(full, summary)
        _assert_same_power(full, summary)

    def test_unknown_retain_rejected(self, fhd_config, frames):
        with pytest.raises(SimulationError):
            FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run(frames, 30.0, retain="segments")

    def test_default_retain_round_trip(self, fhd_config, frames):
        previous = set_default_retain("summary")
        try:
            assert default_retain() == "summary"
            run = FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run(frames, 30.0)
            assert run.timeline is None
        finally:
            assert set_default_retain(previous) == "summary"
        assert default_retain() == previous

    def test_default_retain_rejects_unknown(self):
        with pytest.raises(SimulationError):
            set_default_retain("everything")


class TestCollapse:
    def test_collapse_matches_fresh_plans(self, fhd_config, frames):
        fresh = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, collapse=False)
        collapsed = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, collapse=True)
        _assert_same_aggregates(fresh, collapsed)
        _assert_same_power(fresh, collapsed)

    def test_collapse_matches_for_burstlink(self, fhd_config, frames):
        config = fhd_config.with_drfb()
        fresh = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 30.0, collapse=False
        )
        collapsed = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 30.0, collapse=True
        )
        _assert_same_aggregates(fresh, collapsed)
        _assert_same_power(fresh, collapsed)

    def test_counters_cover_every_window(self, fhd_config, frames):
        before_hit = _counter("sim.collapse.hit")
        before_miss = _counter("sim.collapse.miss")
        # 15 FPS on 60 Hz: three repeats per new frame, plenty of
        # collapsible back-to-back windows.
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 15.0, collapse=True)
        hits = _counter("sim.collapse.hit") - before_hit
        misses = _counter("sim.collapse.miss") - before_miss
        assert hits + misses == run.stats.windows
        assert hits > 0

    def test_collapse_off_leaves_counters(self, fhd_config, frames):
        before_hit = _counter("sim.collapse.hit")
        before_miss = _counter("sim.collapse.miss")
        FrameWindowSimulator(fhd_config, ConventionalScheme()).run(
            frames, 15.0, collapse=False
        )
        assert _counter("sim.collapse.hit") == before_hit
        assert _counter("sim.collapse.miss") == before_miss

    def test_tracer_disables_collapse(self, fhd_config, frames):
        before_hit = _counter("sim.collapse.hit")
        before_miss = _counter("sim.collapse.miss")
        with obs_trace.tracing():
            traced = FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run(frames, 15.0, collapse=True)
        assert _counter("sim.collapse.hit") == before_hit
        assert _counter("sim.collapse.miss") == before_miss
        untraced = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 15.0, collapse=True)
        _assert_same_aggregates(traced, untraced)


class TestExhaustedStreamClamp:
    """Windows past the end of the stream re-present the last frame
    and must count as repeats (satellite: effective_fps inflation)."""

    def test_clamped_windows_count_as_repeats(self, fhd_config):
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        # 4 frames at 30 FPS on 60 Hz naturally cover 8 windows; ask
        # for 40 and the last 32 re-present frame 3.
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, max_windows=40, collapse=False)
        assert run.stats.windows == 40
        assert run.stats.new_frame_windows == 4
        assert run.stats.repeat_windows == 36

    def test_effective_fps_not_inflated(self, fhd_config):
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, max_windows=40, collapse=False)
        # Only 4 frames were ever presented over 40/60 s.
        assert run.effective_fps == pytest.approx(4 / run.duration)
        assert run.effective_fps < 30.0

    def test_summary_kind_counts_match(self, fhd_config):
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(
            frames, 30.0, max_windows=40, retain="summary",
            collapse=False,
        )
        assert run.summary.window_counts["new_frame"] == 4
        assert run.summary.window_counts["repeat"] == 36

    def test_clamp_identical_with_collapse(self, fhd_config):
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        fresh = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, max_windows=40, collapse=False)
        collapsed = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(frames, 30.0, max_windows=40, collapse=True)
        _assert_same_aggregates(fresh, collapsed)


class _EndlessSource:
    """A frame stream with no length: yields one frame forever."""

    def __init__(self, frame):
        self.frame = frame

    def __iter__(self):
        from dataclasses import replace

        index = 0
        while True:
            yield replace(self.frame, index=index)
            index += 1

    def fingerprint_token(self):
        raise TypeError("endless streams are not fingerprintable")


class TestLengthlessSources:
    def test_requires_max_windows(self, fhd_config):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        with pytest.raises(SimulationError):
            FrameWindowSimulator(
                fhd_config, ConventionalScheme()
            ).run(_EndlessSource(frame), 30.0)

    def test_runs_with_max_windows(self, fhd_config):
        frame = AnalyticContentModel().frames(FHD, 1)[0]
        run = FrameWindowSimulator(
            fhd_config, ConventionalScheme()
        ).run(_EndlessSource(frame), 30.0, max_windows=6)
        assert run.stats.windows == 6
        assert run.stats.new_frame_windows == 3


class TestStreamingSimulator:
    """The incremental (push-driven) walker behind ``repro serve``."""

    def _offline(self, config, scheme, frames, **kw):
        return FrameWindowSimulator(config, scheme).run(
            frames, 30.0, retain="summary", engine="scalar", **kw
        )

    def _payload(self, run):
        import json

        return json.dumps(run.summary.to_payload(), sort_keys=True)

    @pytest.mark.parametrize(
        "scheme_factory, needs_drfb",
        [
            (ConventionalScheme, False),
            (BurstLinkScheme, True),
        ],
    )
    def test_byte_parity_with_offline_summary(
        self, scheme_factory, needs_drfb
    ):
        from repro.pipeline import StreamingSimulator

        config = skylake_tablet(FHD)
        if needs_drfb:
            config = config.with_drfb()
        frames = AnalyticContentModel().frames(FHD, 24, seed=9)
        streaming = StreamingSimulator(config, scheme_factory(), 30.0)
        for frame in frames:
            streaming.push(frame)
        streaming.end()
        live = streaming.result()
        offline = self._offline(config, scheme_factory(), frames)
        assert self._payload(live) == self._payload(offline)
        assert live.stats == offline.stats

    def test_stateful_scheme_parity(self):
        from repro.baselines import VipScheme
        from repro.pipeline import StreamingSimulator

        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 24, seed=9)
        streaming = StreamingSimulator(config, VipScheme(), 30.0)
        for frame in frames:
            streaming.push(frame)
        streaming.end()
        offline = self._offline(config, VipScheme(), frames)
        assert self._payload(streaming.result()) == self._payload(
            offline
        )

    def test_prefix_decisions_are_final(self, frames):
        """Windows advanced mid-stream never get re-planned: the
        conservative horizon means every prefix decision matches the
        completed offline run."""
        from repro.pipeline import StreamingSimulator

        config = skylake_tablet(FHD).with_drfb()
        streaming = StreamingSimulator(config, BurstLinkScheme(), 30.0)
        advanced = 0
        for frame in frames:
            windows = streaming.push(frame)
            for window in windows:
                assert not window.plan.is_new_frame or (
                    window.plan.frame_index < streaming.frames_seen
                )
            advanced += len(windows)
        assert streaming.stalled
        advanced += len(streaming.end())
        assert advanced == streaming.windows_simulated
        assert streaming.finished

    def test_max_windows_matches_offline(self, frames):
        from repro.pipeline import StreamingSimulator

        config = skylake_tablet(FHD)
        streaming = StreamingSimulator(
            config, ConventionalScheme(), 30.0, max_windows=7
        )
        for frame in frames:
            streaming.push(frame)
        streaming.end()
        live = streaming.result()
        offline = self._offline(
            config, ConventionalScheme(), frames, max_windows=7
        )
        assert live.stats.windows == 7
        assert self._payload(live) == self._payload(offline)

    def test_empty_stream_rejected(self):
        from repro.pipeline import StreamingSimulator

        streaming = StreamingSimulator(
            skylake_tablet(FHD), ConventionalScheme(), 30.0
        )
        with pytest.raises(SimulationError):
            streaming.end()

    def test_push_after_end_rejected(self, frames):
        from repro.pipeline import StreamingSimulator

        streaming = StreamingSimulator(
            skylake_tablet(FHD), ConventionalScheme(), 30.0
        )
        streaming.push(frames[0])
        streaming.end()
        with pytest.raises(SimulationError):
            streaming.push(frames[1])
        # result() is idempotent.
        assert streaming.result() is streaming.result()

    def test_result_before_end_rejected(self, frames):
        from repro.pipeline import StreamingSimulator

        streaming = StreamingSimulator(
            skylake_tablet(FHD), ConventionalScheme(), 30.0
        )
        streaming.push(frames[0])
        with pytest.raises(SimulationError):
            streaming.result()

    def test_collapse_hits_on_repeat_windows(self):
        from repro.pipeline import StreamingSimulator
        from repro.video.source import FrameDescriptor
        from repro.video.frames import FrameType

        config = skylake_tablet(FHD)
        # 10 fps video on the 60 Hz panel: five consecutive repeat
        # windows per frame, and consecutive repeats share a collapse
        # key (the collapse cache holds exactly the previous window).
        streaming = StreamingSimulator(
            config, ConventionalScheme(), 10.0
        )
        windows = []
        for index in range(4):
            windows += streaming.push(
                FrameDescriptor(
                    index=index,
                    frame_type=FrameType.I,
                    encoded_bytes=200_000,
                    decoded_bytes=FHD.width * FHD.height * 3,
                )
            )
        windows += streaming.end()
        assert sum(w.collapsed for w in windows) > 0
        run = streaming.result()
        assert run.stats.windows == streaming.windows_simulated
        assert run.stats.windows == len(windows)
