"""The timeline builder: excursion insertion and idle-state selection."""

import pytest

from repro.errors import SimulationError
from repro.pipeline.builder import TimelineBuilder, excursion_latency
from repro.soc.cstates import PackageCState, transition_cost


class TestExcursionLatency:
    def test_same_state_free(self):
        assert excursion_latency(
            PackageCState.C8, PackageCState.C8
        ) == 0.0

    def test_going_deeper_pays_entry(self):
        assert excursion_latency(
            PackageCState.C0, PackageCState.C8
        ) == transition_cost(PackageCState.C8).entry_latency

    def test_going_shallower_pays_exit(self):
        assert excursion_latency(
            PackageCState.C8, PackageCState.C0
        ) == transition_cost(PackageCState.C8).exit_latency


class TestAdd:
    def test_first_phase_in_initial_state_has_no_excursion(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C0, label="work")
        timeline = builder.build()
        assert len(timeline) == 1
        assert not timeline.segments[0].transition

    def test_state_change_inserts_transition(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C8)
        timeline = builder.build()
        assert timeline.segments[0].transition
        assert timeline.segments[0].duration == pytest.approx(
            transition_cost(PackageCState.C8).entry_latency
        )

    def test_excursion_carved_from_phase(self):
        """Time is conserved: the transition eats into the phase."""
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C8)
        assert builder.now == pytest.approx(1e-3)

    def test_transition_attributed_to_shallower_state(self):
        builder = TimelineBuilder(initial_state=PackageCState.C8)
        builder.add(1e-3, PackageCState.C2)  # waking up
        timeline = builder.build()
        # C8 -> C2: the excursion counts toward C2 (the shallower).
        assert timeline.segments[0].state is PackageCState.C2
        builder2 = TimelineBuilder(initial_state=PackageCState.C2)
        builder2.add(1e-3, PackageCState.C8)  # going to sleep
        # C2 -> C8: still attributed to C2.
        assert builder2.build().segments[0].state is PackageCState.C2

    def test_phase_shorter_than_excursion_is_squeezed(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-6, PackageCState.C9)  # entry takes 250 us
        assert builder.squeezed_phases == 1

    def test_zero_duration_is_noop(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(0.0, PackageCState.C8)
        assert len(builder.build()) == 0
        assert builder.state is PackageCState.C0

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            TimelineBuilder().add(-1.0, PackageCState.C8)

    def test_attrs_forwarded(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C0, cpu_active=True)
        assert builder.build().segments[0].cpu_active


class TestIdle:
    def test_long_idle_picks_deepest(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        chosen = builder.idle(
            10e-3, [PackageCState.C8, PackageCState.C9]
        )
        assert chosen is PackageCState.C9

    def test_short_idle_declines_deep_state(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        # C9 round trip is 450 us; a 1 ms gap fails the 20% rule.
        chosen = builder.idle(
            1e-3, [PackageCState.C8, PackageCState.C9]
        )
        assert chosen is PackageCState.C8

    def test_shallowest_used_unconditionally(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        chosen = builder.idle(1e-6, [PackageCState.C8])
        assert chosen is PackageCState.C8

    def test_empty_candidates_rejected(self):
        with pytest.raises(SimulationError):
            TimelineBuilder().idle(1e-3, [])

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            TimelineBuilder().idle(-1.0, [PackageCState.C8])

    def test_candidate_order_irrelevant(self):
        a = TimelineBuilder(initial_state=PackageCState.C0)
        b = TimelineBuilder(initial_state=PackageCState.C0)
        assert a.idle(
            10e-3, [PackageCState.C9, PackageCState.C8]
        ) is b.idle(10e-3, [PackageCState.C8, PackageCState.C9])


class TestFillTo:
    def test_fill_pads_to_time(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C0)
        builder.fill_to(5e-3, PackageCState.C8)
        assert builder.now == pytest.approx(5e-3)

    def test_fill_to_now_is_noop(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(1e-3, PackageCState.C0)
        builder.fill_to(1e-3, PackageCState.C8)
        assert builder.state is PackageCState.C0

    def test_fill_into_past_rejected(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(2e-3, PackageCState.C0)
        with pytest.raises(SimulationError):
            builder.fill_to(1e-3, PackageCState.C8)


class TestSequenceConsistency:
    def test_oscillation_produces_alternating_pattern(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        for _ in range(3):
            builder.add(1e-3, PackageCState.C2, label="fetch")
            builder.add(1e-3, PackageCState.C8, label="drain")
        pattern = builder.build().pattern()
        assert pattern == "C0 C2 C8 C2 C8 C2 C8".replace("C0 ", "", 1) or (
            pattern == "C2 C8 C2 C8 C2 C8"
        )

    def test_total_time_conserved(self):
        builder = TimelineBuilder(initial_state=PackageCState.C0)
        builder.add(4e-3, PackageCState.C2)
        builder.add(4e-3, PackageCState.C8)
        builder.add(4e-3, PackageCState.C9)
        assert builder.build().duration == pytest.approx(12e-3)
