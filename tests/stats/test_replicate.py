"""The multi-seed replication engine over the runner/cache substrate."""

import pytest

from repro.analysis.experiments import seed_offset
from repro.errors import ConfigurationError
from repro.stats.replicate import (
    EFFECT_PAIRS,
    _task_label,
    replicate_exhibits,
    replicate_expectations,
)


@pytest.fixture(scope="module")
def replication():
    """One shared 2-seed fan-out over the two cheapest exhibits that
    exercise both a seed-sensitive and a near-invariant metric."""
    return replicate_exhibits(["fig04", "standby"], seeds=2)


class TestReplicateExhibits:
    def test_cross_product_shape(self, replication):
        assert replication.seeds == 2
        assert len(replication.outcomes) == 4
        assert sorted(replication.results) == ["fig04", "standby"]
        assert all(
            len(results) == 2
            for results in replication.results.values()
        )

    def test_outcomes_carry_task_labels(self, replication):
        labels = [o.metrics.name for o in replication.outcomes]
        assert labels == [
            "fig04@s0", "fig04@s1", "standby@s0", "standby@s1",
        ]
        # outcome.name stays the plain exhibit name for grouping.
        assert {o.name for o in replication.outcomes} == {
            "fig04", "standby",
        }

    def test_seed_offset_restored(self, replication):
        assert seed_offset() == 0

    def test_seed_zero_matches_canonical_run(self, replication):
        from repro.analysis.runner import run_exhibit

        canonical = run_exhibit("fig04").result
        replayed = replication.results["fig04"][0]
        assert replayed.browsing_power_mw == (
            canonical.browsing_power_mw
        )

    def test_seeds_produce_distinct_content(self, replication):
        first, second = replication.results["fig04"]
        assert first.browsing_power_mw != second.browsing_power_mw

    def test_metric_samples_one_value_per_seed(self, replication):
        samples = replication.metric_samples()
        assert all(len(v) == 2 for v in samples.values())
        assert "fig04.browsing" in samples
        assert "standby.burstlink.power_mw" in samples

    def test_estimates_bracket_samples(self, replication):
        estimates = replication.estimates()
        est = estimates["fig04.browsing"]
        samples = replication.metric_samples()["fig04.browsing"]
        assert est.n == 2
        assert min(samples) <= est.mean <= max(samples)

    def test_effect_sizes_cover_present_pairs(self, replication):
        effects = replication.effect_sizes()
        # Only the standby pair's exhibits are in this replication.
        assert list(effects) == [
            "standby.burstlink.power_mw vs "
            "standby.conventional.power_mw"
        ]
        # BurstLink draws less standby power than conventional.
        assert all(d < 0 for d in effects.values())

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            replicate_exhibits(["fig04"], seeds=0)
        with pytest.raises(ConfigurationError):
            replicate_exhibits(["fig04"], seeds=2, jobs=0)
        with pytest.raises(ConfigurationError):
            replicate_exhibits(["nope"], seeds=2)


class TestTaskLabel:
    def test_format(self):
        assert _task_label("fig04", 3) == "fig04@s3"


class TestEffectPairs:
    def test_pairs_reference_registered_metric_keys(self):
        # Both sides of every pair must be producible by the figure
        # registry, or the effect-size report silently goes empty.
        from repro.analysis.figures import figure_registry

        prefixes = tuple(figure_registry())
        for treatment, baseline in EFFECT_PAIRS:
            assert treatment.startswith(prefixes)
            assert baseline.startswith(prefixes)


class TestReplicateExpectations:
    def test_single_seed_matches_direct_measurement(self):
        from repro.obs.drift import measure_expectations

        samples = replicate_expectations(("fig04",), seeds=1)
        direct = measure_expectations(("fig04",))
        assert set(samples) == set(direct)
        assert all(
            samples[key] == [direct[key]] for key in direct
        )

    def test_multi_seed_sample_lists(self):
        samples = replicate_expectations(("fig04",), seeds=2)
        assert all(len(v) == 2 for v in samples.values())
        assert seed_offset() == 0

    def test_rejects_unknown_section(self):
        with pytest.raises(ConfigurationError):
            replicate_expectations(("nope",), seeds=1)
