"""Bootstrap interval estimation: determinism, degenerate cases, and
effect sizes."""

import math

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.stats import (
    IntervalEstimate,
    bootstrap_mean,
    cohens_d,
    estimate_metrics,
    stable_seed,
    variance_table,
)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("fig09.FHD.burstlink") == stable_seed(
            "fig09.FHD.burstlink"
        )

    def test_distinct_names_distinct_streams(self):
        assert stable_seed("a") != stable_seed("b")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_seed("anything") < 2**64


class TestBootstrapMean:
    def test_interval_brackets_mean(self):
        est = bootstrap_mean([10.0, 11.0, 12.0, 9.0, 10.5], seed=7)
        assert est.n == 5
        assert est.lo <= est.mean <= est.hi
        assert est.sd > 0
        assert est.half_width == pytest.approx(
            (est.hi - est.lo) / 2
        )

    def test_deterministic_under_same_seed(self):
        samples = [3.0, 4.0, 5.0]
        assert bootstrap_mean(samples, seed=1) == bootstrap_mean(
            samples, seed=1
        )

    def test_single_sample_degenerates_to_point(self):
        est = bootstrap_mean([42.0])
        assert est == IntervalEstimate(
            n=1, mean=42.0, sd=0.0, lo=42.0, hi=42.0
        )
        assert est.half_width == 0.0

    def test_degenerate_overlap_is_the_point_check(self):
        # The drift gate's seeds=1 collapse: CI-overlap with a
        # zero-width interval is exactly "low <= value <= high".
        est = bootstrap_mean([40.0])
        assert est.overlaps(37.0, 43.0)
        assert not est.overlaps(41.0, 43.0)
        assert not est.overlaps(30.0, 39.0)

    def test_wider_confidence_widens_interval(self):
        samples = [10.0, 12.0, 9.0, 11.0, 10.5]
        narrow = bootstrap_mean(samples, confidence=0.5, seed=3)
        wide = bootstrap_mean(samples, confidence=0.99, seed=3)
        assert wide.hi - wide.lo >= narrow.hi - narrow.lo

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean([])

    def test_rejects_non_finite(self):
        with pytest.raises(SimulationError):
            bootstrap_mean([1.0, float("nan")])
        with pytest.raises(SimulationError):
            bootstrap_mean([1.0, float("inf")])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            bootstrap_mean([1.0, 2.0], confidence=1.0)
        with pytest.raises(ConfigurationError):
            bootstrap_mean([1.0, 2.0], resamples=0)

    def test_to_dict_round_trips_fields(self):
        est = bootstrap_mean([1.0, 2.0, 3.0], seed=5)
        payload = est.to_dict()
        assert payload["n"] == 3
        assert payload["mean"] == est.mean
        assert payload["lo"] == est.lo
        assert payload["hi"] == est.hi
        assert payload["half_width"] == est.half_width


class TestEstimateMetrics:
    def test_per_metric_stable_seeding(self):
        samples = {"m.a": [1.0, 2.0, 3.0], "m.b": [1.0, 2.0, 3.0]}
        first = estimate_metrics(samples)
        second = estimate_metrics(dict(reversed(samples.items())))
        # Processing order must not change any estimate.
        assert first["m.a"] == second["m.a"]
        assert first["m.b"] == second["m.b"]


class TestCohensD:
    def test_known_direction_and_magnitude(self):
        d = cohens_d([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert d == pytest.approx(-3.0)

    def test_zero_variance_equal_means(self):
        assert cohens_d([5.0, 5.0], [5.0, 5.0]) == 0.0

    def test_zero_variance_shifted_means_is_signed_inf(self):
        assert cohens_d([6.0, 6.0], [5.0, 5.0]) == math.inf
        assert cohens_d([4.0, 4.0], [5.0, 5.0]) == -math.inf

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError):
            cohens_d([], [1.0])


class TestVarianceTable:
    def test_lists_every_metric(self):
        table = variance_table(
            estimate_metrics({"x.one": [1.0, 2.0], "x.two": [3.0]})
        )
        assert "x.one" in table and "x.two" in table
        assert "half-width" in table
