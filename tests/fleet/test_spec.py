"""Fleet spec loading and validation."""

from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.fleet.spec import (
    AxisSpec,
    FleetSpec,
    WorkloadSpec,
    _parse_toml_minimal,
    load_spec,
    spec_from_dict,
)

GOLDEN_SPEC = (
    Path(__file__).resolve().parent.parent
    / "golden"
    / "fleet_small.toml"
)


def small_spec(**overrides) -> FleetSpec:
    data = {
        "fleet": {
            "devices": 16,
            "seed": 3,
            "shard_size": 4,
            "schemes": ["burstlink"],
            **overrides,
        }
    }
    return spec_from_dict(data)


class TestLoading:
    def test_golden_spec_loads(self):
        spec = load_spec(GOLDEN_SPEC)
        assert spec.devices == 64
        assert spec.shard_size == 16
        assert spec.baseline == "conventional"
        assert spec.schemes == ("burstlink", "bursting")
        assert [w.name for w in spec.workloads] == [
            "stream", "animation", "ambient",
        ]
        assert spec.resolution.values == ("FHD", "QHD", "4K")
        assert spec.refresh_hz.weights == (3.0, 1.0)

    def test_minimal_toml_parser_matches_tomllib(self):
        """The 3.10 fallback parser reads the golden spec to the same
        structure tomllib does (when tomllib is available)."""
        tomllib = pytest.importorskip("tomllib")
        text = GOLDEN_SPEC.read_text(encoding="utf-8")
        assert _parse_toml_minimal(text, "golden") == tomllib.loads(
            text
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec(tmp_path / "absent.toml")

    def test_devices_required(self):
        with pytest.raises(ConfigurationError, match="devices"):
            spec_from_dict({"fleet": {"seed": 1}})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fleet"):
            spec_from_dict(
                {"fleet": {"devices": 4, "divices": 9}}
            )

    def test_unknown_workload_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "workloads": [
                        {"name": "w", "kind": "video", "frame": 3}
                    ],
                }
            )


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            small_spec(schemes=["warp-drive"])

    def test_baseline_repeated_in_candidates(self):
        with pytest.raises(ConfigurationError, match="repeated"):
            small_spec(schemes=["conventional"])

    def test_unknown_resolution(self):
        with pytest.raises(
            ConfigurationError, match="unknown resolution"
        ):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "axes": {"resolution": {"values": ["8K"]}},
                }
            )

    def test_infeasible_panel_mode_rejected_at_load(self):
        """5K at 120 Hz exceeds the eDP link budget — the spec must
        fail eagerly, not one shard into a million-device run."""
        with pytest.raises(ConfigurationError):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "axes": {
                        "resolution": {"values": ["5K"]},
                        "refresh_hz": {"values": [120.0]},
                    },
                }
            )

    def test_unknown_content(self):
        with pytest.raises(ConfigurationError, match="content"):
            WorkloadSpec("w", "video", content="vapor")

    def test_unknown_workload_kind(self):
        with pytest.raises(ConfigurationError, match="kind"):
            WorkloadSpec("w", "render")

    def test_duplicate_workload_names(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "workloads": [
                        {"name": "w", "kind": "video"},
                        {"name": "w", "kind": "standby"},
                    ],
                }
            )

    def test_weight_count_mismatch(self):
        with pytest.raises(ConfigurationError, match="weights"):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "axes": {
                        "resolution": {
                            "values": ["FHD", "QHD"],
                            "weights": [1.0],
                        }
                    },
                }
            )

    def test_nonpositive_weight(self):
        with pytest.raises(ConfigurationError, match="> 0"):
            AxisSpec("fps", (30.0,), (0.0,))

    def test_standby_update_fps_beyond_refresh(self):
        with pytest.raises(ConfigurationError, match="update_fps"):
            spec_from_dict(
                {
                    "fleet": {"devices": 4},
                    "axes": {"refresh_hz": {"values": [60.0]}},
                    "workloads": [
                        {
                            "name": "w",
                            "kind": "standby",
                            "update_fps": 90.0,
                        }
                    ],
                }
            )


class TestFingerprint:
    def test_device_count_is_excluded(self):
        """Growing a fleet extends a checkpoint, never invalidates."""
        a = small_spec()
        b = a.with_devices(1_000_000)
        assert a.fingerprint() == b.fingerprint()
        assert b.devices == 1_000_000

    def test_sampling_changes_move_the_fingerprint(self):
        a = small_spec()
        assert a.fingerprint() != small_spec(seed=4).fingerprint()
        assert (
            a.fingerprint()
            != small_spec(schemes=["bursting"]).fingerprint()
        )

    def test_payload_round_trips(self):
        spec = load_spec(GOLDEN_SPEC)
        again = spec_from_dict(spec.to_payload())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()


class TestShardRanges:
    def test_covers_every_device_exactly_once(self):
        spec = small_spec(devices=10, shard_size=4)
        assert spec.shard_ranges() == [(0, 4), (4, 8), (8, 10)]

    def test_single_shard(self):
        spec = small_spec(devices=3, shard_size=100)
        assert spec.shard_ranges() == [(0, 3)]
