"""The fleet engine: fan-out, checkpointing, resume, telemetry."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import run_fleet
from repro.fleet.checkpoint import FleetCheckpoint
from repro.fleet.pool import _simulate_range
from repro.fleet.spec import spec_from_dict
from repro.obs import metrics as obs_metrics
from repro.obs.export import prometheus_text


def small_spec(devices=12, shard_size=4, **overrides):
    return spec_from_dict(
        {
            "fleet": {
                "devices": devices,
                "seed": 5,
                "shard_size": shard_size,
                "schemes": ["burstlink"],
                "content_seeds": 2,
                **overrides,
            },
            "axes": {
                "resolution": {"values": ["FHD", "QHD"]},
                "fps": {"values": [30.0, 60.0]},
            },
            "workloads": [
                {"name": "stream", "kind": "video", "frames": 8}
            ],
        }
    )


class TestEngine:
    def test_parallel_report_matches_sequential_bytes(self):
        spec = small_spec()
        sequential = run_fleet(spec, jobs=1)
        parallel = run_fleet(spec, jobs=3)
        assert (
            parallel.aggregate.report_json()
            == sequential.aggregate.report_json()
        )
        assert parallel.workers == 3

    def test_covers_every_device(self):
        spec = small_spec(devices=10, shard_size=3)
        outcome = run_fleet(spec, jobs=1)
        assert outcome.aggregate.devices == 10
        assert outcome.devices_simulated == 10
        assert outcome.shards_simulated == 4
        assert outcome.aggregate.report()["fleet"]["complete"]

    def test_jobs_validation(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            run_fleet(small_spec(), jobs=0)

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ConfigurationError, match="--checkpoint"):
            run_fleet(small_spec(), resume=True)

    def test_fleet_metrics_flow_to_prometheus(self):
        registry = obs_metrics.registry()
        registry.reset()
        run_fleet(small_spec(devices=4, shard_size=2), jobs=1)
        snapshot = registry.snapshot()
        assert snapshot["fleet.devices_simulated"]["value"] == 4
        assert snapshot["fleet.shards_completed"]["value"] == 2
        text = prometheus_text(registry)
        assert "repro_fleet_devices_simulated_total 4" in text
        assert "repro_fleet_shard_wall_s_count 2" in text

    def test_worker_metrics_merge_into_parent(self):
        registry = obs_metrics.registry()
        registry.reset()
        run_fleet(small_spec(devices=8, shard_size=2), jobs=2)
        snapshot = registry.snapshot()
        assert snapshot["fleet.devices_simulated"]["value"] == 8
        assert snapshot["fleet.shards_completed"]["value"] == 4


class TestCheckpoint:
    def test_fresh_run_populates_the_directory(self, tmp_path):
        spec = small_spec()
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        store = FleetCheckpoint(tmp_path)
        assert store.load_spec() == spec
        assert store.completed_shards() == {0, 1, 2}
        cursor = store.read_cursor()
        assert cursor["devices_done"] == 12
        assert cursor["shards_done"] == 3

    def test_resume_skips_checkpointed_shards(self, tmp_path):
        spec = small_spec()
        baseline = run_fleet(spec, jobs=1).aggregate.report_json()
        store = FleetCheckpoint(tmp_path)
        store.initialize(spec, resume=False)
        store.write_shard(0, 0, 4, _simulate_range(spec, 0, 4))
        outcome = run_fleet(
            spec, jobs=2, checkpoint=tmp_path, resume=True
        )
        assert outcome.devices_resumed == 4
        assert outcome.devices_simulated == 8
        assert outcome.shards_resumed == 1
        assert outcome.aggregate.report_json() == baseline

    def test_resume_counts_nothing_twice(self, tmp_path):
        registry = obs_metrics.registry()
        spec = small_spec()
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        registry.reset()
        outcome = run_fleet(
            spec, jobs=1, checkpoint=tmp_path, resume=True
        )
        assert outcome.devices_simulated == 0
        assert outcome.devices_resumed == 12
        snapshot = registry.snapshot()
        assert "fleet.devices_simulated" not in snapshot
        assert snapshot["fleet.devices_resumed"]["value"] == 12

    def test_existing_checkpoint_needs_resume_flag(self, tmp_path):
        spec = small_spec()
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        with pytest.raises(ConfigurationError, match="--resume"):
            run_fleet(spec, jobs=1, checkpoint=tmp_path)

    def test_foreign_spec_rejected(self, tmp_path):
        run_fleet(small_spec(), jobs=1, checkpoint=tmp_path)
        with pytest.raises(
            ConfigurationError, match="different fleet spec"
        ):
            run_fleet(
                small_spec(seed=99),
                jobs=1,
                checkpoint=tmp_path,
                resume=True,
            )

    def test_changed_shard_size_detected(self, tmp_path):
        spec = small_spec(shard_size=4)
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        resized = small_spec(shard_size=6)
        with pytest.raises(
            ConfigurationError, match="different fleet spec"
        ):
            run_fleet(
                resized, jobs=1, checkpoint=tmp_path, resume=True
            )

    def test_growing_the_fleet_extends_the_checkpoint(
        self, tmp_path
    ):
        spec = small_spec(devices=8)
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        grown = spec.with_devices(12)
        outcome = run_fleet(
            grown, jobs=1, checkpoint=tmp_path, resume=True
        )
        assert outcome.devices_resumed == 8
        assert outcome.devices_simulated == 4
        assert (
            outcome.aggregate.report_json()
            == run_fleet(grown, jobs=1).aggregate.report_json()
        )

    def test_shard_files_survive_json_round_trip(self, tmp_path):
        spec = small_spec(devices=4, shard_size=4)
        run_fleet(spec, jobs=1, checkpoint=tmp_path)
        store = FleetCheckpoint(tmp_path)
        (start, stop), shard = store.read_shard(spec, 0)
        assert (start, stop) == (0, 4)
        assert shard.devices == 4
        raw = json.loads(
            store.shard_path(0).read_text(encoding="utf-8")
        )
        assert raw["aggregate"] == shard.to_payload()


class TestProgress:
    def test_progress_lines_stream(self):
        lines = []
        run_fleet(
            small_spec(devices=8, shard_size=4),
            jobs=1,
            progress=lines.append,
        )
        started = [line for line in lines if "started" in line]
        done = [line for line in lines if "done" in line]
        assert len(started) == 2
        assert len(done) == 2
        assert "[2/2]" in done[-1]

    def test_progress_streams_under_fanout(self):
        lines = []
        run_fleet(
            small_spec(devices=8, shard_size=2),
            jobs=2,
            progress=lines.append,
        )
        assert sum("done" in line for line in lines) == 4
