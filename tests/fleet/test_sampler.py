"""Device sampling determinism and per-device simulation."""

from collections import Counter

import pytest

from repro.fleet.sampler import sample_device, simulate_device
from repro.fleet.spec import spec_from_dict


def mixed_spec(devices=64, seed=11):
    return spec_from_dict(
        {
            "fleet": {
                "devices": devices,
                "seed": seed,
                "shard_size": 8,
                "schemes": ["burstlink", "bursting"],
                "content_seeds": 3,
            },
            "axes": {
                "resolution": {
                    "values": ["FHD", "4K"],
                    "weights": [3.0, 1.0],
                },
                "refresh_hz": {"values": [60.0, 120.0]},
                "fps": {"values": [24.0, 30.0, 60.0]},
            },
            "workloads": [
                {
                    "name": "stream",
                    "kind": "video",
                    "weight": 3.0,
                    "frames": 8,
                },
                {
                    "name": "ambient",
                    "kind": "standby",
                    "weight": 1.0,
                    "content": "screen",
                    "duration_s": 4.0,
                    "update_fps": 1.0,
                },
            ],
        }
    )


class TestSampling:
    def test_deterministic_per_index(self):
        spec = mixed_spec()
        for index in range(16):
            assert sample_device(spec, index) == sample_device(
                spec, index
            )

    def test_independent_of_partition(self):
        """A device's draw must not depend on which shard simulates
        it — only on (seed, index) — or resharding would repartition
        the population."""
        spec = mixed_spec()
        grown = spec.with_devices(1024)
        for index in range(spec.devices):
            assert sample_device(spec, index) == sample_device(
                grown, index
            )

    def test_seed_moves_the_population(self):
        a = [sample_device(mixed_spec(seed=1), i) for i in range(32)]
        b = [sample_device(mixed_spec(seed=2), i) for i in range(32)]
        assert a != b

    def test_every_axis_value_is_reachable(self):
        spec = mixed_spec(devices=256)
        samples = [
            sample_device(spec, i) for i in range(spec.devices)
        ]
        assert {s.resolution_label for s in samples} == {"FHD", "4K"}
        assert {s.refresh_hz for s in samples} == {60.0, 120.0}
        assert {s.workload.name for s in samples} == {
            "stream",
            "ambient",
        }
        assert all(
            0 <= s.content_seed < spec.content_seeds
            for s in samples
        )

    def test_weights_bias_the_draw(self):
        spec = mixed_spec(devices=512)
        counts = Counter(
            sample_device(spec, i).resolution_label
            for i in range(spec.devices)
        )
        assert counts["FHD"] > counts["4K"]

    def test_fps_clamped_to_refresh(self):
        spec = spec_from_dict(
            {
                "fleet": {"devices": 64, "schemes": ["burstlink"]},
                "axes": {
                    "refresh_hz": {"values": [24.0]},
                    "fps": {"values": [60.0]},
                },
            }
        )
        for index in range(8):
            assert sample_device(spec, index).fps == 24.0

    def test_stratum_names_the_cell(self):
        spec = mixed_spec()
        sample = sample_device(spec, 0)
        assert sample.workload.name in sample.stratum
        assert sample.resolution_label in sample.stratum


class TestSimulation:
    def test_result_record_shape(self):
        spec = mixed_spec()
        result = simulate_device(spec, sample_device(spec, 0))
        labels = set(spec.scheme_labels())
        assert set(result["power_mw"]) == labels
        assert set(result["battery_h"]) == labels
        assert set(result["reduction"]) == set(spec.schemes)
        assert result["winner"] in labels
        assert all(v > 0 for v in result["power_mw"].values())
        assert all(v > 0 for v in result["battery_h"].values())

    def test_winner_has_the_lowest_power(self):
        spec = mixed_spec()
        for index in range(6):
            result = simulate_device(
                spec, sample_device(spec, index)
            )
            best = min(
                result["power_mw"], key=result["power_mw"].get
            )
            assert (
                result["power_mw"][result["winner"]]
                == result["power_mw"][best]
            )

    def test_burstlink_reduces_energy_on_video(self):
        """The paper's headline direction must survive the fleet
        path: BurstLink beats conventional on streaming video."""
        spec = mixed_spec()
        for index in range(spec.devices):
            sample = sample_device(spec, index)
            if sample.workload.kind != "video":
                continue
            result = simulate_device(spec, sample)
            assert result["reduction"]["burstlink"] > 0
            break
        else:  # pragma: no cover
            pytest.fail("no video device in the first 64 draws")

    def test_standby_devices_simulate(self):
        spec = mixed_spec()
        for index in range(spec.devices):
            sample = sample_device(spec, index)
            if sample.workload.kind != "standby":
                continue
            result = simulate_device(spec, sample)
            assert result["power_mw"][spec.baseline] > 0
            break
        else:  # pragma: no cover
            pytest.fail("no standby device in the first 64 draws")

    def test_deterministic_results(self):
        spec = mixed_spec()
        sample = sample_device(spec, 5)
        assert simulate_device(spec, sample) == simulate_device(
            spec, sample
        )
