"""Golden fleet-report regression.

The 64-device golden spec (``tests/golden/fleet_small.toml``) must
produce a population report that is *byte-identical* to the artifact
checked in as ``tests/golden/fleet_small.report.json``.  A drifting
quantile, a reordered stratum, a renamed field, or a nondeterministic
fold all fail here.

Regenerating the golden (after an intentional change)::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/fleet/test_golden_fleet.py

then review the diff of ``tests/golden/fleet_small.report.json`` like
any other code change before committing.
"""

import json
import os
from pathlib import Path

from repro.fleet import load_spec, run_fleet

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"
SPEC_PATH = GOLDEN_DIR / "fleet_small.toml"
REPORT_PATH = GOLDEN_DIR / "fleet_small.report.json"


def _maybe_update(path: Path, text: str) -> bool:
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        path.write_text(text, encoding="utf-8")
        return True
    return False


def _golden_report_json() -> str:
    return run_fleet(load_spec(SPEC_PATH), jobs=1).aggregate.report_json()


def test_report_matches_golden_bytes():
    text = _golden_report_json()
    _maybe_update(REPORT_PATH, text)
    assert REPORT_PATH.exists(), (
        f"missing golden {REPORT_PATH}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1"
    )
    assert REPORT_PATH.read_bytes() == text.encode("utf-8"), (
        "fleet report drifted from tests/golden/"
        "fleet_small.report.json; if the change is intentional, "
        "regenerate with REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


def test_golden_report_is_complete_and_sane():
    report = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    fleet = report["fleet"]
    assert fleet["complete"] is True
    assert fleet["devices"] == 64
    assert set(fleet["schemes"]) == {
        "conventional",
        "burstlink",
        "bursting",
    }
    # The paper's headline direction holds over the population: the
    # fleet-wide mean BurstLink reduction is positive.
    assert fleet["schemes"]["burstlink"]["reduction"]["mean"] > 0
    assert sum(s["devices"] for s in fleet["strata"].values()) == 64
