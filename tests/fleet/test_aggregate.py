"""Population aggregate accumulation, merging, and serialization."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet.aggregate import (
    FleetAggregate,
    POWER_BUCKETS_MW,
)
from repro.fleet.spec import spec_from_dict


def tiny_spec(**overrides):
    return spec_from_dict(
        {
            "fleet": {
                "devices": 8,
                "seed": 1,
                "schemes": ["burstlink"],
                **overrides,
            }
        }
    )


def record(
    index=0,
    stratum="stream|FHD|60Hz|30fps",
    base=2000.0,
    burst=1200.0,
    winner="burstlink",
):
    return {
        "index": index,
        "stratum": stratum,
        "power_mw": {"conventional": base, "burstlink": burst},
        "battery_h": {
            "conventional": 45_000.0 / base,
            "burstlink": 45_000.0 / burst,
        },
        "reduction": {"burstlink": 1.0 - burst / base},
        "winner": winner,
    }


class TestAccumulation:
    def test_add_device_counts(self):
        aggregate = FleetAggregate(tiny_spec())
        aggregate.add_device(record(0))
        aggregate.add_device(record(1, winner="conventional"))
        assert aggregate.devices == 2
        assert aggregate.wins == {
            "conventional": 1,
            "burstlink": 1,
        }
        assert aggregate.power["conventional"].count == 2

    def test_strata_accumulate(self):
        aggregate = FleetAggregate(tiny_spec())
        aggregate.add_device(record(0, stratum="a"))
        aggregate.add_device(record(1, stratum="a"))
        aggregate.add_device(record(2, stratum="b"))
        assert aggregate.strata["a"]["devices"] == 2
        assert aggregate.strata["b"]["devices"] == 1

    def test_unknown_winner_rejected(self):
        aggregate = FleetAggregate(tiny_spec())
        with pytest.raises(ConfigurationError, match="winner"):
            aggregate.add_device(record(winner="zhang"))


class TestMerge:
    def test_merge_adds(self):
        spec = tiny_spec()
        a = FleetAggregate(spec)
        b = FleetAggregate(spec)
        a.add_device(record(0))
        b.add_device(record(1, base=2400.0))
        b.add_device(record(2, stratum="other"))
        a.merge(b)
        assert a.devices == 3
        assert a.power["conventional"].count == 3
        assert a.strata["other"]["devices"] == 1

    def test_merge_rejects_foreign_spec(self):
        a = FleetAggregate(tiny_spec())
        b = FleetAggregate(tiny_spec(seed=2))
        with pytest.raises(ConfigurationError, match="spec"):
            a.merge(b)

    def test_merge_identity(self):
        spec = tiny_spec()
        a = FleetAggregate(spec)
        a.add_device(record(0))
        before = a.report_json()
        a.merge(FleetAggregate(spec))
        assert a.report_json() == before


class TestSerialization:
    def test_payload_round_trip_is_exact(self):
        spec = tiny_spec()
        aggregate = FleetAggregate(spec)
        for index in range(5):
            aggregate.add_device(
                record(index, base=2000.0 + index * 7.3)
            )
        payload = json.loads(json.dumps(aggregate.to_payload()))
        again = FleetAggregate.from_payload(spec, payload)
        assert again.report_json() == aggregate.report_json()
        assert again.to_payload() == aggregate.to_payload()

    def test_foreign_fingerprint_rejected(self):
        aggregate = FleetAggregate(tiny_spec())
        payload = aggregate.to_payload()
        with pytest.raises(ConfigurationError, match="spec"):
            FleetAggregate.from_payload(tiny_spec(seed=2), payload)

    def test_version_gate(self):
        spec = tiny_spec()
        payload = FleetAggregate(spec).to_payload()
        payload["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            FleetAggregate.from_payload(spec, payload)


class TestReport:
    def test_report_shape(self):
        spec = tiny_spec()
        aggregate = FleetAggregate(spec)
        aggregate.add_device(record(0))
        report = aggregate.report()
        fleet = report["fleet"]
        assert set(fleet["schemes"]) == {
            "conventional",
            "burstlink",
        }
        assert "reduction" in fleet["schemes"]["burstlink"]
        assert "reduction" not in fleet["schemes"]["conventional"]
        assert fleet["schemes"]["burstlink"]["win_rate"] == 1.0
        assert fleet["complete"] is False  # 1 of 8 devices

    def test_report_json_is_canonical(self):
        aggregate = FleetAggregate(tiny_spec())
        aggregate.add_device(record(0))
        text = aggregate.report_json()
        assert text.endswith("\n")
        assert json.dumps(
            json.loads(text), sort_keys=True, indent=2
        ) + "\n" == text

    def test_quantiles_bounded_by_observations(self):
        aggregate = FleetAggregate(tiny_spec())
        values = [1100.0, 1900.0, 2500.0, 3300.0]
        for index, base in enumerate(values):
            aggregate.add_device(record(index, base=base))
        dist = aggregate.report()["fleet"]["schemes"][
            "conventional"
        ]["power_mw"]
        assert dist["min"] == min(values)
        assert dist["max"] == max(values)
        assert (
            min(values) <= dist["p50"] <= max(values)
        )

    def test_power_buckets_are_uniform(self):
        widths = {
            round(b - a, 9)
            for a, b in zip(POWER_BUCKETS_MW, POWER_BUCKETS_MW[1:])
        }
        assert widths == {25.0}
