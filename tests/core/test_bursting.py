"""Frame Bursting alone (the Burst ablation)."""

import pytest

from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core.bursting import FrameBurstingScheme
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(resolution=FHD, fps=30.0, frames=24):
    config = skylake_tablet(resolution).with_drfb()
    descriptors = AnalyticContentModel().frames(resolution, frames)
    return FrameWindowSimulator(config, FrameBurstingScheme()).run(
        descriptors, fps
    )


class TestWindowShape:
    def test_reaches_c9_after_burst(self):
        fractions = run().residency_fractions()
        assert fractions.get(PackageCState.C9, 0.0) > 0.5

    def test_keeps_conventional_decode_in_c0(self):
        fractions = run().residency_fractions()
        # Orchestration + racing decode: C0 well above BurstLink's 2%.
        assert fractions[PackageCState.C0] > 0.04

    def test_burst_oscillates_c2_c8(self):
        result = run(resolution=UHD_4K, frames=4, fps=60.0)
        pattern = result.timeline.pattern()
        assert "C2" in pattern and "C8" in pattern

    def test_every_new_frame_bursts(self):
        result = run(frames=8, fps=60.0)
        assert result.stats.burst_windows == result.stats.windows

    def test_never_bypasses_dram(self):
        result = run(frames=8)
        assert result.stats.bypassed_windows == 0


class TestTraffic:
    def test_frame_still_round_trips_dram(self):
        """Burst-only keeps the conventional decode path: the decoded
        frame is written to and read back from DRAM."""
        result = run(frames=24, fps=60.0)
        frame_bytes = FHD.frame_bytes()
        per_frame = result.timeline.dram_total_bytes / 24
        assert per_frame > 1.8 * frame_bytes


class TestEnergy:
    def _reduction(self, resolution, fps):
        config = skylake_tablet(resolution)
        frames = AnalyticContentModel().frames(resolution, 24)
        model = PowerModel()
        base = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, fps
            )
        )
        burst = model.report(
            FrameWindowSimulator(
                config.with_drfb(), FrameBurstingScheme()
            ).run(frames, fps)
        )
        return 1 - burst.average_power_mw / base.average_power_mw

    def test_fhd30_near_paper_23_percent(self):
        assert self._reduction(FHD, 30.0) == pytest.approx(
            0.23, abs=0.05
        )

    def test_burst_saves_less_than_full_burstlink(self):
        from repro.core.burstlink import BurstLinkScheme

        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 24)
        model = PowerModel()
        burst = model.report(
            FrameWindowSimulator(
                config.with_drfb(), FrameBurstingScheme()
            ).run(frames, 30.0)
        )
        full = model.report(
            FrameWindowSimulator(
                config.with_drfb(), BurstLinkScheme()
            ).run(frames, 30.0)
        )
        assert full.average_power_mw < burst.average_power_mw

    def test_benefit_shrinks_at_high_resolution(self):
        """A model finding documented in EXPERIMENTS.md: the retained
        DRAM round trip dominates at 4K, eroding burst-only gains."""
        assert self._reduction(UHD_4K, 30.0) < self._reduction(
            FHD, 30.0
        )

    def test_no_deadline_misses(self):
        for fps in (30.0, 60.0):
            assert run(resolution=UHD_4K, frames=6,
                       fps=fps).stats.deadline_misses == 0
