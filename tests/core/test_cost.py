"""The Sec. 4.4 hardware cost model."""

import pytest

from repro.config import FHD, PanelConfig, UHD_4K
from repro.core.cost import CostReport, HardwareCostModel
from repro.errors import ConfigurationError


@pytest.fixture
def model():
    return HardwareCostModel()


class TestPaperNumbers:
    def test_4k_drfb_costs_32_5_cents(self, model):
        """Sec. 4.4: 24 MB extra at $13.9/GB is ~32.5 cents."""
        report = model.report(PanelConfig(resolution=UHD_4K))
        assert report.drfb_bom_usd == pytest.approx(0.325, abs=0.01)

    def test_panel_bom_fraction_0_3_percent(self, model):
        report = model.report(PanelConfig(resolution=UHD_4K))
        assert report.drfb_panel_bom_fraction == pytest.approx(
            0.003, abs=0.0005
        )

    def test_device_bom_fraction_0_05_percent(self, model):
        report = model.report(PanelConfig(resolution=UHD_4K))
        assert report.drfb_device_bom_fraction == pytest.approx(
            0.0005, abs=0.0001
        )

    def test_power_overhead_58_mw(self, model):
        report = model.report(PanelConfig(resolution=UHD_4K))
        assert report.drfb_power_overhead_mw == 58.0

    def test_firmware_is_tens_of_lines(self, model):
        report = model.report(PanelConfig(resolution=FHD))
        assert 10 <= report.firmware_lines_added <= 100

    def test_die_area_increase_tiny(self, model):
        report = model.report(PanelConfig(resolution=FHD))
        assert report.die_area_increase_fraction == pytest.approx(
            0.00004
        )


class TestScaling:
    def test_cost_scales_with_frame_size(self, model):
        fhd = model.report(PanelConfig(resolution=FHD))
        uhd = model.report(PanelConfig(resolution=UHD_4K))
        assert uhd.drfb_bom_usd > 3 * fhd.drfb_bom_usd

    def test_extra_bytes_is_one_frame(self, model):
        panel = PanelConfig(resolution=UHD_4K)
        report = model.report(panel)
        assert report.drfb_extra_bytes == panel.frame_bytes


class TestValidation:
    def test_bad_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            HardwareCostModel(dram_usd_per_gb=0)
        with pytest.raises(ConfigurationError):
            HardwareCostModel(drfb_power_overhead_mw=-1)
        with pytest.raises(ConfigurationError):
            HardwareCostModel(firmware_lines_added=-1)

    def test_summary_mentions_key_figures(self, model):
        summary = model.report(PanelConfig(resolution=UHD_4K)).summary()
        assert "24 MB" in summary
        assert "58 mW" in summary
        assert isinstance(
            CostReport.summary, type(HardwareCostModel.report)
        ) or True  # summary is a plain method
