"""The full BurstLink scheme."""

import pytest

from repro.config import FHD, UHD_4K, UHD_5K, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator, VrWork
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(resolution=FHD, fps=30.0, frames=24, vr=None):
    config = skylake_tablet(resolution).with_drfb()
    descriptors = AnalyticContentModel().frames(resolution, frames)
    return FrameWindowSimulator(config, BurstLinkScheme()).run(
        descriptors, fps, vr_work=vr
    )


class TestTable2Residencies:
    def test_fhd30_matches_paper(self):
        fractions = run().residency_fractions()
        assert fractions[PackageCState.C0] == pytest.approx(
            0.02, abs=0.015
        )
        assert fractions[PackageCState.C7] == pytest.approx(
            0.19, abs=0.03
        )
        assert fractions[PackageCState.C9] == pytest.approx(
            0.79, abs=0.04
        )

    def test_no_c2_or_c8_residency(self):
        """Table 2: BurstLink never sits in C2 (no DRAM fetch) and its
        windows skip C8 entirely."""
        fractions = run().residency_fractions()
        assert fractions.get(PackageCState.C2, 0.0) == 0.0
        assert fractions.get(PackageCState.C8, 0.0) == 0.0


class TestTimelineShape:
    def test_fig7_pattern(self):
        result = run(frames=2)
        assert result.timeline.pattern().startswith("C0 C7")
        assert "C9" in result.timeline.pattern()

    def test_repeat_window_goes_straight_to_c9(self):
        result = run(frames=2, fps=30.0)
        window = result.config.frame_window
        second = [
            s for s in result.timeline
            if window <= s.start < 2 * window and not s.transition
        ]
        states = {s.state for s in second}
        assert PackageCState.C9 in states
        assert PackageCState.C7 not in states

    def test_every_window_bursts_and_bypasses(self):
        result = run(frames=6, fps=60.0)
        assert result.stats.burst_windows == result.stats.windows
        assert result.stats.bypassed_windows == result.stats.windows


class TestTraffic:
    def test_dram_nearly_eliminated(self):
        """Only the encoded stream touches DRAM under BurstLink."""
        result = run(frames=24, fps=30.0)
        encoded_total = 2 * sum(
            f.encoded_bytes
            for f in AnalyticContentModel().frames(FHD, 24)
        )
        assert result.timeline.dram_total_bytes == pytest.approx(
            encoded_total, rel=0.05
        )

    def test_edp_carries_every_displayed_frame(self):
        result = run(frames=12, fps=60.0)
        assert result.timeline.edp_bytes == pytest.approx(
            12 * FHD.frame_bytes(), rel=0.05
        )


class TestBurstTiming:
    def test_4k_burst_dominates_c7_period(self):
        """At 4K the burst (7.7 ms at the link max) outlasts the decode:
        the oscillation includes halted (C7') slices."""
        result = run(resolution=UHD_4K, frames=4, fps=60.0)
        unfolded = result.timeline.residencies(fold_prime=False)
        assert unfolded.get(PackageCState.C7_PRIME, 0.0) > 0.0

    def test_fhd_decode_dominates(self):
        """At FHD the stretched decode is the bottleneck: no halts."""
        result = run(resolution=FHD, frames=4, fps=60.0)
        assert result.stats.vd_wakes == 0

    def test_no_deadline_misses_up_to_5k(self):
        for resolution in (FHD, UHD_4K, UHD_5K):
            result = run(resolution=resolution, frames=4, fps=60.0)
            assert result.stats.deadline_misses == 0, str(resolution)


class TestEnergyHeadlines:
    def _reduction(self, resolution, fps):
        config = skylake_tablet(resolution)
        frames = AnalyticContentModel().frames(resolution, 24)
        model = PowerModel()
        base = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, fps
            )
        )
        burst = model.report(
            FrameWindowSimulator(
                config.with_drfb(), BurstLinkScheme()
            ).run(frames, fps)
        )
        return 1 - burst.average_power_mw / base.average_power_mw

    def test_fhd30_reduction_near_paper(self):
        """Fig. 9 reports 37% at FHD 30 FPS."""
        assert self._reduction(FHD, 30.0) == pytest.approx(
            0.37, abs=0.06
        )

    def test_4k60_reduction_at_least_headline(self):
        """The abstract's 4K 60 FPS headline is 41%; our baseline model
        scales steeper, so the reduction must be at least that."""
        assert self._reduction(UHD_4K, 60.0) >= 0.41

    def test_reduction_grows_with_resolution(self):
        assert self._reduction(UHD_4K, 30.0) > self._reduction(
            FHD, 30.0
        )

    def test_reduction_grows_with_fps(self):
        assert self._reduction(FHD, 60.0) > self._reduction(FHD, 30.0)


class TestVrPath:
    def test_vr_run_reaches_c9(self):
        frames = AnalyticContentModel().frames(UHD_4K, 8)
        vr = [
            VrWork(
                source_bytes=UHD_4K.frame_bytes(),
                projection_s=3e-3,
                projected_bytes=FHD.frame_bytes(),
            )
        ] * 8
        result = run(resolution=FHD, frames=8, fps=30.0, vr=vr)
        assert result.residency_fractions()[PackageCState.C9] > 0.4

    def test_vr_projected_frame_bypasses_dram(self):
        frames_count = 8
        source = UHD_4K.frame_bytes()
        vr = [
            VrWork(
                source_bytes=source,
                projection_s=3e-3,
                projected_bytes=FHD.frame_bytes(),
            )
        ] * frames_count
        result = run(
            resolution=FHD, frames=frames_count, fps=30.0, vr=vr
        )
        # DRAM sees: encoded in/out + source write + source read; the
        # projected frame never lands.
        per_frame = (
            result.timeline.dram_total_bytes / frames_count
        )
        assert per_frame < 2.6 * source
        assert per_frame > 1.9 * source
