"""Windowed video via PSR2 selective updates."""

import pytest

from repro.config import FHD, skylake_tablet
from repro.core.windowed import WindowedVideoScheme
from repro.errors import ConfigurationError, SimulationError
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator, VrWork
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(scheme=None, frames=30, fps=30.0):
    config = skylake_tablet(FHD).with_drfb()
    descriptors = AnalyticContentModel().frames(FHD, frames)
    return FrameWindowSimulator(
        config, scheme or WindowedVideoScheme()
    ).run(descriptors, fps)


class TestValidation:
    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedVideoScheme(video_fraction=0.0)
        with pytest.raises(ConfigurationError):
            WindowedVideoScheme(video_fraction=1.5)

    def test_negative_composition_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedVideoScheme(composition_windows=-1)

    def test_vr_rejected(self):
        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 4)
        vr = [VrWork(1e6, 1e-3, 1e6)] * 4
        with pytest.raises(SimulationError):
            FrameWindowSimulator(
                config, WindowedVideoScheme()
            ).run(frames, 30.0, vr_work=vr)


class TestTwoStages:
    def test_composition_stage_fetches_dram(self):
        result = run(
            WindowedVideoScheme(composition_windows=6), frames=4
        )
        window = result.config.frame_window
        early = [
            s for s in result.timeline if s.end <= 2 * window
        ]
        assert any(s.dram_read_bw > 0 for s in early)

    def test_selective_stage_is_psr(self):
        scheme = WindowedVideoScheme(composition_windows=4)
        result = run(scheme, frames=30)
        # Everything after window 4 counts as PSR-assisted.
        assert result.stats.psr_windows >= result.stats.windows - 4 - (
            result.stats.windows // 2
        )

    def test_steady_state_reaches_deep_idle(self):
        result = run(
            WindowedVideoScheme(composition_windows=2), frames=30
        )
        assert result.residency_fractions().get(
            PackageCState.C9, 0
        ) > 0.4

    def test_zero_composition_windows_allowed(self):
        result = run(
            WindowedVideoScheme(composition_windows=0), frames=6
        )
        assert result.stats.windows > 0


class TestEnergy:
    def test_cheaper_than_full_composition(self):
        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 30)
        model = PowerModel()
        composed = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, 30.0
            )
        )
        windowed = model.report(
            FrameWindowSimulator(
                config, WindowedVideoScheme()
            ).run(frames, 30.0)
        )
        assert windowed.average_power_mw < composed.average_power_mw

    def test_smaller_window_is_cheaper(self):
        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 30)
        model = PowerModel()

        def power(fraction):
            scheme = WindowedVideoScheme(
                video_fraction=fraction, composition_windows=0
            )
            return model.report(
                FrameWindowSimulator(config, scheme).run(frames, 30.0)
            ).average_power_mw

        assert power(0.1) < power(0.6)
