"""The scheme-selection / fallback policy."""

from repro.core.burstlink import BurstLinkScheme
from repro.core.bursting import FrameBurstingScheme
from repro.core.fallback import SchemeSelector, select_scheme
from repro.core.windowed import WindowedVideoScheme
from repro.pipeline.conventional import ConventionalScheme
from repro.soc.registers import (
    PlaneDescriptor,
    PlaneType,
    RegisterFile,
)


class TestSelection:
    def test_full_screen_video_selects_burstlink(self):
        scheme = select_scheme(RegisterFile.full_screen_video())
        assert isinstance(scheme, BurstLinkScheme)

    def test_windowed_video_selects_psr2_path(self):
        scheme = select_scheme(RegisterFile.windowed_video())
        assert isinstance(scheme, WindowedVideoScheme)

    def test_single_graphics_plane_selects_bursting(self):
        """Sec. 6.5: a single non-video plane (gaming, productivity)
        arms Frame Bursting."""
        registers = RegisterFile()
        registers.register_plane(PlaneDescriptor(PlaneType.GRAPHICS))
        scheme = select_scheme(registers)
        assert isinstance(scheme, FrameBurstingScheme)

    def test_multi_plane_selects_conventional(self):
        scheme = select_scheme(RegisterFile.multi_plane_desktop())
        assert isinstance(scheme, ConventionalScheme)


class TestFallbackTriggers:
    def test_graphics_interrupt(self):
        registers = RegisterFile.full_screen_video()
        registers.graphics_interrupt = True
        assert isinstance(select_scheme(registers), ConventionalScheme)

    def test_psr2_exit(self):
        registers = RegisterFile.windowed_video()
        registers.psr2_exited = True
        assert isinstance(select_scheme(registers), ConventionalScheme)

    def test_multi_panel(self):
        registers = RegisterFile.full_screen_video()
        registers.panel_count = 3
        assert isinstance(select_scheme(registers), ConventionalScheme)


class TestSelectorLog:
    def test_decisions_recorded_with_reasons(self):
        selector = SchemeSelector()
        selector.select(RegisterFile.full_screen_video())
        registers = RegisterFile.full_screen_video()
        registers.psr2_exited = True
        selector.select(registers)
        assert len(selector.decisions) == 2
        names = [name for name, _ in selector.decisions]
        assert names == ["burstlink", "conventional"]
        assert "PSR2" in selector.decisions[1][1]

    def test_fallback_reasons_distinct(self):
        selector = SchemeSelector()
        for mutate, keyword in (
            (lambda r: setattr(r, "graphics_interrupt", True),
             "interrupt"),
            (lambda r: setattr(r, "psr2_exited", True), "PSR2"),
            (lambda r: setattr(r, "panel_count", 2), "panels"),
        ):
            registers = RegisterFile.full_screen_video()
            mutate(registers)
            selector.select(registers)
            assert keyword in selector.decisions[-1][1]
