"""Frame Buffer Bypass alone (the Bypass ablation, Fig. 6)."""

import pytest

from repro.config import FHD, UHD_4K, UHD_5K, skylake_tablet
from repro.core.bypass import FrameBufferBypassScheme
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def run(resolution=FHD, fps=30.0, frames=24):
    config = skylake_tablet(resolution)
    descriptors = AnalyticContentModel().frames(resolution, frames)
    return FrameWindowSimulator(
        config, FrameBufferBypassScheme()
    ).run(descriptors, fps)


class TestFig6Shape:
    def test_c7_oscillation_spans_the_window(self):
        """Without bursting, the decode-display interleave covers the
        whole new-frame window at the pixel rate."""
        result = run(frames=2, fps=60.0)
        unfolded = result.timeline.residencies(fold_prime=False)
        c7_family = unfolded.get(PackageCState.C7, 0) + unfolded.get(
            PackageCState.C7_PRIME, 0
        )
        assert c7_family / result.duration > 0.75

    def test_pattern_alternates_c7_c7prime(self):
        result = run(frames=2, fps=60.0)
        pattern = result.timeline.pattern()
        assert "C7 C7'" in pattern

    def test_vd_wakes_once_per_buffer_cycle(self):
        result = run(frames=4, fps=60.0)
        cycles = skylake_tablet(FHD).dc.bypass_chunk_cycles(
            FHD.frame_bytes()
        )
        assert result.stats.vd_wakes == 4 * cycles

    def test_repeat_windows_reach_c9(self):
        fractions = run(fps=30.0).residency_fractions()
        assert fractions.get(PackageCState.C9, 0.0) > 0.3


class TestTraffic:
    def test_video_plane_never_touches_dram(self):
        result = run(frames=24, fps=30.0)
        encoded_total = 2 * sum(
            f.encoded_bytes
            for f in AnalyticContentModel().frames(FHD, 24)
        )
        assert result.timeline.dram_total_bytes == pytest.approx(
            encoded_total, rel=0.05
        )

    def test_edp_at_pixel_rate_not_burst(self):
        """Bypass-only drains at the pixel-update rate: the link is
        busy essentially the whole new-frame window."""
        result = run(frames=4, fps=60.0)
        busy = sum(
            s.duration for s in result.timeline if s.edp_rate > 0
        )
        assert busy / result.duration > 0.75


class TestEnergy:
    def _reduction(self, resolution, fps):
        config = skylake_tablet(resolution)
        frames = AnalyticContentModel().frames(resolution, 24)
        model = PowerModel()
        base = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, fps
            )
        )
        bypass = model.report(
            FrameWindowSimulator(
                config, FrameBufferBypassScheme()
            ).run(frames, fps)
        )
        return 1 - bypass.average_power_mw / base.average_power_mw

    def test_fhd30_near_paper_31_percent(self):
        assert self._reduction(FHD, 30.0) == pytest.approx(
            0.31, abs=0.06
        )

    def test_bypass_beats_burst_at_fhd(self):
        """Fig. 9's ordering: bypass (31%) > burst (23%) at FHD."""
        from repro.core.bursting import FrameBurstingScheme

        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 24)
        model = PowerModel()
        bypass = model.report(
            FrameWindowSimulator(
                config, FrameBufferBypassScheme()
            ).run(frames, 30.0)
        )
        burst = model.report(
            FrameWindowSimulator(
                config.with_drfb(), FrameBurstingScheme()
            ).run(frames, 30.0)
        )
        assert bypass.average_power_mw < burst.average_power_mw

    def test_fig14a_local_playback_over_40_percent(self):
        """Fig. 14a: >40% for high-resolution local playback."""
        assert self._reduction(UHD_5K, 60.0) > 0.40

    def test_no_deadline_misses(self):
        for resolution in (FHD, UHD_4K, UHD_5K):
            result = run(resolution=resolution, frames=4, fps=60.0)
            assert result.stats.deadline_misses == 0
