"""The Sec. 4.5 generalization: capture with producer-side staging."""

import pytest

from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core.capture import (
    BurstCaptureScheme,
    ConventionalCaptureScheme,
)
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PlatformExtras, PowerModel
from repro.soc.cstates import PackageCState
from repro.video.frames import FrameType
from repro.video.source import FrameDescriptor


def capture_frames(resolution, count=16, encode_ratio=30.0):
    raw = float(resolution.frame_bytes())
    return [
        FrameDescriptor(
            index=i,
            frame_type=FrameType.I,
            encoded_bytes=raw / encode_ratio,
            decoded_bytes=raw,
        )
        for i in range(count)
    ]


def run(scheme, resolution=FHD, fps=30.0, with_drfb=False):
    config = skylake_tablet(resolution)
    if with_drfb:
        config = config.with_drfb()
    return FrameWindowSimulator(config, scheme).run(
        capture_frames(resolution), fps
    )


class TestConventionalCapture:
    def test_raw_frame_round_trips_dram(self):
        result = run(ConventionalCaptureScheme(), fps=30.0)
        raw = FHD.frame_bytes()
        per_frame = (
            result.timeline.dram_total_bytes
            / result.stats.new_frame_windows
        )
        # ISP write + encoder read + encoded out/in + preview fetch.
        assert per_frame > 2.5 * raw

    def test_preview_streams_live(self):
        result = run(ConventionalCaptureScheme(), fps=30.0)
        assert result.timeline.edp_bytes > 0

    def test_no_deadline_misses(self):
        result = run(ConventionalCaptureScheme(), fps=30.0)
        assert result.stats.deadline_misses == 0


class TestBurstCapture:
    def test_raw_frames_never_touch_dram(self):
        result = run(BurstCaptureScheme(), with_drfb=True)
        raw = FHD.frame_bytes()
        per_frame = (
            result.timeline.dram_total_bytes
            / result.stats.new_frame_windows
        )
        # Only the encoded output lands in DRAM.
        assert per_frame < 0.1 * raw

    def test_reaches_c9(self):
        result = run(BurstCaptureScheme(), with_drfb=True)
        assert result.residency_fractions().get(
            PackageCState.C9, 0
        ) > 0.5

    def test_preview_bursts(self):
        result = run(BurstCaptureScheme(), with_drfb=True)
        assert result.stats.burst_windows == (
            result.stats.new_frame_windows
        )
        assert result.stats.bypassed_windows == (
            result.stats.new_frame_windows
        )

    def test_no_deadline_misses_at_4k(self):
        result = run(
            BurstCaptureScheme(), resolution=UHD_4K, with_drfb=True
        )
        assert result.stats.deadline_misses == 0


class TestEnergy:
    def _reduction(self, resolution, fps=30.0):
        model = PowerModel(
            extras=PlatformExtras(
                streaming=False, local_playback=True
            )
        )
        base = model.report(
            run(ConventionalCaptureScheme(), resolution, fps)
        )
        burst = model.report(
            run(BurstCaptureScheme(), resolution, fps,
                with_drfb=True)
        )
        return 1 - burst.average_power_mw / base.average_power_mw

    def test_generalization_saves_at_fhd(self):
        """The Sec. 4.5 claim: the same mechanism pays off with the
        remote memory at the producer."""
        assert self._reduction(FHD) > 0.25

    def test_savings_hold_at_4k(self):
        assert self._reduction(UHD_4K) > 0.25
