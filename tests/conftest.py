"""Shared fixtures for the BurstLink reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import FHD, UHD_4K, SystemConfig, skylake_tablet
from repro.video.source import AnalyticContentModel, FrameDescriptor


@pytest.fixture
def fhd_config() -> SystemConfig:
    """The paper's baseline platform with an FHD 60 Hz panel."""
    return skylake_tablet(FHD)


@pytest.fixture
def uhd4k_config() -> SystemConfig:
    """The baseline platform with a 4K 60 Hz panel."""
    return skylake_tablet(UHD_4K)


@pytest.fixture
def fhd_frames() -> list[FrameDescriptor]:
    """A short deterministic FHD stream."""
    return AnalyticContentModel().frames(FHD, 24, seed=7)


@pytest.fixture
def small_clip() -> list[np.ndarray]:
    """Eight 96x64 frames with smooth motion, for the functional codec."""
    width, height = 96, 64
    ys, xs = np.mgrid[0:height, 0:width]
    clip = []
    for t in range(8):
        base = (xs * 2 + ys * 3 + 5 * t) % 256
        blob = 80.0 * np.exp(
            -(((xs - 20 - 3 * t) ** 2 + (ys - 30) ** 2) / 150.0)
        )
        frame = np.stack(
            [base, 255 - base, (base * 0.5 + 64)], axis=-1
        ) + blob[..., None]
        clip.append(np.clip(frame, 0, 255).astype(np.uint8))
    return clip
