"""The exception hierarchy."""

import pytest

from repro.errors import (
    BufferOverflowError,
    BufferUnderflowError,
    CalibrationError,
    CodecError,
    ConfigurationError,
    DataPathError,
    DeadlineMissError,
    PowerStateError,
    ReproError,
    SimulationError,
)

ALL_ERRORS = (
    ConfigurationError,
    PowerStateError,
    DataPathError,
    BufferOverflowError,
    BufferUnderflowError,
    CodecError,
    DeadlineMissError,
    SimulationError,
    CalibrationError,
)


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(error):
    assert issubclass(error, ReproError)


def test_buffer_errors_are_datapath_errors():
    assert issubclass(BufferOverflowError, DataPathError)
    assert issubclass(BufferUnderflowError, DataPathError)


def test_catching_the_family():
    with pytest.raises(ReproError):
        raise CodecError("truncated bitstream")


def test_errors_carry_messages():
    try:
        raise DeadlineMissError("window 3 missed")
    except ReproError as caught:
        assert "window 3" in str(caught)
