"""Traffic metering over time intervals."""

import pytest

from repro.dram.bandwidth import TrafficMeter, TrafficSample
from repro.errors import DataPathError


class TestSample:
    def test_duration(self):
        sample = TrafficSample(1.0, 3.0, read_bytes=100)
        assert sample.duration == 2.0

    def test_reversed_interval_rejected(self):
        with pytest.raises(DataPathError):
            TrafficSample(3.0, 1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(DataPathError):
            TrafficSample(0, 1, read_bytes=-1)

    def test_overlap(self):
        sample = TrafficSample(1.0, 3.0)
        assert sample.overlap(0.0, 2.0) == 1.0
        assert sample.overlap(2.5, 10.0) == 0.5
        assert sample.overlap(5.0, 6.0) == 0.0


class TestMeter:
    def test_totals(self):
        meter = TrafficMeter()
        meter.log_transfer(0, 1, read_bytes=100, write_bytes=50)
        meter.log_transfer(1, 2, read_bytes=25)
        assert meter.total_read_bytes == 125
        assert meter.total_write_bytes == 50
        assert meter.total_bytes == 175

    def test_samples_kept_sorted(self):
        meter = TrafficMeter()
        meter.log_transfer(2, 3, read_bytes=1)
        meter.log_transfer(0, 1, read_bytes=2)
        assert [s.start for s in meter.samples] == [0, 2]

    def test_interval_proration(self):
        meter = TrafficMeter()
        meter.log_transfer(0.0, 2.0, read_bytes=100)
        read, write = meter.bytes_in(0.0, 1.0)
        assert read == pytest.approx(50.0)
        assert write == 0.0

    def test_instantaneous_sample(self):
        meter = TrafficMeter()
        meter.log(TrafficSample(1.0, 1.0, write_bytes=64))
        read, write = meter.bytes_in(0.5, 1.5)
        assert write == 64
        read, write = meter.bytes_in(2.0, 3.0)
        assert write == 0

    def test_average_bandwidth(self):
        meter = TrafficMeter()
        meter.log_transfer(0.0, 1.0, read_bytes=1e9)
        read_bw, write_bw = meter.average_bandwidth(0.0, 2.0)
        assert read_bw == pytest.approx(0.5e9)

    def test_reversed_query_rejected(self):
        with pytest.raises(DataPathError):
            TrafficMeter().bytes_in(2.0, 1.0)

    def test_zero_length_bandwidth_query_rejected(self):
        with pytest.raises(DataPathError):
            TrafficMeter().average_bandwidth(1.0, 1.0)

    def test_reset(self):
        meter = TrafficMeter()
        meter.log_transfer(0, 1, read_bytes=1)
        meter.reset()
        assert meter.total_bytes == 0
        assert meter.samples == []
