"""DRAM power states and their package C-state coupling."""

import pytest

from repro.dram.states import DramPowerState, dram_state_for_package
from repro.soc.cstates import PackageCState


class TestStates:
    def test_only_active_serves_requests(self):
        assert DramPowerState.ACTIVE.can_serve_requests
        assert not DramPowerState.FAST_POWER_DOWN.can_serve_requests
        assert not DramPowerState.SELF_REFRESH.can_serve_requests


class TestPackageCoupling:
    """Sec. 5.2: DRAM active in C0/C2, self-refresh in deeper states."""

    @pytest.mark.parametrize(
        "state", [PackageCState.C0, PackageCState.C2]
    )
    def test_active_in_shallow_states(self, state):
        assert dram_state_for_package(state) is DramPowerState.ACTIVE

    @pytest.mark.parametrize(
        "state",
        [
            PackageCState.C3,
            PackageCState.C6,
            PackageCState.C7,
            PackageCState.C7_PRIME,
            PackageCState.C8,
            PackageCState.C9,
            PackageCState.C10,
        ],
    )
    def test_self_refresh_in_deep_states(self, state):
        assert dram_state_for_package(state) is (
            DramPowerState.SELF_REFRESH
        )
