"""The two-part DRAM power model (paper Sec. 5.2)."""

import pytest

from repro.dram.power import DramPowerModel
from repro.dram.states import DramPowerState
from repro.errors import ConfigurationError
from repro.units import gb_per_s, mib


@pytest.fixture
def model():
    return DramPowerModel()


class TestBackground:
    def test_state_ordering(self, model):
        """Active > fast power-down > self-refresh, always."""
        assert (
            model.background_power(DramPowerState.ACTIVE)
            > model.background_power(DramPowerState.FAST_POWER_DOWN)
            > model.background_power(DramPowerState.SELF_REFRESH)
        )

    def test_background_energy_weighting(self, model):
        residencies = {
            DramPowerState.ACTIVE: 0.2,
            DramPowerState.SELF_REFRESH: 0.8,
        }
        expected = (
            0.2 * model.background_power(DramPowerState.ACTIVE)
            + 0.8 * model.background_power(DramPowerState.SELF_REFRESH)
        )
        assert model.background_energy(residencies) == pytest.approx(
            expected
        )

    def test_background_energy_rejects_negative_time(self, model):
        with pytest.raises(ConfigurationError):
            model.background_energy({DramPowerState.ACTIVE: -1.0})

    def test_missing_state_rejected(self):
        with pytest.raises(ConfigurationError):
            DramPowerModel(background_mw={DramPowerState.ACTIVE: 100.0})

    def test_negative_background_rejected(self):
        background = dict(DramPowerModel().background_mw)
        background[DramPowerState.ACTIVE] = -1.0
        with pytest.raises(ConfigurationError):
            DramPowerModel(background_mw=background)


class TestOperating:
    def test_linear_in_bandwidth(self, model):
        assert model.operating_power(gb_per_s(2), 0) == pytest.approx(
            2 * model.operating_power(gb_per_s(1), 0)
        )

    def test_writes_cost_more_than_reads(self, model):
        assert model.operating_power(0, gb_per_s(1)) > (
            model.operating_power(gb_per_s(1), 0)
        )

    def test_zero_bandwidth_is_free(self, model):
        assert model.operating_power(0, 0) == 0.0

    def test_negative_bandwidth_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.operating_power(-1, 0)

    def test_negative_slope_rejected(self):
        with pytest.raises(ConfigurationError):
            DramPowerModel(read_mw_per_gbs=-1)


class TestTotalPower:
    def test_active_total(self, model):
        total = model.power(
            DramPowerState.ACTIVE, read_bw=gb_per_s(1)
        )
        assert total == pytest.approx(
            model.background_power(DramPowerState.ACTIVE)
            + model.read_mw_per_gbs
        )

    def test_traffic_in_self_refresh_is_a_bug(self, model):
        with pytest.raises(ConfigurationError):
            model.power(DramPowerState.SELF_REFRESH, read_bw=1.0)

    def test_idle_self_refresh_allowed(self, model):
        assert model.power(DramPowerState.SELF_REFRESH) == (
            model.background_power(DramPowerState.SELF_REFRESH)
        )


class TestTrafficEnergy:
    def test_energy_independent_of_rate(self, model):
        """Moving N bytes costs the same energy fast or slow (power is
        linear in bandwidth, so time cancels)."""
        size = mib(24)
        fast = model.operating_power(gb_per_s(4), 0) * (
            size / gb_per_s(4)
        )
        slow = model.operating_power(gb_per_s(1), 0) * (
            size / gb_per_s(1)
        )
        assert fast == pytest.approx(slow)
        assert model.traffic_energy(size, 0) == pytest.approx(fast)

    def test_traffic_energy_splits_read_write(self, model):
        combined = model.traffic_energy(mib(1), mib(1))
        assert combined == pytest.approx(
            model.traffic_energy(mib(1), 0)
            + model.traffic_energy(0, mib(1))
        )

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.traffic_energy(-1, 0)
