"""Frame-buffer region management inside DRAM."""

import pytest

from repro.dram.framebuffer import FrameBufferManager, FrameBufferRegion
from repro.errors import (
    BufferOverflowError,
    BufferUnderflowError,
    ConfigurationError,
    DataPathError,
)
from repro.units import gib, mib


@pytest.fixture
def manager():
    return FrameBufferManager(dram_capacity=gib(8))


class TestRegion:
    def test_capacity(self):
        region = FrameBufferRegion("video", mib(24), slots=2)
        assert region.capacity == mib(48)

    def test_slot_lifecycle(self):
        region = FrameBufferRegion("video", mib(24), slots=2)
        first = region.acquire_slot()
        second = region.acquire_slot()
        assert {first, second} == {0, 1}
        assert region.free_slots == 0
        region.release_slot(first)
        assert region.free_slots == 1

    def test_overflow_when_full(self):
        region = FrameBufferRegion("video", mib(1), slots=1)
        region.acquire_slot()
        with pytest.raises(BufferOverflowError):
            region.acquire_slot()

    def test_double_release(self):
        region = FrameBufferRegion("video", mib(1), slots=1)
        index = region.acquire_slot()
        region.release_slot(index)
        with pytest.raises(BufferUnderflowError):
            region.release_slot(index)

    def test_release_out_of_range(self):
        region = FrameBufferRegion("video", mib(1), slots=1)
        with pytest.raises(DataPathError):
            region.release_slot(5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            FrameBufferRegion("bad", 0)
        with pytest.raises(ConfigurationError):
            FrameBufferRegion("bad", 10, slots=0)


class TestAllocation:
    def test_allocate_and_lookup(self, manager):
        region = manager.allocate("video", mib(24))
        assert manager.region("video") is region
        assert manager.allocated_bytes == mib(48)

    def test_duplicate_name(self, manager):
        manager.allocate("video", mib(24))
        with pytest.raises(ConfigurationError):
            manager.allocate("video", mib(24))

    def test_capacity_budget_enforced(self):
        manager = FrameBufferManager(dram_capacity=mib(40))
        with pytest.raises(BufferOverflowError):
            manager.allocate("video", mib(24))  # double buffer = 48 MB

    def test_free(self, manager):
        manager.allocate("video", mib(24))
        manager.free("video")
        assert manager.allocated_bytes == 0

    def test_free_unknown(self, manager):
        with pytest.raises(ConfigurationError):
            manager.free("video")

    def test_conventional_multi_plane_layout(self, manager):
        """The Sec. 3 example: four planes, each with its own buffer."""
        for name in ("background", "video", "gui", "cursor"):
            manager.allocate(name, mib(6), slots=2)
        assert manager.allocated_bytes == 4 * mib(12)


class TestTraffic:
    def test_write_read_accounting(self, manager):
        manager.allocate("video", mib(24))
        manager.write("video", mib(24))
        manager.read("video", mib(24))
        assert manager.write_bytes == mib(24)
        assert manager.read_bytes == mib(24)
        assert manager.total_traffic == mib(48)

    def test_write_larger_than_slot(self, manager):
        manager.allocate("video", mib(24))
        with pytest.raises(BufferOverflowError):
            manager.write("video", mib(25))

    def test_read_larger_than_region(self, manager):
        manager.allocate("video", mib(24))
        with pytest.raises(BufferUnderflowError):
            manager.read("video", mib(49))

    def test_negative_sizes_rejected(self, manager):
        manager.allocate("video", mib(24))
        with pytest.raises(DataPathError):
            manager.write("video", -1)
        with pytest.raises(DataPathError):
            manager.read("video", -1)

    def test_unknown_region_traffic(self, manager):
        with pytest.raises(ConfigurationError):
            manager.write("nope", 1)

    def test_reset_traffic_keeps_allocations(self, manager):
        manager.allocate("video", mib(24))
        manager.write("video", mib(1))
        manager.reset_traffic()
        assert manager.total_traffic == 0
        assert "video" in manager.regions
