"""Text-art timeline rendering."""

import pytest

from repro.analysis.visualize import (
    render_lanes,
    render_residency_bars,
    render_strip,
    render_window_report,
)
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import SimulationError
from repro.pipeline import (
    ConventionalScheme,
    FrameWindowSimulator,
    Timeline,
)
from repro.video.source import AnalyticContentModel


@pytest.fixture(scope="module")
def burstlink_run():
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, 4)
    return FrameWindowSimulator(config, BurstLinkScheme()).run(
        frames, 30.0
    )


@pytest.fixture(scope="module")
def baseline_run():
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, 4)
    return FrameWindowSimulator(config, ConventionalScheme()).run(
        frames, 30.0
    )


class TestStrip:
    def test_bounded_width(self, burstlink_run):
        strip = render_strip(burstlink_run.timeline, width=60)
        # Width is approximate (one rounded cell per segment) but must
        # stay near the requested size.
        assert 40 <= len(strip) <= 140

    def test_labels_appear(self, burstlink_run):
        strip = render_strip(burstlink_run.timeline, width=100)
        assert "C9" in strip

    def test_delimited(self, burstlink_run):
        strip = render_strip(burstlink_run.timeline)
        assert strip.startswith("|") and strip.endswith("|")

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            render_strip(Timeline())

    def test_tiny_width_rejected(self, burstlink_run):
        with pytest.raises(SimulationError):
            render_strip(burstlink_run.timeline, width=4)


class TestLanes:
    def test_one_lane_per_state(self, baseline_run):
        lanes = render_lanes(baseline_run.timeline)
        lines = lanes.splitlines()
        assert [line.split()[0] for line in lines] == [
            "C0", "C2", "C8",
        ]

    def test_every_column_covered(self, baseline_run):
        """Time is fully covered: every column belongs to at least one
        lane (short segments can share a column, so lanes may overlap
        at boundaries but never leave gaps)."""
        lanes = render_lanes(baseline_run.timeline, width=60)
        rows = [
            line.split("|")[1] for line in lanes.splitlines()
        ]
        for column in range(60):
            marks = sum(1 for row in rows if row[column] != " ")
            assert marks >= 1

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            render_lanes(Timeline())


class TestResidencyBars:
    def test_percentages_shown(self, burstlink_run):
        bars = render_residency_bars(burstlink_run.timeline)
        assert "%" in bars
        assert "C9" in bars

    def test_dominant_state_longest_bar(self, burstlink_run):
        bars = render_residency_bars(burstlink_run.timeline, width=40)
        lengths = {
            line.split()[0]: len(line.split("|")[1])
            for line in bars.splitlines()
        }
        assert max(lengths, key=lengths.get) == "C9"


class TestWindowReport:
    def test_one_line_per_window(self, burstlink_run):
        report = render_window_report(
            burstlink_run.timeline, 1 / 60
        )
        assert len(report.splitlines()) == (
            burstlink_run.stats.windows
        )

    def test_fig7_shape_visible(self, burstlink_run):
        report = render_window_report(
            burstlink_run.timeline, 1 / 60
        )
        first = report.splitlines()[0]
        second = report.splitlines()[1]
        assert "C7" in first and "C9" in first
        assert "C7" not in second  # the repeat window is pure C9

    def test_bad_window_rejected(self, burstlink_run):
        with pytest.raises(SimulationError):
            render_window_report(burstlink_run.timeline, 0)
