"""Disk cache format 3: plan payloads and backward-compatible reads."""

import json

import pytest

from repro.analysis.runner import (
    SimulationCache,
    cache_disabled,
    plan_from_payload,
    plan_to_payload,
    run_from_payload,
    run_to_payload,
)
from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.batch import CachedPlan, PlanMatrix
from repro.display.timing import WindowKind, WindowPlan
from repro.pipeline.sim import WindowContext
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel


def _plan():
    """One real planned window as a CachedPlan."""
    config = skylake_tablet(FHD)
    frame = AnalyticContentModel().frames(FHD, 1, seed=3)[0]
    window = WindowPlan(
        index=0, start=0.0, duration=1 / 60.0,
        kind=WindowKind.NEW_FRAME, frame_index=0,
    )
    result = ConventionalScheme().plan_window(
        WindowContext(
            config=config, window=window, frame=frame, vr=None,
            initial_state=PackageCState.C0,
        )
    )
    matrix = PlanMatrix.from_timeline(result.timeline, "new_frame")
    return CachedPlan(
        start=window.start,
        result=result,
        digest=matrix.digest("new_frame", window.duration),
        final_state=result.timeline.segments[-1].state,
    )


class TestPlanPayload:
    def test_round_trip_is_exact(self):
        plan = _plan()
        payload = json.loads(json.dumps(plan_to_payload(plan)))
        rebuilt = plan_from_payload(payload)
        assert rebuilt.start == plan.start
        assert rebuilt.final_state is plan.final_state
        assert list(rebuilt.result.timeline) == list(
            plan.result.timeline
        )
        assert rebuilt.result.deadline_missed == (
            plan.result.deadline_missed
        )
        assert rebuilt.result.used_psr == plan.result.used_psr
        assert rebuilt.digest.buckets == plan.digest.buckets
        assert rebuilt.digest.window_counts == (
            plan.digest.window_counts
        )
        assert rebuilt.digest.end == plan.digest.end

    def test_wrong_format_rejected(self):
        payload = plan_to_payload(_plan())
        payload["format"] = 2
        with pytest.raises(ConfigurationError):
            plan_from_payload(payload)

    def test_run_payload_rejected_as_plan(self):
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(
                AnalyticContentModel().frames(FHD, 4, seed=1), 30.0
            )
        with pytest.raises(ConfigurationError):
            plan_from_payload(run_to_payload(run))


class TestFormatCompatibility:
    def test_run_payloads_write_format_4(self):
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(
                AnalyticContentModel().frames(FHD, 4, seed=1), 30.0
            )
        assert run_to_payload(run)["format"] == 4

    def test_older_format_runs_still_read(self):
        """A cache directory written before the bump stays warm: format
        4 only appends content-attribute columns, which older payloads
        read back as zero — exactly what a content-agnostic run wrote."""
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(
                AnalyticContentModel().frames(FHD, 4, seed=1), 30.0
            )
        for older in (2, 3):
            payload = json.loads(json.dumps(run_to_payload(run)))
            payload["format"] = older
            for record in payload["segments"]:
                del record[14:]
            rebuilt = run_from_payload(payload)
            assert rebuilt.stats == run.stats
            assert list(rebuilt.timeline) == list(run.timeline)

    def test_format_1_runs_rejected(self):
        with cache_disabled():
            run = FrameWindowSimulator(
                skylake_tablet(FHD), ConventionalScheme()
            ).run(
                AnalyticContentModel().frames(FHD, 4, seed=1), 30.0
            )
        payload = run_to_payload(run)
        payload["format"] = 1
        with pytest.raises(ConfigurationError):
            run_from_payload(payload)


class TestPlanDiskLayer:
    def test_store_and_cold_load(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        plan = _plan()
        cache.store_plan("deadbeef", plan)
        assert (tmp_path / "deadbeef.plan.json").exists()
        cold = SimulationCache(directory=tmp_path)
        loaded = cold.load_plan("deadbeef")
        assert loaded is not None
        assert cold.stats.plan_disk_hits == 1
        assert list(loaded.result.timeline) == list(
            plan.result.timeline
        )

    def test_corrupt_plan_reads_as_miss(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        path = tmp_path / "deadbeef.plan.json"
        path.write_text('{"format": 3, "kind": "pl', "utf-8")
        assert cache.load_plan("deadbeef") is None
        assert cache.stats.plan_misses == 1
        # The corrupt file was dropped so the next store rewrites it.
        assert not path.exists()

    def test_plan_lru_eviction(self):
        cache = SimulationCache(capacity=1)
        assert cache.plan_capacity == 8
        plan = _plan()
        for index in range(10):
            cache.store_plan(f"key{index}", plan)
        assert cache.load_plan("key0") is None
        assert cache.load_plan("key9") is not None

    def test_loads_are_defensive_copies(self):
        cache = SimulationCache()
        cache.store_plan("k", _plan())
        first = cache.load_plan("k")
        first.digest.buckets.clear()
        second = cache.load_plan("k")
        assert second.digest.buckets

    def test_clear_drops_plans(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        cache.store_plan("k", _plan())
        cache.clear(disk=True)
        assert cache.load_plan("k") is None
        assert not list(tmp_path.glob("*.plan.json"))
