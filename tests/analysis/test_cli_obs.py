"""The observability CLI surface: profile, metrics, trace exports,
the validate drift gate, and the bench-all history gate."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestProfileCommand:
    def test_text_report(self, capsys):
        code, out = run_cli(capsys, "profile", "burstlink")
        assert code == 0
        assert "Energy attribution" in out
        assert "reconciliation:" in out and "[OK]" in out

    def test_json_report(self, capsys):
        code, out = run_cli(capsys, "profile", "conventional", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["exhibit"] == "conventional"
        assert payload["reconciliation"]["ok"] is True
        # The acceptance bar: ledger vs Table 2 aggregate under 0.1%.
        assert payload["reconciliation"]["total_rel_err"] < 1e-3

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["profile", "nope"])
        assert excinfo.value.code != 0


class TestMetricsCommand:
    def test_prometheus_exposition(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "--exhibit", "conventional", "--prom"
        )
        assert code == 0
        assert "# TYPE repro_sim_windows_total counter" in out
        assert "repro_sim_window_s_bucket" in out
        assert 'le="+Inf"' in out

    def test_json_snapshot(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "--exhibit", "burstlink", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["sim.windows"]["type"] == "counter"

    def test_table_default(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "--exhibit", "conventional"
        )
        assert code == 0
        assert "sim.windows" in out


class TestTraceExports:
    def test_chrome_export_is_loadable(self, capsys, tmp_path):
        target = tmp_path / "chrome.json"
        code, out = run_cli(
            capsys, "trace", "conventional", "--chrome", str(target)
        )
        assert code == 0
        assert "perfetto" in out.lower()
        payload = json.loads(target.read_text(encoding="utf-8"))
        stamps = [
            e["ts"] for e in payload["traceEvents"]
            if e.get("ph") != "M"
        ]
        assert stamps and stamps == sorted(stamps)

    def test_unknown_exhibit_exits_nonzero_with_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "fig99"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        # The error must name the valid exhibits.
        for exhibit in ("burstlink", "conventional", "vr"):
            assert exhibit in err


class TestValidateGate:
    def test_clean_tree_passes(self, capsys):
        code, out = run_cli(capsys, "validate", "--section", "table2")
        assert code == 0
        assert "drift gate: PASS" in out

    def test_json_payload(self, capsys):
        code, out = run_cli(
            capsys, "validate", "--section", "fig01", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["drift"]["anchors"]

    def test_full_run_includes_accuracy_table(self, capsys):
        code, out = run_cli(capsys, "validate", "--json")
        assert code == 0
        payload = json.loads(out)
        assert payload["validation"]["mean_accuracy"] > 0.9
        assert len(payload["drift"]["anchors"]) == 19


class TestBenchAllGate:
    def test_record_then_check(self, capsys, tmp_path):
        history = tmp_path / "history"
        code, out = run_cli(
            capsys, "bench-all", "--only", "table2", "--no-cache-dir",
            "--record", "--history-dir", str(history),
        )
        assert code == 0
        assert "recorded" in out
        assert list(history.glob("BENCH_*.json"))
        code, out = run_cli(
            capsys, "bench-all", "--only", "table2", "--no-cache-dir",
            "--check", "--history-dir", str(history),
        )
        # A back-to-back re-run of the same exhibit stays well inside
        # the 15% band (and would exit 1 with a gate message if not).
        assert "bench gate:" in out

    def test_check_without_baseline_errors(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench-all", "--only", "table2", "--no-cache-dir",
            "--check", "--history-dir", str(tmp_path / "empty"),
        )
        assert code == 1
        assert "no bench baseline" in out


class TestObsDiffCommand:
    def _profile(self, path, total):
        path.write_text(
            json.dumps({"ledger": {"total_mj": total}}),
            encoding="utf-8",
        )
        return str(path)

    def test_identical_profiles_exit_zero(self, capsys, tmp_path):
        a = self._profile(tmp_path / "a.json", 10.0)
        b = self._profile(tmp_path / "b.json", 10.0)
        code, out = run_cli(capsys, "obs", "diff", a, b)
        assert code == 0
        assert "no drift" in out

    def test_drifted_profiles_exit_one_with_json(self, capsys, tmp_path):
        a = self._profile(tmp_path / "a.json", 10.0)
        b = self._profile(tmp_path / "b.json", 11.0)
        code, out = run_cli(capsys, "obs", "diff", a, b, "--json")
        assert code == 1
        payload = json.loads(out)
        assert payload["ok"] is False
        assert payload["deltas"]["ledger.total_mj"]["delta"] == 1.0


class TestParallelTraceSmoke:
    """End to end: a parallel traced regeneration diffs clean against
    the sequential one, and the merged trace converts to Chrome JSON
    with one thread track per worker."""

    def test_jobs_trace_matches_sequential(self, capsys, tmp_path):
        merged = tmp_path / "merged.jsonl"
        sequential = tmp_path / "seq.jsonl"
        code = main(
            [
                "figures", "--out", str(tmp_path / "figs"),
                "--jobs", "2", "--trace", str(merged), "--progress",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "wrote trace" in captured.out
        # Live worker heartbeats rendered on stderr.
        assert "done in" in captured.err
        code = main(
            [
                "figures", "--out", str(tmp_path / "figs-seq"),
                "--trace", str(sequential),
            ]
        )
        capsys.readouterr()
        assert code == 0

        code, out = run_cli(
            capsys, "obs", "diff", str(merged), str(sequential)
        )
        assert code == 0
        assert "no structural drift" in out

        # A perturbed trace (one span dropped) must fail the diff.
        lines = merged.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            event = json.loads(line)
            if event["kind"] == "B" and event["name"] == "sim.window":
                del lines[index]
                break
        perturbed = tmp_path / "perturbed.jsonl"
        perturbed.write_text(
            "\n".join(lines) + "\n", encoding="utf-8"
        )
        code, out = run_cli(
            capsys, "obs", "diff", str(perturbed), str(sequential)
        )
        assert code == 1
        assert "sim.window" in out

        # Chrome conversion: one track per worker plus the main track.
        chrome = tmp_path / "chrome.json"
        code, out = run_cli(
            capsys, "obs", "chrome", str(merged), str(chrome)
        )
        assert code == 0
        payload = json.loads(chrome.read_text(encoding="utf-8"))
        names = {
            record["args"]["name"]
            for record in payload["traceEvents"]
            if record["ph"] == "M" and record["name"] == "thread_name"
        }
        assert {"main", "worker 1", "worker 2"} <= names


class TestFiguresFormats:
    def test_vega_emits_spec_and_csv_for_every_exhibit(
        self, capsys, tmp_path
    ):
        from repro.analysis.figures import figure_registry
        from repro.analysis.vega import spec_problems

        out = tmp_path / "specs"
        code, text = run_cli(
            capsys, "figures", "--format", "vega", "--out", str(out)
        )
        assert code == 0
        assert f"{len(figure_registry())} figures" in text
        for name in figure_registry():
            spec = json.loads(
                (out / f"{name}.vl.json").read_text(encoding="utf-8")
            )
            assert spec_problems(spec) == [], name
            assert (out / f"{name}.csv").exists()

    def test_default_svg_output_unchanged(self, capsys, tmp_path):
        code, text = run_cli(
            capsys, "figures", "--out", str(tmp_path / "figs")
        )
        assert code == 0
        assert "6 figures" in text

    def test_svg_format_rejects_multi_seed(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "--seeds", "2",
            "--out", str(tmp_path / "figs"),
        )
        assert code == 1
        assert "error:" in out and "--format vega" in out


class TestStatsRunCommand:
    def test_json_payload(self, capsys, tmp_path):
        out = tmp_path / "specs"
        code, text = run_cli(
            capsys, "stats", "run", "--figure", "fig04",
            "--figure", "standby", "--seeds", "2",
            "--out", str(out), "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["seeds"] == 2
        est = payload["metrics"]["fig04.browsing"]
        assert est["n"] == 2
        assert est["lo"] <= est["mean"] <= est["hi"]
        assert (
            "standby.burstlink.power_mw vs "
            "standby.conventional.power_mw"
        ) in payload["effect_sizes"]
        # Replication task labels carry cache counters.
        assert "fig04@s0" in payload["tasks"]
        assert {"cache_hits", "cache_misses"} <= set(
            payload["tasks"]["fig04@s0"]
        )
        # Interval artifacts land next to each other.
        spec = json.loads(
            (out / "fig04.vl.json").read_text(encoding="utf-8")
        )
        assert "layer" in spec
        header = (out / "fig04.csv").read_text(
            encoding="utf-8"
        ).splitlines()[0]
        assert header.endswith("value_lo,value_hi,value_sd,seeds")

    def test_text_report(self, capsys):
        code, text = run_cli(
            capsys, "stats", "run", "--figure", "fig04",
            "--seeds", "2",
        )
        assert code == 0
        assert "replication: 1 exhibits x 2 seeds" in text
        assert "fig04.browsing" in text


class TestValidateIntervalMode:
    def test_multi_seed_section_passes(self, capsys):
        code, text = run_cli(
            capsys, "validate", "--section", "fig04", "--seeds", "2"
        )
        assert code == 0
        assert "CI overlap over 2 seeds" in text

    def test_multi_seed_json_reports_ci(self, capsys):
        code, text = run_cli(
            capsys, "validate", "--section", "fig04",
            "--seeds", "2", "--json",
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["drift"]["mode"] == "interval"
        anchor = payload["drift"]["anchors"][0]
        assert anchor["ci"]["n"] == 2
        assert {"lo", "hi", "tolerance"} <= set(anchor)

    def test_single_seed_json_stays_point_mode(self, capsys):
        code, text = run_cli(
            capsys, "validate", "--section", "fig04", "--json"
        )
        assert code == 0
        payload = json.loads(text)
        assert payload["drift"]["mode"] == "point"
        assert "ci" not in payload["drift"]["anchors"][0]


class TestBenchAllRepeat:
    def test_repeat_records_ci_half_widths(self, capsys, tmp_path):
        history = tmp_path / "history"
        code, text = run_cli(
            capsys, "bench-all", "--only", "fig04", "--no-cache-dir",
            "--record", "--repeat", "2",
            "--history-dir", str(history),
        )
        assert code == 0
        assert "2 repeats" in text
        snapshot = json.loads(
            next(history.glob("BENCH_*.json")).read_text(
                encoding="utf-8"
            )
        )
        assert snapshot["repeat"] == 2
        assert "total_wall_ci_half_s" in snapshot
        assert "wall_ci_half_s" in snapshot["exhibits"]["fig04"]

    def test_repeat_must_be_positive(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "bench-all", "--only", "fig04", "--no-cache-dir",
            "--record", "--repeat", "0",
            "--history-dir", str(tmp_path / "h"),
        )
        assert code == 1
        assert "error:" in out and "--repeat" in out
