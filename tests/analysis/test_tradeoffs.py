"""Design-choice ablations."""

import pytest

from repro.analysis.tradeoffs import (
    AblationResult,
    drfb_cost_benefit,
    sweep_dc_buffer,
    sweep_deadline_utilization,
)
from repro.config import FHD, PLANAR_RESOLUTIONS, UHD_4K
from repro.errors import ConfigurationError


class TestDcBufferSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep_dc_buffer(UHD_4K, buffer_mib=(0.25, 1.0, 4.0))

    def test_smaller_buffer_means_more_wakes(self, result):
        wakes = [p.vd_wakes_per_frame for p in result.points]
        assert wakes[0] > wakes[-1]

    def test_power_spread_is_modest(self, result):
        """The paper's implicit claim: the existing ~1 MiB DC buffer is
        fine; the size is not a first-order energy knob."""
        assert result.spread_mw() < 0.05 * result.best().burstlink_mw

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_dc_buffer(UHD_4K, buffer_mib=())


class TestDeadlineUtilizationSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return sweep_deadline_utilization(FHD)

    def test_sweep_produces_all_points(self, result):
        assert len(result.points) == 5

    def test_stretching_beats_racing_in_c7(self, result):
        """Racing in C7 (tiny utilization) wastes the burst headroom;
        the calibrated 0.38 target must not be the worst point."""
        by_value = {p.value: p.burstlink_mw for p in result.points}
        worst = max(by_value.values())
        assert by_value[0.38] < worst

    def test_best_is_reported(self, result):
        assert result.best().burstlink_mw == min(
            p.burstlink_mw for p in result.points
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_deadline_utilization(FHD, utilizations=())


class TestDrfbCostBenefit:
    @pytest.fixture(scope="class")
    def results(self):
        return drfb_cost_benefit(PLANAR_RESOLUTIONS)

    def test_savings_grow_with_resolution(self, results):
        saved = [r.saved_mw for r in results]
        assert saved == sorted(saved)

    def test_costs_under_a_dollar(self, results):
        """Sec. 4.4: even the 5K DRFB is cents, not dollars."""
        assert all(r.drfb_usd < 1.0 for r in results)

    def test_cents_per_watt_is_tiny(self, results):
        """The punchline: well under a dollar per saved watt at every
        resolution."""
        assert all(r.cents_per_saved_watt < 100 for r in results)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            drfb_cost_benefit(())

    def test_ablation_result_guards(self):
        with pytest.raises(ConfigurationError):
            AblationResult(parameter="x", points=[]).best()
