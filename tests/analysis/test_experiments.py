"""The per-figure experiment functions reproduce the paper's shapes.

These are the repository's reproduction gates: every table/figure
function must run and exhibit the qualitative result the paper reports.
The quantitative paper-vs-measured record lives in EXPERIMENTS.md.
"""

import pytest

from repro.analysis.experiments import (
    fig01_energy_breakdown,
    fig03_conventional_timeline,
    fig04_browsing_then_streaming,
    fig06_bypass_timeline,
    fig07_burstlink_timeline,
    fig09_planar_reduction_30fps,
    fig10_energy_breakdown_comparison,
    fig11a_vr_workloads,
    fig11b_vr_resolutions,
    fig12_planar_reduction_60fps,
    fig13_fbc_comparison,
    fig14a_local_playback,
    fig14b_mobile_workloads,
    sec64_related_work,
    table2_power_comparison,
)
from repro.soc.cstates import PackageCState


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_energy_breakdown()

    def test_total_grows_with_resolution(self, result):
        totals = {
            name: sum(parts)
            for name, parts in result.normalised.items()
        }
        assert totals["FHD"] < totals["QHD"] < totals["4K"]

    def test_fhd_normalises_to_one(self, result):
        assert sum(result.normalised["FHD"]) == pytest.approx(1.0)

    def test_dram_share_grows(self, result):
        assert result.dram_fraction("4K") > result.dram_fraction("FHD")

    def test_dram_over_quarter_at_4k(self, result):
        assert result.dram_fraction("4K") > 0.27


class TestTimelines:
    def test_fig03_shape(self):
        result = fig03_conventional_timeline()
        assert result.pattern_30fps.startswith("C0 C2 C8")
        # The repeat window parks in C8 (no C9 in the measured baseline).
        assert "C9" not in result.pattern_30fps

    def test_fig06_shape(self):
        result = fig06_bypass_timeline()
        assert "C7 C7'" in result.pattern_30fps
        assert "C2" not in result.pattern_30fps

    def test_fig07_shape(self):
        result = fig07_burstlink_timeline()
        assert result.pattern_30fps.startswith("C0 C7")
        assert "C9" in result.pattern_30fps

    def test_fig07_c9_dominates(self):
        result = fig07_burstlink_timeline()
        assert result.residencies_30fps[PackageCState.C9] > 0.7


class TestFig04:
    def test_streaming_raises_power(self):
        result = fig04_browsing_then_streaming()
        assert result.streaming_power_mw > result.browsing_power_mw

    def test_streaming_mean_near_measured(self):
        result = fig04_browsing_then_streaming()
        assert result.streaming_power_mw == pytest.approx(
            2831, rel=0.08
        )

    def test_streaming_c8_dominant(self):
        result = fig04_browsing_then_streaming()
        assert max(
            result.streaming_residency,
            key=result.streaming_residency.get,
        ) is PackageCState.C8


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return table2_power_comparison()

    def test_averages_near_paper(self, result):
        assert result.baseline_avg_mw == pytest.approx(2162, rel=0.05)
        assert result.burstlink_avg_mw == pytest.approx(1274, rel=0.06)

    def test_reduction_over_40_percent(self, result):
        """Table 2's text: BurstLink cuts average power by >40%."""
        assert result.reduction > 0.38

    def test_baseline_rows_have_no_c9(self, result):
        states = {row.state for row in result.baseline_rows}
        assert PackageCState.C9 not in states

    def test_burstlink_rows_have_c9(self, result):
        states = {row.state for row in result.burstlink_rows}
        assert PackageCState.C9 in states


class TestFig09And12:
    @pytest.fixture(scope="class")
    def fig09(self):
        return fig09_planar_reduction_30fps()

    @pytest.fixture(scope="class")
    def fig12(self):
        return fig12_planar_reduction_60fps()

    def test_fhd30_matches_paper_bars(self, fig09):
        reductions = fig09.reductions["FHD"]
        assert reductions["burst"] == pytest.approx(0.23, abs=0.05)
        assert reductions["bypass"] == pytest.approx(0.31, abs=0.06)
        assert reductions["burstlink"] == pytest.approx(0.37, abs=0.06)

    def test_burstlink_grows_with_resolution(self, fig09):
        assert (
            fig09.reductions["5K"]["burstlink"]
            > fig09.reductions["FHD"]["burstlink"]
        )

    def test_burstlink_wins_everywhere(self, fig09, fig12):
        for result in (fig09, fig12):
            for reductions in result.reductions.values():
                assert reductions["burstlink"] >= max(
                    reductions["burst"], reductions["bypass"]
                ) - 1e-9

    def test_60fps_beats_30fps(self, fig09, fig12):
        """Sec. 6.3: 60 FPS workloads benefit more than 30 FPS."""
        for name in fig09.reductions:
            assert (
                fig12.reductions[name]["burstlink"]
                > fig09.reductions[name]["burstlink"]
            )

    def test_baseline_power_grows_with_resolution(self, fig09):
        powers = list(fig09.baseline_power_mw.values())
        assert powers == sorted(powers)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_energy_breakdown_comparison()

    def test_dram_cut_everywhere(self, result):
        for name in result.baseline:
            assert result.dram_reduction_factor(name) > 3.0

    def test_dram_cut_grows_with_resolution(self, result):
        assert result.dram_reduction_factor("5K") > (
            result.dram_reduction_factor("FHD")
        )

    def test_others_cut_positive(self, result):
        for name in result.baseline:
            assert result.others_reduction_factor(name) > 1.5


class TestFig11:
    @pytest.fixture(scope="class")
    def fig11a(self):
        return fig11a_vr_workloads(frame_count=16)

    def test_reductions_up_to_33_percent(self, fig11a):
        best = max(fig11a.reductions.values())
        assert best == pytest.approx(0.33, abs=0.04)

    def test_all_workloads_benefit(self, fig11a):
        assert all(r > 0.15 for r in fig11a.reductions.values())

    def test_compute_dominant_benefits_least(self, fig11a):
        assert min(
            fig11a.reductions, key=fig11a.reductions.get
        ) == "Rollercoaster"

    def test_fig11b_decreases_at_high_resolution(self):
        result = fig11b_vr_resolutions(frame_count=16)
        values = list(result.reductions.values())
        # The paper's trend: the largest per-eye mode benefits least.
        assert values[-1] < max(values)
        assert values[-1] < values[1]


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_fbc_comparison()

    def test_fbc_ladder_monotonic(self, result):
        for resolution in result.reductions.values():
            assert (
                resolution["fbc-20"]
                < resolution["fbc-30"]
                < resolution["fbc-50"]
            )

    def test_fbc50_near_9_percent_at_4k(self, result):
        assert result.reductions["4K"]["fbc-50"] == pytest.approx(
            0.09, abs=0.04
        )

    def test_burstlink_dominates(self, result):
        for resolution in result.reductions.values():
            assert resolution["burstlink"] > 3 * resolution["fbc-50"]


class TestSec64:
    @pytest.fixture(scope="class")
    def result(self):
        return sec64_related_work()

    def test_zhang_bw_reduction_near_34(self, result):
        assert result.dram_bw_reduction["zhang"] == pytest.approx(
            0.34, abs=0.05
        )

    def test_zhang_energy_modest(self, result):
        assert result.reductions["zhang"] < 0.15

    def test_ordering_zhang_vip_burstlink(self, result):
        assert (
            result.reductions["zhang"]
            < result.reductions["vip"]
            < result.reductions["burstlink"]
        )


class TestFig14:
    def test_local_playback_over_40_percent(self):
        result = fig14a_local_playback()
        assert all(r > 0.40 for r in result.reductions.values())

    def test_mobile_workloads_all_benefit_at_fhd(self):
        result = fig14b_mobile_workloads()
        for reduction in result.reductions["FHD"].values():
            assert reduction > 0.15

    def test_mobile_fhd_in_paper_band(self):
        result = fig14b_mobile_workloads()
        values = list(result.reductions["FHD"].values())
        # Paper: ~27-30% per workload; our band is 24-31%.
        assert max(values) == pytest.approx(0.30, abs=0.05)


class TestStandbyAmbient:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.analysis.experiments import standby_ambient

        return standby_ambient(duration_s=20.0)

    def test_burstlink_cheaper_than_conventional(self, result):
        assert (
            result.power_mw["burstlink"]
            < result.power_mw["conventional"]
        )
        assert 0 < result.reduction < 1

    def test_almost_every_window_repeats(self, result):
        """0.2 updates/s on a 60 Hz panel: the repeat regime the
        collapsing path targets."""
        for fraction in result.repeat_fraction.values():
            assert fraction > 0.99

    def test_burstlink_sleeps_deeper(self, result):
        deep = {PackageCState.C8, PackageCState.C9, PackageCState.C10}
        conventional = sum(
            fraction
            for state, fraction in (
                result.residencies["conventional"].items()
            )
            if state in deep
        )
        burstlink = sum(
            fraction
            for state, fraction in (
                result.residencies["burstlink"].items()
            )
            if state in deep
        )
        assert burstlink > conventional
