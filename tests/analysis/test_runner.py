"""The parallel experiment engine: cache semantics, registry, metrics."""

import json

import pytest

from repro.analysis import runner
from repro.analysis.runner import (
    ExhibitOutcome,
    ExperimentMetrics,
    SimulationCache,
    cache_disabled,
    exhibit_registry,
    metrics_table,
    run_exhibit,
    run_exhibits,
    run_from_payload,
    run_to_payload,
)
from repro.config import FHD, skylake_tablet
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.pipeline.sim import install_run_memo, run_fingerprint
from repro.video.source import AnalyticContentModel


def _simulate(frame_count=6, seed=1):
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, frame_count, seed=seed)
    return FrameWindowSimulator(
        config, ConventionalScheme()
    ).run(frames, 30.0)


@pytest.fixture
def isolated_cache():
    """A private cache installed for the test's duration."""
    cache = SimulationCache()
    previous = install_run_memo(cache)
    yield cache
    install_run_memo(previous)


class TestSimulationCache:
    def test_miss_then_hit(self, isolated_cache):
        first = _simulate()
        assert isolated_cache.stats.misses == 1
        assert isolated_cache.stats.stores == 1
        second = _simulate()
        assert isolated_cache.stats.hits == 1
        assert first.stats == second.stats
        assert list(first.timeline) == list(second.timeline)

    def test_windows_counted_on_miss_only(self, isolated_cache):
        run = _simulate()
        _simulate()
        assert isolated_cache.stats.windows_simulated == run.stats.windows

    def test_different_inputs_different_entries(self, isolated_cache):
        _simulate(seed=1)
        _simulate(seed=2)
        assert isolated_cache.stats.misses == 2
        assert len(isolated_cache) == 2

    def test_loads_are_defensive_copies(self, isolated_cache):
        _simulate()
        tampered = _simulate()
        tampered.stats.windows = -1
        tampered.timeline.segments.clear()
        clean = _simulate()
        assert clean.stats.windows > 0
        assert len(clean.timeline) > 0

    def test_lru_eviction(self):
        cache = SimulationCache(capacity=2)
        previous = install_run_memo(cache)
        try:
            _simulate(seed=1)
            _simulate(seed=2)
            _simulate(seed=3)
            assert len(cache) == 2
            _simulate(seed=1)  # evicted -> a fresh miss
            assert cache.stats.misses == 4
        finally:
            install_run_memo(previous)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            SimulationCache(capacity=0)

    def test_cache_disabled_bypasses(self, isolated_cache):
        with cache_disabled():
            run = _simulate()
        assert run.cache_key is None
        assert isolated_cache.stats.misses == 0
        assert len(isolated_cache) == 0


class TestDiskCache:
    def test_round_trip_is_exact(self, tmp_path):
        previous = install_run_memo(SimulationCache(directory=tmp_path))
        try:
            original = _simulate()
            assert len(list(tmp_path.glob("*.json"))) == 1
            # A brand-new process-equivalent: empty memory, same disk.
            reloaded_cache = SimulationCache(directory=tmp_path)
            install_run_memo(reloaded_cache)
            reloaded = _simulate()
            assert reloaded_cache.stats.disk_hits == 1
            assert reloaded.stats == original.stats
            assert list(reloaded.timeline) == list(original.timeline)
            assert reloaded.config == original.config
        finally:
            install_run_memo(previous)

    def test_payload_round_trip(self):
        with cache_disabled():
            run = _simulate()
        payload = json.loads(json.dumps(run_to_payload(run)))
        rebuilt = run_from_payload(payload)
        assert rebuilt.scheme == run.scheme
        assert rebuilt.config == run.config
        assert rebuilt.stats == run.stats
        assert list(rebuilt.timeline) == list(run.timeline)

    def test_payload_round_trip_vr_run(self):
        """A VR run (projection work, headset config) must survive the
        disk-cache serializers exactly."""
        from repro.core import BurstLinkScheme
        from repro.workloads.vr import VR_WORKLOADS, vr_streaming_run

        with cache_disabled():
            run = vr_streaming_run(
                VR_WORKLOADS["Elephant"],
                BurstLinkScheme(),
                frame_count=3,
                with_drfb=True,
            )
        payload = json.loads(json.dumps(run_to_payload(run)))
        rebuilt = run_from_payload(payload)
        assert rebuilt.scheme == run.scheme
        assert rebuilt.config == run.config
        assert rebuilt.stats == run.stats
        assert rebuilt.video_fps == run.video_fps
        assert list(rebuilt.timeline) == list(run.timeline)

    def test_payload_round_trip_fallback_run(self):
        """A run under the Sec. 4.1 fallback (selector forced back to
        the conventional path) round-trips exactly, stats included."""
        from repro.core import select_scheme
        from repro.soc.registers import RegisterFile

        registers = RegisterFile.full_screen_video()
        registers.psr2_exited = True  # fallback trigger 2
        scheme = select_scheme(registers)
        assert scheme.name == "conventional"
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 4, seed=9)
        with cache_disabled():
            run = FrameWindowSimulator(config, scheme).run(frames, 30.0)
        payload = json.loads(json.dumps(run_to_payload(run)))
        rebuilt = run_from_payload(payload)
        assert rebuilt.stats == run.stats
        assert rebuilt.config == run.config
        assert list(rebuilt.timeline) == list(run.timeline)

    def test_payload_round_trip_summary_only_run(self):
        """A retain="summary" run serializes with ``segments: null``
        and restores with identical aggregates and power."""
        from repro.power import PowerModel

        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 6, seed=1)
        with cache_disabled():
            run = FrameWindowSimulator(
                config, ConventionalScheme()
            ).run(frames, 30.0, retain="summary")
        assert run.timeline is None
        payload = json.loads(json.dumps(run_to_payload(run)))
        assert payload["segments"] is None
        rebuilt = run_from_payload(payload)
        assert rebuilt.timeline is None
        assert rebuilt.stats == run.stats
        assert rebuilt.summary is not None
        assert rebuilt.summary.windows == run.summary.windows
        assert rebuilt.summary.window_counts == (
            run.summary.window_counts
        )
        assert rebuilt.duration == run.duration
        assert rebuilt.residency_fractions() == (
            run.residency_fractions()
        )
        assert PowerModel().report(rebuilt).total_energy_mj == (
            PowerModel().report(run).total_energy_mj
        )

    def test_payload_round_trip_psr_and_burst_stats(self):
        """A BurstLink run exercises the psr/bypass/burst stat fields
        the planar conventional round-trip leaves at zero."""
        from repro.core import BurstLinkScheme

        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 4, seed=2)
        with cache_disabled():
            run = FrameWindowSimulator(
                config, BurstLinkScheme()
            ).run(frames, 30.0)
        assert run.stats.psr_windows > 0
        payload = json.loads(json.dumps(run_to_payload(run)))
        rebuilt = run_from_payload(payload)
        assert rebuilt.stats == run.stats
        assert list(rebuilt.timeline) == list(run.timeline)

    def test_corrupt_entry_is_overwritten_by_next_store(self, tmp_path):
        """A truncated entry (crashed worker) is ignored on load and
        replaced by a clean one on the next store."""
        cache = SimulationCache(directory=tmp_path)
        previous = install_run_memo(cache)
        try:
            run = _simulate()
            path = tmp_path / f"{run.cache_key}.json"
            path.write_text('{"format": 1, "scheme": "conv', "utf-8")
            fresh = SimulationCache(directory=tmp_path)
            install_run_memo(fresh)
            again = _simulate()  # corrupt entry -> miss -> re-store
            assert fresh.stats.disk_hits == 0
            assert fresh.stats.misses == 1
            assert again.stats == run.stats
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert run_from_payload(payload).stats == run.stats
        finally:
            install_run_memo(previous)

    def test_store_never_leaves_temp_files(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        previous = install_run_memo(cache)
        try:
            _simulate()
        finally:
            install_run_memo(previous)
        assert list(tmp_path.glob("*.tmp")) == []
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_failed_store_cleans_up_temp_file(self, tmp_path, monkeypatch):
        """If the write itself dies, no temp or partial target file may
        survive to poison later loads."""
        cache = SimulationCache(directory=tmp_path)

        def explode(payload, handle):
            handle.write('{"format": 1, "scheme": "conv')  # partial...
            raise OSError("disk full")

        monkeypatch.setattr(runner.json, "dump", explode)
        previous = install_run_memo(cache)
        try:
            run = _simulate()  # store's disk write fails silently
        finally:
            install_run_memo(previous)
        assert run.cache_key is not None
        assert list(tmp_path.iterdir()) == []  # no tmp, no partial json
        monkeypatch.undo()
        # And the cache still works end to end afterwards.
        cache.store(run.cache_key, run)
        assert (tmp_path / f"{run.cache_key}.json").exists()

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = SimulationCache(directory=tmp_path)
        previous = install_run_memo(cache)
        try:
            run = _simulate()
            path = tmp_path / f"{run.cache_key}.json"
            path.write_text("{not json", encoding="utf-8")
            install_run_memo(SimulationCache(directory=tmp_path))
            again = _simulate()
            assert again.stats == run.stats
            assert not path.exists() or json.loads(
                path.read_text(encoding="utf-8")
            )
        finally:
            install_run_memo(previous)


class TestUnfingerprintableInputs:
    def test_unfreezable_scheme_bypasses_cache(self, isolated_cache):
        def opaque():
            scheme = ConventionalScheme()
            scheme.blob = lambda: None  # unfreezable attribute
            return scheme

        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 4, seed=1)
        assert run_fingerprint(config, opaque(), frames, 30.0) is None
        run = FrameWindowSimulator(config, opaque()).run(frames, 30.0)
        assert run.cache_key is None
        assert len(isolated_cache) == 0


class TestExhibitEngine:
    def test_registry_is_complete(self):
        assert len(exhibit_registry()) == 18
        from repro.analysis import experiments

        for name, function in exhibit_registry().items():
            assert function.__module__ == experiments.__name__

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(ConfigurationError):
            run_exhibit("fig99")
        with pytest.raises(ConfigurationError):
            run_exhibits(("fig01", "fig99"))

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_exhibits(("fig01",), jobs=0)

    def test_batch_retain_restored(self, isolated_cache):
        """``run_exhibits(retain=...)`` applies only for the batch: the
        process default is back afterwards."""
        from repro.pipeline.sim import default_retain

        before = default_retain()
        outcomes = run_exhibits(("standby",), retain="summary")
        assert default_retain() == before
        assert outcomes[0].name == "standby"
        assert 0 < outcomes[0].result.reduction < 1

    def test_metrics_track_cache_activity(self, isolated_cache):
        cold = run_exhibit("fig01")
        warm = run_exhibit("fig01")
        assert cold.metrics.cache_misses > 0
        assert cold.metrics.windows_simulated > 0
        assert warm.metrics.cache_misses == 0
        assert warm.metrics.cache_hits == cold.metrics.cache_misses
        assert warm.metrics.windows_simulated == 0
        assert cold.result == warm.result

    def test_metrics_table_totals(self):
        outcomes = [
            ExhibitOutcome(
                "a", None, ExperimentMetrics("a", 1.5, 2, 3, 40)
            ),
            ExhibitOutcome(
                "b", None, ExperimentMetrics("b", 0.5, 1, 1, 10)
            ),
        ]
        table = metrics_table(outcomes)
        assert "total" in table
        assert "2.00" in table  # summed wall-clock
        assert "50" in table  # summed windows

    def test_default_cache_installed_on_import(self):
        assert runner.active_cache() is not None


@pytest.fixture
def preserved_registry():
    """Snapshot and restore the process-wide metrics registry (the
    fan-out merges worker metrics into it)."""
    from repro.obs import metrics as obs_metrics

    saved = obs_metrics.registry().snapshot()
    obs_metrics.registry().reset()
    yield obs_metrics.registry()
    obs_metrics.registry().reset()
    obs_metrics.registry().merge_snapshot(saved)


class TestParallelTraceParity:
    """The shard-merge regression gate: a traced ``jobs=2`` run must be
    telemetry-equivalent to the sequential run — same span multiset,
    same normalized byte stream, same aggregated counters."""

    EXHIBITS = ("fig01", "table2")

    def _traced_run(self, jobs):
        from repro.obs import metrics as obs_metrics
        from repro.obs import trace as obs_trace

        obs_metrics.registry().reset()
        with cache_disabled(), obs_trace.tracing() as tracer:
            outcomes = run_exhibits(self.EXHIBITS, jobs=jobs)
        counters = {
            name: state["value"]
            for name, state in obs_metrics.registry()
            .snapshot()
            .items()
            if state["type"] == "counter"
        }
        return outcomes, tracer.events, counters

    def test_parallel_trace_matches_sequential(
        self, preserved_registry
    ):
        from repro.obs.dist import normalized_jsonl

        seq_outcomes, seq_events, seq_counters = self._traced_run(1)
        par_outcomes, par_events, par_counters = self._traced_run(2)

        # Same results, in request order.
        assert [o.name for o in par_outcomes] == [
            o.name for o in seq_outcomes
        ]
        assert [o.result for o in par_outcomes] == [
            o.result for o in seq_outcomes
        ]

        # Same span multiset...
        def span_multiset(events):
            names = {}
            for event in events:
                if event["kind"] == "B":
                    names[event["name"]] = (
                        names.get(event["name"], 0) + 1
                    )
            return names

        assert span_multiset(par_events) == span_multiset(seq_events)
        # ...and in fact byte-identical after normalization.
        assert normalized_jsonl(par_events) == normalized_jsonl(
            seq_events
        )
        # Aggregated counters match exactly.
        assert par_counters == seq_counters
        assert par_counters  # non-trivial: the run did count things

    def test_fanout_event_records_actual_worker_count(
        self, preserved_registry
    ):
        from repro.obs import trace as obs_trace

        with cache_disabled(), obs_trace.tracing() as tracer:
            run_exhibits(self.EXHIBITS, jobs=8)
        (fanout,) = [
            e for e in tracer.events
            if e.get("name") == "exhibits.fanout"
        ]
        # 8 jobs requested, but only 2 exhibits selected.
        assert fanout["attrs"]["workers"] == 2
        assert fanout["attrs"]["selected"] == 2
