"""Battery-life estimation."""

import pytest

from repro.analysis.battery import (
    BatteryLife,
    battery_life,
    compare_battery_life,
)
from repro.config import UHD_4K, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel


@pytest.fixture(scope="module")
def reports():
    config = skylake_tablet(UHD_4K)
    frames = AnalyticContentModel().frames(UHD_4K, 16)
    model = PowerModel()
    base = model.report(
        FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 60.0
        )
    )
    burst = model.report(
        FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(frames, 60.0)
    )
    return base, burst


class TestBatteryLife:
    def test_hours_formula(self):
        # 45 Wh at 4.5 W is exactly 10 hours.
        life = BatteryLife(battery_wh=45.0, average_power_mw=4500.0)
        assert life.hours == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatteryLife(battery_wh=0, average_power_mw=1)
        with pytest.raises(ConfigurationError):
            BatteryLife(battery_wh=45, average_power_mw=0)

    def test_from_report(self, reports):
        base, _ = reports
        life = battery_life(base)
        assert life.hours == pytest.approx(
            45000.0 / base.average_power_mw
        )

    def test_str_mentions_hours(self):
        assert "h at" in str(
            BatteryLife(battery_wh=45.0, average_power_mw=4500.0)
        )


class TestComparison:
    def test_burstlink_extends_runtime(self, reports):
        base, burst = reports
        comparison = compare_battery_life(base, burst)
        assert comparison.extra_hours > 0
        assert comparison.runtime_gain > 0.5

    def test_hyperbolic_payoff(self, reports):
        """An energy reduction R extends runtime by R / (1 - R)."""
        base, burst = reports
        comparison = compare_battery_life(base, burst)
        reduction = 1 - (
            burst.average_power_mw / base.average_power_mw
        )
        assert comparison.runtime_gain == pytest.approx(
            reduction / (1 - reduction)
        )

    def test_summary_format(self, reports):
        base, burst = reports
        summary = compare_battery_life(base, burst).summary()
        assert "->" in summary and "+" in summary

    def test_custom_battery_scales_linearly(self, reports):
        base, burst = reports
        small = compare_battery_life(base, burst, battery_wh=22.5)
        large = compare_battery_life(base, burst, battery_wh=45.0)
        assert large.extra_hours == pytest.approx(
            2 * small.extra_hours
        )
