"""JSON/CSV serialization of runs, timelines, and reports."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    report_to_dict,
    run_to_dict,
    timeline_to_csv,
    timeline_to_records,
    to_json,
)
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.errors import SimulationError
from repro.pipeline import (
    ConventionalScheme,
    FrameWindowSimulator,
    Timeline,
)
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel


@pytest.fixture(scope="module")
def run():
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, 6)
    return FrameWindowSimulator(config, BurstLinkScheme()).run(
        frames, 30.0
    )


@pytest.fixture(scope="module")
def report(run):
    return PowerModel().report(run)


class TestTimelineExport:
    def test_one_record_per_segment(self, run):
        records = timeline_to_records(run.timeline)
        assert len(records) == len(run.timeline)

    def test_records_are_json_serialisable(self, run):
        text = to_json(timeline_to_records(run.timeline))
        parsed = json.loads(text)
        assert parsed[0]["state"] == "C0"

    def test_csv_roundtrip(self, run):
        text = timeline_to_csv(run.timeline)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(run.timeline)
        assert float(rows[0]["start_s"]) == pytest.approx(0.0)

    def test_csv_durations_cover_run(self, run):
        rows = list(
            csv.DictReader(io.StringIO(timeline_to_csv(run.timeline)))
        )
        covered = sum(
            float(r["end_s"]) - float(r["start_s"]) for r in rows
        )
        assert covered == pytest.approx(run.duration)

    def test_empty_timeline_rejected(self):
        with pytest.raises(SimulationError):
            timeline_to_csv(Timeline())


class TestReportExport:
    def test_energy_fields_present(self, report):
        payload = report_to_dict(report)
        assert payload["average_power_mw"] == pytest.approx(
            report.average_power_mw
        )
        assert "C9" in payload["by_state"]
        assert payload["by_component_mj"]["panel"] > 0

    def test_state_fractions_sum_to_one(self, report):
        payload = report_to_dict(report)
        assert sum(
            row["residency_fraction"]
            for row in payload["by_state"].values()
        ) == pytest.approx(1.0)


class TestRunExport:
    def test_core_fields(self, run):
        payload = run_to_dict(run)
        assert payload["scheme"] == "burstlink"
        assert payload["panel"]["drfb"] is True
        assert payload["stats"]["windows"] == run.stats.windows
        assert "energy" not in payload

    def test_with_report_attached(self, run, report):
        payload = run_to_dict(run, report)
        assert payload["energy"]["average_power_mw"] == (
            pytest.approx(report.average_power_mw)
        )

    def test_round_trips_through_json(self, run, report):
        text = to_json(run_to_dict(run, report))
        parsed = json.loads(text)
        assert parsed["residency"]["C9"] > 0.5

    def test_baseline_export_differs(self):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 6)
        baseline = FrameWindowSimulator(
            config, ConventionalScheme()
        ).run(frames, 30.0)
        payload = run_to_dict(baseline)
        assert payload["panel"]["drfb"] is False
        assert "C9" not in payload["residency"]


class TestNonFiniteRejection:
    """Regression: NaN/inf must never reach an emitted artifact.

    ``json.dumps`` would happily write bare ``NaN`` (invalid JSON) and
    ``csv`` the string ``"nan"``; both are silent corruption for any
    downstream reader, so the exporters fail loudly instead."""

    def test_records_to_csv_rejects_nan(self):
        from repro.analysis.export import records_to_csv

        with pytest.raises(SimulationError, match="non-finite"):
            records_to_csv([{"a": 1.0}, {"a": float("nan")}])

    def test_records_to_csv_rejects_inf(self):
        from repro.analysis.export import records_to_csv

        with pytest.raises(SimulationError, match="non-finite"):
            records_to_csv([{"a": float("inf")}])

    def test_error_names_field_and_record(self):
        from repro.analysis.export import check_finite

        with pytest.raises(
            SimulationError, match=r"'power'.*record 1"
        ):
            check_finite(
                [{"power": 1.0}, {"power": float("-inf")}]
            )

    def test_to_json_rejects_nan(self):
        with pytest.raises(SimulationError, match="non-finite"):
            to_json({"value": float("nan")})

    def test_to_json_rejects_nested_inf(self):
        with pytest.raises(SimulationError, match="non-finite"):
            to_json({"rows": [{"value": float("inf")}]})

    def test_finite_payloads_unaffected(self):
        from repro.analysis.export import records_to_csv

        assert json.loads(to_json({"v": 1.5}))["v"] == 1.5
        assert records_to_csv([{"v": 1.5}]).splitlines() == [
            "v", "1.5",
        ]


class TestRecordsToCsv:
    def test_pinned_fieldnames_order(self):
        from repro.analysis.export import records_to_csv

        text = records_to_csv(
            [{"b": 2, "a": 1}], fieldnames=("a", "b")
        )
        assert text.splitlines()[0] == "a,b"

    def test_rejects_zero_records(self):
        from repro.analysis.export import records_to_csv

        with pytest.raises(SimulationError):
            records_to_csv([])
