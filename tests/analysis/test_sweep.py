"""Parameter sweeps."""

import pytest

from repro.analysis.sweep import (
    SweepPoint,
    sweep_edp_bandwidth,
    sweep_refresh_rate,
    sweep_vrr,
)
from repro.config import FHD, QHD, UHD_4K
from repro.errors import ConfigurationError


class TestSweepPoint:
    def test_reduction(self):
        point = SweepPoint("x", 1.0, baseline_mw=1000, burstlink_mw=600)
        assert point.reduction == pytest.approx(0.4)


class TestEdpSweep:
    def test_4k_benefit_grows_with_bandwidth(self):
        """The paper's claim: faster links shorten the burst and deepen
        C9 residency, so BurstLink's edge grows."""
        result = sweep_edp_bandwidth(UHD_4K)
        assert len(result.points) >= 3
        assert result.is_monotonic_increasing(tolerance=0.002)

    def test_infeasible_links_skipped(self):
        # 4K 60 Hz needs ~11.9 Gbps: a 10 Gbps link cannot drive it.
        result = sweep_edp_bandwidth(
            UHD_4K, bandwidths_gbps=(10.0, 25.92)
        )
        assert [p.label for p in result.points] == ["25.92 Gbps"]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_edp_bandwidth(UHD_4K, bandwidths_gbps=())


class TestRefreshSweep:
    def test_points_generated(self):
        result = sweep_refresh_rate(QHD)
        assert [p.label for p in result.points] == [
            "60 Hz", "90 Hz", "120 Hz",
        ]

    def test_absolute_savings_grow_with_refresh(self):
        """Higher refresh rates save more milliwatts even where the
        percentage dilutes against the pricier panel (a model finding
        recorded in EXPERIMENTS.md)."""
        result = sweep_refresh_rate(FHD)
        savings = [
            p.baseline_mw - p.burstlink_mw for p in result.points
        ]
        assert savings[-1] > savings[0]

    def test_infeasible_modes_skipped(self):
        result = sweep_refresh_rate(
            UHD_4K, refresh_rates=(60.0, 144.0)
        )
        assert [p.label for p in result.points] == ["60 Hz"]

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_refresh_rate(FHD, refresh_rates=())


class TestVrrSweep:
    def test_points_generated(self):
        result = sweep_vrr(FHD)
        assert [p.value for p in result.points] == [24.0, 30.0]

    def test_vrr_is_energy_neutral_under_burstlink(self):
        """The model finding documented in EXPERIMENTS.md: repeat
        windows are already C9-deep, so matching the refresh to the
        content moves energy by under 3% either way."""
        result = sweep_vrr(FHD)
        for point in result.points:
            assert abs(point.reduction) < 0.03

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sweep_vrr(FHD, content_fps=())
