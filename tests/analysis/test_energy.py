"""The scheme-comparison helpers."""

import pytest

from repro.analysis.energy import (
    SchemeComparison,
    compare_schemes,
    energy_reduction,
)
from repro.config import FHD, skylake_tablet
from repro.core.burstlink import BurstLinkScheme
from repro.core.bursting import FrameBurstingScheme
from repro.errors import SimulationError
from repro.pipeline.conventional import ConventionalScheme
from repro.video.source import AnalyticContentModel


@pytest.fixture
def comparison():
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, 12)
    return compare_schemes(
        config,
        frames,
        30.0,
        schemes={
            "burst": (FrameBurstingScheme(), True),
            "burstlink": (BurstLinkScheme(), True),
        },
        baseline=ConventionalScheme(),
        workload="test",
    )


class TestEnergyReduction:
    def test_reduction_formula(self, comparison):
        reduction = comparison.reduction("burstlink")
        assert reduction == pytest.approx(
            1
            - comparison.candidates["burstlink"].average_power_mw
            / comparison.baseline.average_power_mw
        )

    def test_reduction_positive(self, comparison):
        assert comparison.reduction("burstlink") > 0.3

    def test_unknown_scheme_rejected(self, comparison):
        with pytest.raises(SimulationError):
            comparison.reduction("nope")

    def test_all_reductions(self, comparison):
        reductions = comparison.reductions()
        assert set(reductions) == {"burst", "burstlink"}
        assert reductions["burstlink"] > reductions["burst"]


class TestCompareSchemes:
    def test_runs_recorded(self, comparison):
        assert set(comparison.runs) == {
            "baseline", "burst", "burstlink",
        }

    def test_drfb_configs_applied(self, comparison):
        assert comparison.runs["burstlink"].config.panel.has_drfb
        assert not comparison.runs["baseline"].config.panel.has_drfb

    def test_direct_energy_reduction_helper(self, comparison):
        assert energy_reduction(
            comparison.baseline, comparison.candidates["burstlink"]
        ) == comparison.reduction("burstlink")
