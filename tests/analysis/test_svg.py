"""The SVG chart renderer and the figure regeneration."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import BarChart, write_figures
from repro.errors import ConfigurationError


def chart(**overrides):
    defaults = dict(
        title="Test",
        categories=["A", "B"],
        series={"one": [1.0, 2.0], "two": [0.5, 1.5]},
    )
    defaults.update(overrides)
    return BarChart(**defaults)


def parse(svg_text):
    return ET.fromstring(svg_text)


def rects(root):
    return [e for e in root.iter() if e.tag.endswith("rect")]


class TestValidation:
    def test_needs_categories(self):
        with pytest.raises(ConfigurationError):
            chart(categories=[])

    def test_needs_series(self):
        with pytest.raises(ConfigurationError):
            chart(series={})

    def test_series_length_checked(self):
        with pytest.raises(ConfigurationError):
            chart(series={"bad": [1.0]})

    def test_minimum_size(self):
        with pytest.raises(ConfigurationError):
            chart(width=50)


class TestRendering:
    def test_valid_xml(self):
        parse(chart().to_svg())

    def test_bar_count(self):
        root = parse(chart().to_svg())
        # background + 5 gridline-free... count data bars: 2 series x 2
        # categories = 4, plus background and 2 legend swatches = 7.
        assert len(rects(root)) == 7

    def test_bar_heights_proportional(self):
        root = parse(chart(series={"one": [1.0, 2.0]}).to_svg())
        data_bars = rects(root)[1:-1]  # drop background and legend
        heights = sorted(float(r.get("height")) for r in data_bars)
        assert heights[1] == pytest.approx(2 * heights[0], rel=0.01)

    def test_negative_values_clamp_to_zero(self):
        root = parse(chart(series={"one": [-0.5, 1.0]}).to_svg())
        data_bars = rects(root)[1:-1]
        heights = [float(r.get("height")) for r in data_bars]
        assert min(heights) == 0.0

    def test_percent_axis_labels(self):
        svg = chart(percent=True).to_svg()
        assert "%" in svg

    def test_title_escaped(self):
        svg = chart(title="a < b & c").to_svg()
        parse(svg)  # must stay well-formed
        assert "a &lt; b &amp; c" in svg

    def test_bars_stay_inside_canvas(self):
        c = chart()
        root = parse(c.to_svg())
        for r in rects(root):
            x = float(r.get("x", 0))
            width = float(r.get("width", 0))
            assert 0 <= x <= c.width
            assert x + width <= c.width + 0.5


class TestWriteFigures:
    def test_writes_all_headline_figures(self, tmp_path):
        written = write_figures(tmp_path)
        names = {p.name for p in written}
        assert names == {
            "fig01_energy_breakdown.svg",
            "fig09_planar_30fps.svg",
            "fig12_planar_60fps.svg",
            "fig11a_vr_workloads.svg",
            "fig13_fbc.svg",
            "fig14b_mobile.svg",
        }
        for path in written:
            parse(path.read_text())
