"""Text report rendering."""

import pytest

from repro.analysis.report import (
    format_table,
    render_cstate_table,
    render_reductions,
)
from repro.errors import SimulationError
from repro.power.model import CStateSummary
from repro.soc.cstates import PackageCState


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ("name", "value"), [("a", 1), ("long-name", 22)]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_row_width_checked(self):
        with pytest.raises(SimulationError):
            format_table(("a", "b"), [("only-one",)])

    def test_empty_headers_rejected(self):
        with pytest.raises(SimulationError):
            format_table((), [])


class TestRenderers:
    def test_cstate_table(self):
        rows = [
            CStateSummary(PackageCState.C0, 0.1, 0.09, 5940.0, 594.0),
            CStateSummary(PackageCState.C8, 0.9, 0.80, 1285.0, 1157.0),
        ]
        text = render_cstate_table("Baseline", rows, 2162.0)
        assert "C0" in text
        assert "5940" in text
        assert "AvgP: 2162 mW" in text

    def test_reductions(self):
        text = render_reductions(
            "Fig. 9", {"FHD": 0.372, "4K": 0.486}
        )
        assert "- 37.2%" in text
        assert "FHD" in text
