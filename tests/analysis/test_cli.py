"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_timeline_scheme_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["timeline", "not-a-scheme"])


class TestCommands:
    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        assert "table2" in out and "validate" in out

    def test_validate(self, capsys):
        code, out = run_cli(capsys, "validate")
        assert code == 0
        assert "mean accuracy" in out

    def test_table2(self, capsys):
        code, out = run_cli(capsys, "table2")
        assert code == 0
        assert "AvgP" in out and "reduction" in out

    def test_fig01(self, capsys):
        code, out = run_cli(capsys, "fig01")
        assert code == 0
        assert "FHD" in out and "DRAM" in out

    def test_fig09(self, capsys):
        code, out = run_cli(capsys, "fig09")
        assert code == 0
        assert "BurstLink" in out and "5K" in out

    def test_sec64(self, capsys):
        code, out = run_cli(capsys, "sec64")
        assert code == 0
        assert "zhang" in out and "vip" in out

    def test_timeline_burstlink(self, capsys):
        code, out = run_cli(capsys, "timeline", "burstlink")
        assert code == 0
        assert "w0" in out and "C9" in out

    def test_timeline_custom_point(self, capsys):
        code, out = run_cli(
            capsys, "timeline", "conventional",
            "--resolution", "4K", "--fps", "60",
        )
        assert code == 0
        assert "C2" in out

    def test_battery(self, capsys):
        code, out = run_cli(
            capsys, "battery", "--resolution", "FHD", "--fps", "30",
        )
        assert code == 0
        assert "Wh battery" in out and "->" in out

    def test_battery_custom_capacity(self, capsys):
        code, out = run_cli(
            capsys, "battery", "--battery-wh", "30",
        )
        assert code == 0
        assert "30 Wh" in out

    def test_export_json_to_stdout(self, capsys):
        code, out = run_cli(
            capsys, "export", "burstlink", "--frames", "4",
        )
        assert code == 0
        import json

        payload = json.loads(out)
        assert payload["scheme"] == "burstlink"
        assert payload["energy"]["average_power_mw"] > 0

    def test_export_csv_to_stdout(self, capsys):
        code, out = run_cli(
            capsys, "export", "conventional", "--frames", "4",
            "--format", "csv",
        )
        assert code == 0
        header = out.splitlines()[0]
        assert header.startswith("start_s,end_s,state")

    def test_export_to_file(self, capsys, tmp_path):
        target = tmp_path / "run.json"
        code, out = run_cli(
            capsys, "export", "bypass", "--frames", "4",
            "--out", str(target),
        )
        assert code == 0
        assert "wrote" in out
        assert target.exists()

    def test_constants_command(self, capsys):
        code, out = run_cli(capsys, "constants")
        assert code == 0
        assert "soc_floor[C9]" in out
        assert "drfb_active" in out
        assert "58 mW" in out

    def test_figures_command(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "figures", "--out", str(tmp_path / "figs"),
        )
        assert code == 0
        assert "6 figures" in out
        assert (tmp_path / "figs" / "fig09_planar_30fps.svg").exists()
