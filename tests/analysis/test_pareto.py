"""QoS/energy Pareto analysis."""

import pytest

from repro.analysis.pareto import QosPoint, evaluate_qos, pareto_front
from repro.baselines import VipScheme, ZhangScheme
from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
)
from repro.errors import ConfigurationError
from repro.pipeline import ConventionalScheme
from repro.video.source import AnalyticContentModel

SCHEMES = {
    "conventional": (ConventionalScheme(), False),
    "burst": (FrameBurstingScheme(), True),
    "bypass": (FrameBufferBypassScheme(), False),
    "burstlink": (BurstLinkScheme(), True),
    "zhang": (ZhangScheme(), False),
    "vip": (VipScheme(), False),
}


@pytest.fixture(scope="module")
def points():
    config = skylake_tablet(UHD_4K)
    frames = AnalyticContentModel().frames(UHD_4K, 16)
    return evaluate_qos(config, frames, 30.0, dict(SCHEMES))


class TestDominance:
    def test_strict_dominance(self):
        better = QosPoint("a", 30.0, 1000.0, 0)
        worse = QosPoint("b", 30.0, 2000.0, 0)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_equal_points_do_not_dominate(self):
        a = QosPoint("a", 30.0, 1000.0, 0)
        b = QosPoint("b", 30.0, 1000.0, 0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_incomparable(self):
        fast = QosPoint("fast", 60.0, 3000.0, 0)
        frugal = QosPoint("frugal", 30.0, 1000.0, 0)
        assert not fast.dominates(frugal)
        assert not frugal.dominates(fast)


class TestEvaluation:
    def test_every_scheme_present(self, points):
        assert {p.scheme for p in points} == set(SCHEMES)

    def test_no_scheme_drops_frames_at_4k30(self, points):
        """The central QoS check: every scheme holds 30 effective FPS
        at the paper's 4K operating point."""
        for point in points:
            assert point.effective_fps == pytest.approx(30.0)
            assert point.deadline_misses == 0

    def test_burstlink_dominates_conventional(self, points):
        by_name = {p.scheme: p for p in points}
        assert by_name["burstlink"].dominates(by_name["conventional"])

    def test_empty_schemes_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_qos(
                skylake_tablet(FHD),
                AnalyticContentModel().frames(FHD, 4),
                30.0,
                {},
            )


class TestParetoFront:
    def test_burstlink_on_the_front(self, points):
        front = pareto_front(points)
        assert "burstlink" in {p.scheme for p in front}

    def test_conventional_not_on_the_front(self, points):
        front = pareto_front(points)
        assert "conventional" not in {p.scheme for p in front}

    def test_front_sorted_by_power(self, points):
        front = pareto_front(points)
        powers = [p.average_power_mw for p in front]
        assert powers == sorted(powers)

    def test_front_is_mutually_nondominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                assert not a.dominates(b) or a is b

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_front([])
