"""The declarative figure registry: extraction, metric keys, interval
merging, Vega-Lite emission, and golden byte-pinning.

Regenerating the pinned specs/CSVs (after an intentional change)::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/analysis/test_figures.py

then review the diff of ``tests/golden/specs/*`` like any other code
change before committing.
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis.figures import (
    INTERVAL_FIELDS,
    VALUE_FIELD,
    VEGA_LITE_SCHEMA,
    Figure,
    figure_csv,
    figure_metrics,
    figure_records,
    figure_registry,
    get_figure,
    merge_seed_records,
    metric_key,
    vega_lite_spec,
    write_figure_files,
)
from repro.analysis.runner import exhibit_registry, run_exhibit
from repro.analysis.vega import spec_problems, validate_spec
from repro.errors import ConfigurationError, SimulationError

GOLDEN_DIR = (
    Path(__file__).resolve().parent.parent / "golden" / "specs"
)

#: The exhibits whose emitted spec + CSV are byte-pinned.
PINNED = ("table2", "fig09", "standby", "oled", "netstream")


def _maybe_update(path: Path, text: str) -> bool:
    if os.environ.get("REPRO_UPDATE_GOLDEN") == "1":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return True
    return False


def _assert_matches_golden(path: Path, text: str) -> None:
    _maybe_update(path, text)
    assert path.exists(), (
        f"missing golden {path}; regenerate with "
        "REPRO_UPDATE_GOLDEN=1"
    )
    assert path.read_bytes() == text.encode("utf-8"), (
        f"emitted figure artifact drifted from {path}; if the change "
        "is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and "
        "review the diff"
    )


@pytest.fixture(scope="module")
def pinned_records():
    return {
        name: figure_records(
            get_figure(name),
            run_exhibit(get_figure(name).exhibit).result,
        )
        for name in PINNED
    }


class TestRegistry:
    def test_every_exhibit_has_a_figure(self):
        assert set(
            figure.exhibit for figure in figure_registry().values()
        ) == set(exhibit_registry())

    def test_eighteen_figures(self):
        assert len(figure_registry()) == 18

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigurationError):
            get_figure("fig99")

    def test_names_match_keys(self):
        assert all(
            name == figure.name
            for name, figure in figure_registry().items()
        )


class TestRecords:
    def test_records_carry_declared_fields(self, pinned_records):
        figure = get_figure("table2")
        for record in pinned_records["table2"]:
            assert set(record) == set(figure.fields) | {VALUE_FIELD}

    def test_metric_keys_unique_per_figure(self, pinned_records):
        for name, records in pinned_records.items():
            figure = get_figure(name)
            keys = [metric_key(figure, r) for r in records]
            assert len(keys) == len(set(keys))

    def test_metric_key_format(self):
        figure = get_figure("fig09")
        key = metric_key(
            figure,
            {"resolution": "FHD", "technique": "burstlink",
             VALUE_FIELD: 0.4},
        )
        assert key == "fig09.FHD.burstlink"

    def test_figure_metrics_values(self, pinned_records):
        figure = get_figure("standby")
        metrics = figure_metrics(
            figure, run_exhibit("standby").result
        )
        assert metrics == {
            metric_key(figure, r): r[VALUE_FIELD]
            for r in pinned_records["standby"]
        }

    def test_rejects_wrong_fields(self):
        figure = Figure(
            name="bad", exhibit="fig04", title="t",
            fields=("phase",), extract=lambda r: [{"oops": 1.0}],
        )
        with pytest.raises(SimulationError):
            figure_records(figure, object())

    def test_rejects_non_finite_value(self):
        figure = Figure(
            name="bad", exhibit="fig04", title="t",
            fields=("phase",),
            extract=lambda r: [
                {"phase": "a", VALUE_FIELD: float("nan")}
            ],
        )
        with pytest.raises(SimulationError):
            figure_records(figure, object())

    def test_rejects_zero_records(self):
        figure = Figure(
            name="bad", exhibit="fig04", title="t",
            fields=("phase",), extract=lambda r: [],
        )
        with pytest.raises(SimulationError):
            figure_records(figure, object())


class TestMergeSeedRecords:
    def _records(self, value):
        return [{"phase": "browsing", VALUE_FIELD: value}]

    def test_interval_columns(self):
        figure = get_figure("fig04")
        merged = merge_seed_records(
            figure,
            [
                [{"phase": "a", VALUE_FIELD: 10.0},
                 {"phase": "b", VALUE_FIELD: 1.0}],
                [{"phase": "a", VALUE_FIELD: 12.0},
                 {"phase": "b", VALUE_FIELD: 3.0}],
            ],
        )
        assert [r["phase"] for r in merged] == ["a", "b"]
        first = merged[0]
        assert set(first) == {
            "phase", VALUE_FIELD, *INTERVAL_FIELDS,
        }
        assert first[VALUE_FIELD] == pytest.approx(11.0)
        assert first["seeds"] == 2
        assert first["value_lo"] <= 11.0 <= first["value_hi"]

    def test_deterministic(self):
        figure = get_figure("fig04")
        per_seed = [self._records(10.0), self._records(12.0)]
        assert merge_seed_records(
            figure, per_seed
        ) == merge_seed_records(figure, per_seed)

    def test_rejects_key_drift_across_seeds(self):
        figure = get_figure("fig04")
        with pytest.raises(SimulationError):
            merge_seed_records(
                figure,
                [
                    self._records(10.0),
                    [{"phase": "other", VALUE_FIELD: 1.0}],
                ],
            )


class TestCsvEmission:
    def test_pinned_column_order(self, pinned_records):
        text = figure_csv(
            get_figure("table2"), pinned_records["table2"]
        )
        assert text.splitlines()[0] == "scheme,state,measure,value"

    def test_interval_columns_appended(self):
        figure = get_figure("fig04")
        merged = merge_seed_records(
            figure,
            [
                [{"phase": "a", VALUE_FIELD: 10.0}],
                [{"phase": "a", VALUE_FIELD: 12.0}],
            ],
        )
        header = figure_csv(figure, merged).splitlines()[0]
        assert header == (
            "phase,value,value_lo,value_hi,value_sd,seeds"
        )


class TestSpecEmission:
    def test_every_spec_is_structurally_valid(self):
        for name, figure in figure_registry().items():
            for interval in (False, True):
                spec = vega_lite_spec(figure, interval=interval)
                assert spec_problems(spec) == [], name
                assert spec["$schema"] == VEGA_LITE_SCHEMA
                assert spec["data"] == {"url": f"{name}.csv"}

    def test_interval_spec_layers_errorbar(self):
        spec = vega_lite_spec(get_figure("fig09"), interval=True)
        marks = [layer["mark"]["type"] for layer in spec["layer"]]
        assert marks == ["bar", "errorbar"]
        error = spec["layer"][1]["encoding"]
        assert error["y"]["field"] == "value_lo"
        assert error["y2"]["field"] == "value_hi"

    def test_faceted_interval_spec_uses_facet_operator(self):
        spec = vega_lite_spec(get_figure("table2"), interval=True)
        assert "facet" in spec and "layer" in spec["spec"]
        assert "encoding" not in spec

    def test_grouped_bars_get_x_offset(self):
        spec = vega_lite_spec(get_figure("fig09"))
        assert spec["encoding"]["xOffset"] == {"field": "technique"}

    def test_validate_spec_raises_on_problems(self):
        with pytest.raises(SimulationError):
            validate_spec({"$schema": "wrong"}, "broken")


class TestGoldenArtifacts:
    """The emitted spec + CSV pair is version-controlled text; these
    pins catch any unintended change to either the declarations or the
    simulated numbers."""

    @pytest.mark.parametrize("name", PINNED)
    def test_spec_matches_golden(self, name):
        figure = get_figure(name)
        text = (
            json.dumps(
                vega_lite_spec(figure),
                indent=2, sort_keys=True, allow_nan=False,
            )
            + "\n"
        )
        _assert_matches_golden(
            GOLDEN_DIR / figure.spec_name(), text
        )

    @pytest.mark.parametrize("name", PINNED)
    def test_csv_matches_golden(self, name, pinned_records):
        figure = get_figure(name)
        text = figure_csv(figure, pinned_records[name])
        _assert_matches_golden(GOLDEN_DIR / figure.csv_name(), text)

    def test_interval_spec_matches_golden(self):
        figure = get_figure("fig09")
        text = (
            json.dumps(
                vega_lite_spec(figure, interval=True),
                indent=2, sort_keys=True, allow_nan=False,
            )
            + "\n"
        )
        _assert_matches_golden(
            GOLDEN_DIR / "fig09.interval.vl.json", text
        )


class TestWriteFigureFiles:
    def test_writes_spec_then_csv(self, tmp_path, pinned_records):
        figure = get_figure("fig09")
        written = write_figure_files(
            tmp_path, figure, pinned_records["fig09"]
        )
        assert [p.name for p in written] == [
            "fig09.vl.json", "fig09.csv",
        ]
        spec = json.loads(written[0].read_text(encoding="utf-8"))
        assert spec_problems(spec) == []
        header = written[1].read_text(
            encoding="utf-8"
        ).splitlines()[0]
        assert header == "resolution,technique,value"


class TestRenderFigure:
    """The terminal renderer over the registry — third renderer beside
    SVG and Vega-Lite."""

    def test_point_records(self, pinned_records):
        from repro.analysis.visualize import render_figure

        figure = get_figure("fig09")
        text = render_figure(figure, pinned_records["fig09"])
        lines = text.splitlines()
        assert lines[0] == figure.title
        assert len(lines) == 1 + len(pinned_records["fig09"])
        assert "FHD burstlink" in text
        assert "%" in lines[1] and "|#" in lines[1]

    def test_interval_records_append_ci(self):
        from repro.analysis.visualize import render_figure

        figure = get_figure("fig04")
        merged = merge_seed_records(
            figure,
            [
                [{"phase": "a", VALUE_FIELD: 10.0}],
                [{"phase": "a", VALUE_FIELD: 12.0}],
            ],
        )
        text = render_figure(figure, merged)
        assert "n=2" in text and "[" in text

    def test_rejects_degenerate_input(self):
        from repro.analysis.visualize import render_figure
        from repro.errors import SimulationError as SimError

        figure = get_figure("fig04")
        with pytest.raises(SimError):
            render_figure(figure, [])
        with pytest.raises(SimError):
            render_figure(
                figure,
                [{"phase": "a", VALUE_FIELD: 1.0}],
                width=4,
            )
