"""Calibration sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    PERTURBABLE,
    SensitivityRow,
    perturb_library,
    sensitivity_analysis,
)
from repro.config import FHD, PanelConfig
from repro.dram.states import DramPowerState
from repro.errors import ConfigurationError
from repro.power.calibration import SKYLAKE_TABLET_POWER
from repro.soc.cstates import PackageCState


class TestPerturbLibrary:
    def test_direct_field(self):
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "cpu_active", 1.5
        )
        assert perturbed.cpu_active == pytest.approx(
            1.5 * SKYLAKE_TABLET_POWER.cpu_active
        )

    def test_dram_slope(self):
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "dram_read_slope", 0.5
        )
        assert perturbed.dram.read_mw_per_gbs == pytest.approx(
            0.5 * SKYLAKE_TABLET_POWER.dram.read_mw_per_gbs
        )
        # The untouched slope is preserved.
        assert perturbed.dram.write_mw_per_gbs == (
            SKYLAKE_TABLET_POWER.dram.write_mw_per_gbs
        )

    def test_dram_background(self):
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "dram_background_active", 2.0
        )
        assert perturbed.dram.background_power(
            DramPowerState.ACTIVE
        ) == pytest.approx(
            2.0 * SKYLAKE_TABLET_POWER.dram.background_power(
                DramPowerState.ACTIVE
            )
        )

    def test_soc_floor(self):
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "soc_floor_c2", 0.8
        )
        assert perturbed.floor(PackageCState.C2) == pytest.approx(
            0.8 * SKYLAKE_TABLET_POWER.floor(PackageCState.C2)
        )

    def test_soc_floor_keeps_monotonicity(self):
        """Scaling a deep floor above its shallower neighbour must not
        produce an invalid library."""
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "soc_floor_c9", 5.0
        )
        assert perturbed.floor(PackageCState.C9) <= (
            perturbed.floor(PackageCState.C8)
        )

    def test_base_library_untouched(self):
        before = SKYLAKE_TABLET_POWER.cpu_active
        perturb_library(SKYLAKE_TABLET_POWER, "cpu_active", 3.0)
        assert SKYLAKE_TABLET_POWER.cpu_active == before

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            perturb_library(SKYLAKE_TABLET_POWER, "nonsense", 1.1)

    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            perturb_library(SKYLAKE_TABLET_POWER, "cpu_active", 0.0)

    def test_perturbed_library_still_prices(self):
        perturbed = perturb_library(
            SKYLAKE_TABLET_POWER, "panel_base", 1.2
        )
        assert perturbed.panel_power(PanelConfig(resolution=FHD)) > (
            SKYLAKE_TABLET_POWER.panel_power(
                PanelConfig(resolution=FHD)
            )
        )


class TestSensitivityAnalysis:
    @pytest.fixture(scope="class")
    def rows(self):
        return sensitivity_analysis(
            FHD,
            parameters=(
                "panel_base",
                "dram_read_slope",
                "transition_extra",
                "wifi_streaming",
            ),
            frame_count=12,
        )

    def test_conclusion_stable_everywhere(self, rows):
        """The robustness statement: BurstLink wins at every +/-20%
        perturbation of every constant."""
        assert all(row.conclusion_stable for row in rows)

    def test_swings_are_small(self, rows):
        """No single constant moves the headline by more than ~5
        points."""
        assert all(row.swing < 0.08 for row in rows)

    def test_sorted_by_swing(self, rows):
        swings = [row.swing for row in rows]
        assert swings == sorted(swings, reverse=True)

    def test_base_reduction_consistent(self, rows):
        bases = {round(row.reduction_base, 6) for row in rows}
        assert len(bases) == 1

    def test_all_perturbable_names_valid(self):
        for parameter in PERTURBABLE:
            perturb_library(SKYLAKE_TABLET_POWER, parameter, 1.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(FHD, parameters=())
        with pytest.raises(ConfigurationError):
            sensitivity_analysis(FHD, spread=1.5)

    def test_row_helpers(self):
        row = SensitivityRow("x", 0.3, 0.4, 0.5)
        assert row.swing == pytest.approx(0.2)
        assert row.conclusion_stable
        assert not SensitivityRow("y", -0.1, 0.2, 0.3).conclusion_stable
