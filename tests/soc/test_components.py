"""Component power states and the PMU resolution rule."""

import pytest

from repro.soc.components import (
    Component,
    ComponentPowerState,
    ComponentSet,
    deepest_package_state,
)
from repro.soc.cstates import PackageCState


class TestComponentTopology:
    def test_cpu_on_die(self):
        assert Component.CPU.on_processor_die

    def test_panel_components_off_die(self):
        assert Component.PIXEL_FORMATTER.on_panel
        assert not Component.PIXEL_FORMATTER.on_processor_die

    def test_dram_neither_die_nor_panel(self):
        assert not Component.DRAM.on_processor_die
        assert not Component.DRAM.on_panel


class TestPowerStates:
    def test_active_is_work(self):
        assert ComponentPowerState.ACTIVE.is_doing_work
        assert ComponentPowerState.LOW_POWER_ACTIVE.is_doing_work

    def test_gated_is_not_work(self):
        assert not ComponentPowerState.CLOCK_GATED.is_doing_work
        assert not ComponentPowerState.POWER_GATED.is_doing_work

    def test_only_power_gated_is_off(self):
        assert ComponentPowerState.POWER_GATED.is_off
        assert not ComponentPowerState.CLOCK_GATED.is_off


class TestDeepestPackageState:
    def test_active_cpu_pins_c0(self):
        assert deepest_package_state(
            Component.CPU, ComponentPowerState.ACTIVE
        ) is PackageCState.C0

    def test_racing_vd_pins_c0(self):
        # The VD shares the graphics rail: full-rate decode keeps the
        # package at C0 — the baseline behaviour.
        assert deepest_package_state(
            Component.VIDEO_DECODER, ComponentPowerState.ACTIVE
        ) is PackageCState.C0

    def test_low_power_vd_allows_c7(self):
        # BurstLink's latency-tolerant decode runs inside package C7.
        assert deepest_package_state(
            Component.VIDEO_DECODER,
            ComponentPowerState.LOW_POWER_ACTIVE,
        ) is PackageCState.C7

    def test_clock_gated_vd_allows_c7_prime(self):
        assert deepest_package_state(
            Component.VIDEO_DECODER, ComponentPowerState.CLOCK_GATED
        ) is PackageCState.C7_PRIME

    def test_active_dram_caps_at_c2(self):
        assert deepest_package_state(
            Component.DRAM, ComponentPowerState.ACTIVE
        ) is PackageCState.C2

    def test_dram_self_refresh_allows_deep(self):
        assert deepest_package_state(
            Component.DRAM, ComponentPowerState.SELF_REFRESH
        ) is PackageCState.C10

    def test_active_dc_caps_at_c8(self):
        assert deepest_package_state(
            Component.DISPLAY_CONTROLLER, ComponentPowerState.ACTIVE
        ) is PackageCState.C8

    def test_power_gated_allows_deepest(self):
        assert deepest_package_state(
            Component.CPU, ComponentPowerState.POWER_GATED
        ) is PackageCState.C10

    def test_panel_components_do_not_block(self):
        assert deepest_package_state(
            Component.LCD, ComponentPowerState.ACTIVE
        ) is PackageCState.C10


class TestComponentSet:
    def test_empty_set_resolves_deepest(self):
        assert ComponentSet().resolve_package_state() is (
            PackageCState.C10
        )

    def test_single_active_core(self):
        components = ComponentSet()
        components.set(Component.CPU, ComponentPowerState.ACTIVE)
        assert components.resolve_package_state() is PackageCState.C0

    def test_busiest_component_wins(self):
        components = ComponentSet()
        components.set(Component.DRAM, ComponentPowerState.ACTIVE)
        components.set(
            Component.DISPLAY_CONTROLLER, ComponentPowerState.ACTIVE
        )
        # DRAM (C2 cap) is shallower than the DC (C8 cap).
        assert components.resolve_package_state() is PackageCState.C2

    def test_burstlink_decode_window(self):
        # BurstLink's decode-burst: VD low-power + DC active -> C7.
        components = ComponentSet()
        components.set(
            Component.VIDEO_DECODER,
            ComponentPowerState.LOW_POWER_ACTIVE,
        )
        components.set(
            Component.DISPLAY_CONTROLLER, ComponentPowerState.ACTIVE
        )
        assert components.resolve_package_state() is PackageCState.C7

    def test_burstlink_drain_window(self):
        # VD clock-gated while the DC drains -> C7'.
        components = ComponentSet()
        components.set(
            Component.VIDEO_DECODER, ComponentPowerState.CLOCK_GATED
        )
        components.set(
            Component.DISPLAY_CONTROLLER, ComponentPowerState.ACTIVE
        )
        assert components.resolve_package_state() is (
            PackageCState.C7_PRIME
        )

    def test_power_gating_clears_entry(self):
        components = ComponentSet()
        components.set(Component.CPU, ComponentPowerState.ACTIVE)
        components.set(Component.CPU, ComponentPowerState.POWER_GATED)
        assert components.get(Component.CPU) is (
            ComponentPowerState.POWER_GATED
        )
        assert components.resolve_package_state() is PackageCState.C10

    def test_working_components(self):
        components = ComponentSet()
        components.set(Component.CPU, ComponentPowerState.ACTIVE)
        components.set(
            Component.VIDEO_DECODER, ComponentPowerState.CLOCK_GATED
        )
        assert components.working_components() == {Component.CPU}

    def test_copy_is_independent(self):
        components = ComponentSet()
        components.set(Component.CPU, ComponentPowerState.ACTIVE)
        clone = components.copy()
        clone.set(Component.CPU, ComponentPowerState.POWER_GATED)
        assert components.get(Component.CPU) is (
            ComponentPowerState.ACTIVE
        )

    def test_iteration(self):
        components = ComponentSet()
        components.set(Component.WIFI, ComponentPowerState.ACTIVE)
        assert dict(components) == {
            Component.WIFI: ComponentPowerState.ACTIVE
        }
