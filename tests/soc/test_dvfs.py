"""DVFS ladders and the race-vs-stretch policies."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.dvfs import (
    DvfsLadder,
    OperatingPoint,
    skylake_vd_ladder,
)
from repro.units import mib


@pytest.fixture
def ladder():
    return skylake_vd_ladder()


class TestValidation:
    def test_points_must_ascend(self):
        with pytest.raises(ConfigurationError):
            DvfsLadder(
                points=(
                    OperatingPoint("A", 2e9, 1.0, 1.0),
                    OperatingPoint("B", 1e9, 0.8, 1.0),
                ),
                ceff_nf=1.0,
                bytes_per_cycle=1.0,
            )

    def test_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            DvfsLadder(
                points=(OperatingPoint("A", 1e9, 1.0, 1.0),),
                ceff_nf=1.0,
                bytes_per_cycle=1.0,
            )

    def test_bad_point_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingPoint("bad", 0, 1.0, 0)


class TestPhysics:
    def test_dynamic_power_cubic_in_ladder(self, ladder):
        """Higher points pay V^2*f: power rises much faster than
        frequency."""
        low, high = ladder.points[0], ladder.points[-1]
        frequency_ratio = high.frequency_hz / low.frequency_hz
        power_ratio = (
            ladder.dynamic_power_mw(high)
            / ladder.dynamic_power_mw(low)
        )
        assert power_ratio > 1.5 * frequency_ratio

    def test_throughput_linear_in_frequency(self, ladder):
        low, high = ladder.points[0], ladder.points[-1]
        assert ladder.throughput(high) / ladder.throughput(low) == (
            pytest.approx(high.frequency_hz / low.frequency_hz)
        )

    def test_top_point_matches_decoder_config(self, ladder):
        """The ladder's turbo throughput equals the configured decoder
        maximum (12 GB/s)."""
        assert ladder.throughput(ladder.top) == pytest.approx(12e9)

    def test_work_energy_consistency(self, ladder):
        point = ladder.points[1]
        work = mib(6)
        assert ladder.work_energy_mj(point, work) == pytest.approx(
            ladder.power_mw(point) * ladder.work_time(point, work)
        )

    def test_slow_point_less_active_energy(self, ladder):
        """Per unit of work, the low-voltage point spends less active
        energy — the premise of the latency-tolerant decoder."""
        work = mib(6)
        assert ladder.work_energy_mj(
            ladder.points[0], work
        ) < ladder.work_energy_mj(ladder.top, work)


class TestPolicies:
    def test_race_always_picks_top(self, ladder):
        assert ladder.race_to_idle(mib(1)) is ladder.top

    def test_stretch_picks_slowest_feasible(self, ladder):
        work = mib(6)
        generous = ladder.deadline_stretch(work, deadline_s=1.0)
        assert generous is ladder.points[0]

    def test_stretch_tightens_with_deadline(self, ladder):
        work = mib(24)
        tight = ladder.work_time(ladder.top, work) * 1.05
        assert ladder.deadline_stretch(work, tight) is ladder.top

    def test_stretch_falls_back_to_top_when_infeasible(self, ladder):
        work = mib(24)
        impossible = ladder.work_time(ladder.top, work) / 2
        assert ladder.deadline_stretch(work, impossible) is ladder.top

    def test_stretch_rejects_bad_deadline(self, ladder):
        with pytest.raises(ConfigurationError):
            ladder.deadline_stretch(mib(1), 0)


class TestEnergyOptimal:
    def test_no_platform_gap_favours_stretching(self, ladder):
        """With no platform cost to being awake, the cheapest-per-work
        point wins — BurstLink's C7 situation."""
        work = mib(6)
        chosen = ladder.energy_optimal(
            work, deadline_s=1.0, platform_active_mw=0.0
        )
        assert chosen is ladder.points[0]

    def test_large_platform_gap_favours_racing(self, ladder):
        """When working keeps a ~4 W package-C0 floor awake, finishing
        fast wins — the conventional race-to-idle situation."""
        work = mib(6)
        chosen = ladder.energy_optimal(
            work,
            deadline_s=1.0,
            platform_active_mw=4000.0,
            platform_idle_mw=100.0,
        )
        assert chosen is ladder.top

    def test_crossover_exists(self, ladder):
        """Somewhere between the two regimes the optimum moves off both
        endpoints or flips — the knob is real."""
        work = mib(6)
        picks = {
            ladder.energy_optimal(
                work, 1.0, platform_active_mw=gap
            ).name
            for gap in (0.0, 50.0, 500.0, 4000.0)
        }
        assert len(picks) >= 2

    def test_respects_deadline(self, ladder):
        work = mib(24)
        deadline = ladder.work_time(ladder.points[1], work) * 1.01
        chosen = ladder.energy_optimal(
            work, deadline, platform_active_mw=0.0
        )
        assert ladder.work_time(chosen, work) <= deadline

    def test_rejects_negative_platform_power(self, ladder):
        with pytest.raises(ConfigurationError):
            ladder.energy_optimal(
                mib(1), 1.0, platform_active_mw=-1
            )
