"""The VD/DC control registers and the bypass eligibility signals."""

import pytest

from repro.errors import ConfigurationError
from repro.soc.registers import (
    PlaneDescriptor,
    PlaneType,
    RegisterFile,
)


class TestPlaneDescriptor:
    def test_video_plane_cannot_be_static(self):
        with pytest.raises(ConfigurationError):
            PlaneDescriptor(PlaneType.VIDEO, static=True)

    def test_static_background_allowed(self):
        plane = PlaneDescriptor(PlaneType.BACKGROUND, static=True)
        assert plane.static


class TestPlaneManagement:
    def test_register_and_remove(self):
        registers = RegisterFile()
        plane = PlaneDescriptor(PlaneType.GRAPHICS)
        registers.register_plane(plane)
        assert registers.planes == [plane]
        registers.remove_plane(plane)
        assert registers.planes == []

    def test_remove_unregistered_raises(self):
        with pytest.raises(ConfigurationError):
            RegisterFile().remove_plane(
                PlaneDescriptor(PlaneType.CURSOR)
            )

    def test_active_planes_excludes_static(self):
        registers = RegisterFile.windowed_video()
        active = registers.active_planes()
        assert len(active) == 1
        assert active[0].plane_type is PlaneType.VIDEO


class TestVideoSessions:
    def test_open_close(self):
        registers = RegisterFile()
        registers.open_video_session()
        assert registers.single_video
        registers.close_video_session()
        assert not registers.single_video

    def test_two_sessions_break_single_video(self):
        registers = RegisterFile()
        registers.open_video_session()
        registers.open_video_session()
        assert not registers.single_video

    def test_close_without_open_raises(self):
        with pytest.raises(ConfigurationError):
            RegisterFile().close_video_session()


class TestBypassEligibility:
    def test_full_screen_video_is_eligible(self):
        assert RegisterFile.full_screen_video().bypass_eligible

    def test_windowed_video_is_eligible_when_chrome_static(self):
        # Stage two of the windowed flow: video is the only live plane.
        assert RegisterFile.windowed_video().bypass_eligible

    def test_multi_plane_desktop_not_eligible(self):
        assert not RegisterFile.multi_plane_desktop().bypass_eligible

    def test_video_plane_only_false_with_live_graphics(self):
        registers = RegisterFile.full_screen_video()
        registers.register_plane(PlaneDescriptor(PlaneType.GRAPHICS))
        assert not registers.video_plane_only
        assert not registers.bypass_eligible

    def test_second_session_breaks_eligibility(self):
        registers = RegisterFile.full_screen_video()
        registers.open_video_session()
        assert not registers.bypass_eligible


class TestFallbackTriggers:
    """The three Sec. 4.1 fallback conditions."""

    def test_graphics_interrupt(self):
        registers = RegisterFile.full_screen_video()
        registers.graphics_interrupt = True
        assert registers.fallback_required
        assert not registers.bypass_eligible

    def test_psr2_exit(self):
        registers = RegisterFile.windowed_video()
        registers.psr2_exited = True
        assert registers.fallback_required

    def test_multiple_panels(self):
        registers = RegisterFile.full_screen_video()
        registers.panel_count = 2
        assert registers.fallback_required

    def test_no_trigger_by_default(self):
        assert not RegisterFile.full_screen_video().fallback_required
