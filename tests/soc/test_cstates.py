"""Package C-states (paper Table 1)."""

import pytest

from repro.errors import PowerStateError
from repro.soc.cstates import (
    CSTATE_TRANSITIONS,
    ENTRY_CONDITIONS,
    PackageCState,
    TransitionCost,
    deepest_allowed,
    shallowest_required,
    transition_cost,
)


class TestDepthOrdering:
    def test_c0_is_shallowest(self):
        assert min(PackageCState, key=lambda s: s.depth) is (
            PackageCState.C0
        )

    def test_c10_is_deepest(self):
        assert max(PackageCState, key=lambda s: s.depth) is (
            PackageCState.C10
        )

    def test_c7_prime_sits_between_c7_and_c8(self):
        assert (
            PackageCState.C7.depth
            < PackageCState.C7_PRIME.depth
            < PackageCState.C8.depth
        )


class TestReportingFold:
    def test_c7_prime_reports_as_c7(self):
        assert PackageCState.C7_PRIME.reporting_state is PackageCState.C7

    @pytest.mark.parametrize(
        "state",
        [s for s in PackageCState if s is not PackageCState.C7_PRIME],
    )
    def test_other_states_report_as_themselves(self, state):
        assert state.reporting_state is state


class TestDramCoupling:
    """Table 1: DRAM is active only in C0 and C2."""

    @pytest.mark.parametrize(
        "state", [PackageCState.C0, PackageCState.C2]
    )
    def test_dram_active_states(self, state):
        assert not state.dram_in_self_refresh

    @pytest.mark.parametrize(
        "state",
        [
            PackageCState.C3,
            PackageCState.C6,
            PackageCState.C7,
            PackageCState.C8,
            PackageCState.C9,
            PackageCState.C10,
        ],
    )
    def test_dram_self_refresh_states(self, state):
        assert state.dram_in_self_refresh


class TestDisplayPath:
    def test_display_may_stay_on_through_c8(self):
        assert PackageCState.C8.display_path_may_be_on

    def test_display_forced_off_from_c9(self):
        assert not PackageCState.C9.display_path_may_be_on
        assert not PackageCState.C10.display_path_may_be_on


class TestLabels:
    def test_prime_label(self):
        assert PackageCState.C7_PRIME.label == "C7'"
        assert str(PackageCState.C7_PRIME) == "C7'"

    def test_plain_labels(self):
        assert PackageCState.C9.label == "C9"

    def test_every_state_has_entry_conditions(self):
        for state in PackageCState:
            assert state in ENTRY_CONDITIONS
            assert ENTRY_CONDITIONS[state]


class TestTransitionCosts:
    def test_every_state_has_a_cost(self):
        for state in PackageCState:
            assert isinstance(transition_cost(state), TransitionCost)

    def test_c0_is_free(self):
        assert transition_cost(PackageCState.C0).round_trip == 0.0

    def test_deeper_states_cost_more(self):
        # Ignore C7': it's a clock gate, not a package excursion.
        ladder = [
            PackageCState.C2,
            PackageCState.C3,
            PackageCState.C6,
            PackageCState.C7,
            PackageCState.C8,
            PackageCState.C9,
            PackageCState.C10,
        ]
        costs = [transition_cost(s).round_trip for s in ladder]
        assert costs == sorted(costs)

    def test_c7_prime_is_nearly_free(self):
        assert transition_cost(PackageCState.C7_PRIME).round_trip < (
            transition_cost(PackageCState.C7).round_trip
        )

    def test_negative_latency_rejected(self):
        with pytest.raises(PowerStateError):
            TransitionCost(-1.0, 0.0)

    def test_table_is_complete(self):
        assert set(CSTATE_TRANSITIONS) == set(PackageCState)


class TestReductions:
    def test_deepest_allowed(self):
        assert deepest_allowed(
            [PackageCState.C2, PackageCState.C8, PackageCState.C0]
        ) is PackageCState.C8

    def test_shallowest_required(self):
        assert shallowest_required(
            [PackageCState.C2, PackageCState.C8, PackageCState.C9]
        ) is PackageCState.C2

    def test_empty_rejected(self):
        with pytest.raises(PowerStateError):
            deepest_allowed([])
        with pytest.raises(PowerStateError):
            shallowest_required([])
