"""The PMU: resolution caps, firmware variants, and BurstLink signals."""

import pytest

from repro.errors import PowerStateError
from repro.soc.components import Component, ComponentPowerState
from repro.soc.cstates import PackageCState
from repro.soc.pmu import PlatformState, Pmu, PmuFirmware
from repro.units import gbps


def idle_platform(**kwargs) -> PlatformState:
    return PlatformState(**kwargs)


class TestFirmware:
    def test_conventional_has_no_features(self):
        firmware = PmuFirmware.conventional()
        assert not firmware.allow_c9_during_video
        assert not firmware.vd_wakeup_on_dc_empty
        assert not firmware.frame_bursting_enabled

    def test_burstlink_has_all_features(self):
        firmware = PmuFirmware.burstlink()
        assert firmware.allow_c9_during_video
        assert firmware.vd_wakeup_on_dc_empty
        assert firmware.frame_bursting_enabled

    def test_idealised_psr_variant(self):
        firmware = PmuFirmware.conventional().with_idealised_psr_c9()
        assert firmware.allow_c9_during_video
        assert not firmware.frame_bursting_enabled


class TestResolution:
    def test_lit_panel_caps_at_c9(self):
        pmu = Pmu()
        state = pmu.resolve(idle_platform(panel_displaying=True))
        assert state is PackageCState.C9

    def test_dark_panel_allows_c10(self):
        pmu = Pmu()
        platform = idle_platform(panel_displaying=False)
        assert pmu.resolve(platform) is PackageCState.C10

    def test_video_session_demotes_to_c8_on_stock_firmware(self):
        # The measured Table 2 baseline: no C9 residency during video.
        pmu = Pmu(firmware=PmuFirmware.conventional())
        platform = idle_platform(
            video_session_active=True, frame_in_remote_buffer=True
        )
        assert pmu.resolve(platform) is PackageCState.C8

    def test_burstlink_firmware_reaches_c9_during_video(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform(
            video_session_active=True, frame_in_remote_buffer=True
        )
        assert pmu.resolve(platform) is PackageCState.C9

    def test_c9_needs_a_resident_frame(self):
        # Even with BurstLink firmware, C9 is illegal until the frame
        # sits in the remote buffer for self-refresh.
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform(
            video_session_active=True, frame_in_remote_buffer=False
        )
        assert pmu.resolve(platform) is PackageCState.C8

    def test_busy_components_win(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform()
        platform.components.set(
            Component.CPU, ComponentPowerState.ACTIVE
        )
        assert pmu.resolve(platform) is PackageCState.C0


class TestSignals:
    def test_dc_empty_wakes_vd_with_burstlink_firmware(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform()
        platform.components.set(
            Component.VIDEO_DECODER, ComponentPowerState.CLOCK_GATED
        )
        assert pmu.signal_dc_buffer_empty(platform)
        assert platform.components.get(Component.VIDEO_DECODER) is (
            ComponentPowerState.LOW_POWER_ACTIVE
        )
        assert pmu.vd_wakeups == 1

    def test_dc_empty_does_nothing_on_stock_firmware(self):
        pmu = Pmu(firmware=PmuFirmware.conventional())
        platform = idle_platform()
        platform.components.set(
            Component.VIDEO_DECODER, ComponentPowerState.CLOCK_GATED
        )
        assert not pmu.signal_dc_buffer_empty(platform)
        assert pmu.vd_wakeups == 0

    def test_cannot_fast_wake_power_gated_vd(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform()
        with pytest.raises(PowerStateError):
            pmu.signal_dc_buffer_empty(platform)

    def test_dc_full_halts_vd(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform()
        platform.components.set(
            Component.VIDEO_DECODER,
            ComponentPowerState.LOW_POWER_ACTIVE,
        )
        pmu.signal_dc_buffer_full(platform)
        assert platform.components.get(Component.VIDEO_DECODER) is (
            ComponentPowerState.CLOCK_GATED
        )

    def test_oscillation_counts_wakes(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        platform = idle_platform()
        platform.components.set(
            Component.VIDEO_DECODER,
            ComponentPowerState.LOW_POWER_ACTIVE,
        )
        for _ in range(5):
            pmu.signal_dc_buffer_full(platform)
            pmu.signal_dc_buffer_empty(platform)
        assert pmu.vd_wakeups == 5


class TestBurstBandwidth:
    def test_conventional_runs_at_pixel_rate(self):
        pmu = Pmu(firmware=PmuFirmware.conventional())
        assert pmu.burst_bandwidth(gbps(25.92), gbps(11.3)) == (
            pytest.approx(gbps(11.3))
        )

    def test_burstlink_runs_at_link_maximum(self):
        pmu = Pmu(firmware=PmuFirmware.burstlink())
        assert pmu.burst_bandwidth(gbps(25.92), gbps(11.3)) == (
            pytest.approx(gbps(25.92))
        )

    def test_conventional_never_exceeds_link(self):
        pmu = Pmu(firmware=PmuFirmware.conventional())
        assert pmu.burst_bandwidth(gbps(10.0), gbps(11.3)) == (
            pytest.approx(gbps(10.0))
        )


class TestPlatformState:
    def test_copy_is_independent(self):
        platform = idle_platform(video_session_active=True)
        platform.components.set(
            Component.CPU, ComponentPowerState.ACTIVE
        )
        clone = platform.copy()
        clone.components.set(
            Component.CPU, ComponentPowerState.POWER_GATED
        )
        assert platform.components.get(Component.CPU) is (
            ComponentPowerState.ACTIVE
        )
        assert clone.video_session_active
