"""The IO fabric with its DMA and P2P engines."""

import pytest

from repro.errors import ConfigurationError, DataPathError
from repro.soc.interconnect import (
    DmaEngine,
    Interconnect,
    P2PEngine,
)
from repro.units import gb_per_s, mib


@pytest.fixture
def fabric():
    return Interconnect()


@pytest.fixture
def vd_port(fabric):
    return fabric.attach("vd", gb_per_s(12.0))


@pytest.fixture
def dc_port(fabric):
    return fabric.attach("dc", gb_per_s(6.0))


class TestTopology:
    def test_memory_port_preattached(self, fabric):
        assert fabric.port("memory") is fabric.memory_port

    def test_duplicate_name_rejected(self, fabric, vd_port):
        with pytest.raises(ConfigurationError):
            fabric.attach("vd", gb_per_s(1.0))

    def test_unknown_port_lookup(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.port("isp")

    def test_zero_bandwidth_port_rejected(self, fabric):
        with pytest.raises(ConfigurationError):
            fabric.attach("bad", 0.0)

    def test_zero_fabric_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            Interconnect(fabric_bandwidth=0)


class TestTransfers:
    def test_rate_is_bottleneck_of_path(self, fabric, vd_port, dc_port):
        record = fabric.transfer(vd_port, dc_port, mib(6))
        assert record.duration == pytest.approx(mib(6) / gb_per_s(6.0))

    def test_via_dram_flag(self, fabric, vd_port, dc_port):
        to_memory = fabric.transfer(vd_port, fabric.memory_port, 100)
        p2p = fabric.transfer(vd_port, dc_port, 100)
        assert to_memory.via_dram
        assert not p2p.via_dram

    def test_self_transfer_rejected(self, fabric, vd_port):
        with pytest.raises(DataPathError):
            fabric.transfer(vd_port, vd_port, 10)

    def test_negative_size_rejected(self, fabric, vd_port, dc_port):
        with pytest.raises(DataPathError):
            fabric.transfer(vd_port, dc_port, -1)

    def test_foreign_port_rejected(self, fabric, vd_port):
        other = Interconnect()
        foreign = other.attach("dc", gb_per_s(1.0))
        with pytest.raises(DataPathError):
            fabric.transfer(vd_port, foreign, 10)


class TestAccounting:
    def test_dram_read_write_split(self, fabric, vd_port, dc_port):
        DmaEngine(vd_port).to_memory(1000)
        DmaEngine(dc_port).from_memory(400)
        assert fabric.dram_write_bytes == 1000
        assert fabric.dram_read_bytes == 400

    def test_p2p_bytes(self, fabric, vd_port, dc_port):
        P2PEngine(vd_port).send(dc_port, 250)
        assert fabric.p2p_bytes == 250
        assert fabric.dram_read_bytes == 0

    def test_bypass_moves_zero_dram_bytes(self, fabric, vd_port, dc_port):
        """The core claim of Frame Buffer Bypass on the functional
        fabric: a frame routed P2P contributes nothing to DRAM traffic."""
        frame = mib(6)
        P2PEngine(vd_port).send(dc_port, frame)
        assert fabric.dram_read_bytes + fabric.dram_write_bytes == 0
        assert fabric.p2p_bytes == frame

    def test_reset_accounting(self, fabric, vd_port, dc_port):
        P2PEngine(vd_port).send(dc_port, 10)
        fabric.reset_accounting()
        assert fabric.transfers == []
        assert fabric.p2p_bytes == 0


class TestEngines:
    def test_disabled_dma_raises(self, fabric, vd_port):
        engine = DmaEngine(vd_port, enabled=False)
        with pytest.raises(DataPathError):
            engine.to_memory(10)

    def test_disabled_p2p_raises(self, fabric, vd_port, dc_port):
        engine = P2PEngine(vd_port, enabled=False)
        with pytest.raises(DataPathError):
            engine.send(dc_port, 10)

    def test_dma_roundtrip_counts_both_directions(self, fabric, vd_port):
        engine = DmaEngine(vd_port)
        engine.to_memory(500)
        engine.from_memory(500)
        assert fabric.dram_write_bytes == 500
        assert fabric.dram_read_bytes == 500
