"""The paper's headline claims, checked end-to-end through the public
API.  Each test names the claim and where the paper makes it."""

import pytest

import repro
from repro import (
    BurstLinkScheme,
    ConventionalScheme,
    FrameWindowSimulator,
    PowerModel,
    skylake_tablet,
)
from repro.analysis.energy import energy_reduction
from repro.config import FHD, UHD_4K, UHD_5K
from repro.core import HardwareCostModel
from repro.units import to_gbps
from repro.video.source import AnalyticContentModel


def reduction(resolution, fps, frames=24):
    config = skylake_tablet(resolution)
    descriptors = AnalyticContentModel().frames(resolution, frames)
    model = PowerModel()
    base = model.report(
        FrameWindowSimulator(config, ConventionalScheme()).run(
            descriptors, fps
        )
    )
    burst = model.report(
        FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(descriptors, fps)
    )
    return energy_reduction(base, burst)


class TestAbstractClaims:
    def test_4k_planar_reduction_at_least_41_percent(self):
        """Abstract: 41% for 4K planar streaming (our baseline scales
        steeper, so we exceed it)."""
        assert reduction(UHD_4K, 60.0) >= 0.41

    def test_vr_reduction_up_to_33_percent(self):
        """Abstract: 33% for VR streaming."""
        from repro.workloads import VR_WORKLOADS, vr_streaming_run

        model = PowerModel()
        best = 0.0
        for workload in VR_WORKLOADS.values():
            base = model.report(
                vr_streaming_run(
                    workload, ConventionalScheme(), frame_count=16
                )
            )
            burst = model.report(
                vr_streaming_run(
                    workload,
                    BurstLinkScheme(),
                    frame_count=16,
                    with_drfb=True,
                )
            )
            best = max(best, energy_reduction(base, burst))
        assert best == pytest.approx(0.33, abs=0.04)

    def test_reduction_grows_with_resolution_and_refresh(self):
        """Abstract: 'provides an even higher energy reduction in
        future video streaming systems with higher display
        resolutions'."""
        assert reduction(UHD_5K, 30.0) > reduction(FHD, 30.0)
        assert reduction(FHD, 60.0) > reduction(FHD, 30.0)


class TestObservation2:
    def test_conventional_edp_underutilised(self):
        """Sec. 3: conventional 4K 60 Hz streams at ~11.3-11.9 Gbps on
        a 25.92 Gbps link."""
        config = skylake_tablet(UHD_4K)
        rate = to_gbps(config.panel.pixel_update_bandwidth)
        assert rate == pytest.approx(11.9, abs=0.3)
        assert rate / to_gbps(config.edp.max_bandwidth) < 0.5

    def test_burst_frees_over_half_the_window(self):
        """Sec. 3: a 4K frame bursts in ~7.2-7.7 ms of a 16.7 ms
        window."""
        config = skylake_tablet(UHD_4K)
        burst = config.panel.frame_bytes / config.edp.max_bandwidth
        assert burst / config.frame_window == pytest.approx(
            0.46, abs=0.03
        )


class TestGeneralTakeaway:
    def test_dram_as_hub_is_the_inefficiency(self):
        """The paper's takeaway: the DRAM hop is what costs; removing
        it removes the majority of non-panel datapath energy."""
        config = skylake_tablet(UHD_4K)
        frames = AnalyticContentModel().frames(UHD_4K, 16)
        model = PowerModel()
        base_run = FrameWindowSimulator(
            config, ConventionalScheme()
        ).run(frames, 30.0)
        burst_run = FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(frames, 30.0)
        assert burst_run.timeline.dram_total_bytes < (
            0.01 * base_run.timeline.dram_total_bytes
        )

    def test_drfb_cost_negligible_vs_savings(self):
        """Sec. 4.4: the DRFB's 58 mW overhead is far below the
        savings."""
        config = skylake_tablet(UHD_4K)
        frames = AnalyticContentModel().frames(UHD_4K, 16)
        model = PowerModel()
        base = model.report(
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, 60.0
            )
        )
        burst = model.report(
            FrameWindowSimulator(
                config.with_drfb(), BurstLinkScheme()
            ).run(frames, 60.0)
        )
        saved = base.average_power_mw - burst.average_power_mw
        overhead = HardwareCostModel().report(
            config.panel
        ).drfb_power_overhead_mw
        assert saved > 10 * overhead


class TestPublicApi:
    def test_quickstart_snippet_works(self):
        """The README/module-docstring quickstart must run as written."""
        config = repro.skylake_tablet(repro.UHD_4K)
        frames = AnalyticContentModel().frames(repro.UHD_4K, 12)
        baseline = repro.FrameWindowSimulator(
            config, repro.ConventionalScheme()
        ).run(frames, video_fps=60.0)
        burstlink = repro.FrameWindowSimulator(
            config.with_drfb(), repro.BurstLinkScheme()
        ).run(frames, video_fps=60.0)
        model = repro.PowerModel()
        saving = 1 - (
            model.report(burstlink).average_power_mw
            / model.report(baseline).average_power_mw
        )
        assert 0.3 < saving < 0.8

    def test_version_exported(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
