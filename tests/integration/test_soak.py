"""Soak tests: long runs must stay linear, consistent, and bounded.

These exercise the simulator at session length (hundreds of windows)
rather than the handful the unit tests use — the regime where per-window
state hand-off bugs, drift, and quadratic behaviour would surface.
"""

import time

import pytest

from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.soc.cstates import PackageCState
from repro.video.source import AnalyticContentModel

#: Ten seconds of video: 300 frames at 30 FPS = 600 windows at 60 Hz.
FRAMES = 300


@pytest.fixture(scope="module")
def long_baseline():
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(FHD, FRAMES, seed=9)
    return FrameWindowSimulator(config, ConventionalScheme()).run(
        frames, 30.0
    )


@pytest.fixture(scope="module")
def long_burstlink():
    config = skylake_tablet(FHD).with_drfb()
    frames = AnalyticContentModel().frames(FHD, FRAMES, seed=9)
    return FrameWindowSimulator(config, BurstLinkScheme()).run(
        frames, 30.0
    )


class TestLongRuns:
    def test_window_count(self, long_baseline):
        assert long_baseline.stats.windows == 2 * FRAMES

    def test_no_drift_in_window_boundaries(self, long_baseline):
        """After 600 windows, the timeline end matches the analytic
        total exactly — no accumulation error."""
        assert long_baseline.duration == pytest.approx(
            2 * FRAMES / 60.0, abs=1e-9
        )

    def test_no_misses_over_a_session(self, long_baseline,
                                      long_burstlink):
        assert long_baseline.stats.deadline_misses == 0
        assert long_burstlink.stats.deadline_misses == 0

    def test_long_run_matches_short_run_average(self, long_burstlink):
        """Steady-state power over 600 windows equals the 48-window
        estimate: content variation averages out, nothing drifts."""
        config = skylake_tablet(FHD).with_drfb()
        short_frames = AnalyticContentModel().frames(FHD, 24, seed=9)
        short = FrameWindowSimulator(config, BurstLinkScheme()).run(
            short_frames, 30.0
        )
        model = PowerModel()
        long_power = model.report(long_burstlink).average_power_mw
        short_power = model.report(short).average_power_mw
        assert long_power == pytest.approx(short_power, rel=0.02)

    def test_segment_count_linear_in_windows(self, long_baseline):
        """Segments per window stay bounded (no per-window growth)."""
        per_window = len(long_baseline.timeline) / (
            long_baseline.stats.windows
        )
        assert per_window < 40

    def test_residency_stability(self, long_baseline):
        fractions = long_baseline.residency_fractions()
        assert fractions[PackageCState.C0] == pytest.approx(
            0.09, abs=0.02
        )
        assert fractions[PackageCState.C8] == pytest.approx(
            0.80, abs=0.04
        )


class TestThroughput:
    def test_simulation_is_fast_enough(self):
        """A one-second FHD session must simulate well under real time
        (the benches track the exact figure; this is the guard rail)."""
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 60, seed=1)
        start = time.perf_counter()
        FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 60.0
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0
