"""Failure injection: the system's behaviour at and beyond its limits.

These tests deliberately configure infeasible platforms and degraded
inputs and check that failures are *detected and reported* — deadline
misses recorded or raised, underruns counted, fallbacks engaged — never
silently absorbed.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import (
    EdpConfig,
    FHD,
    OrchestrationConfig,
    Resolution,
    SystemConfig,
    UHD_5K,
    VideoDecoderConfig,
    skylake_tablet,
)
from repro.core import BurstLinkScheme, select_scheme
from repro.errors import ConfigurationError, DeadlineMissError
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.soc.registers import RegisterFile
from repro.units import gbps, mbps
from repro.video.source import AnalyticContentModel, StreamSource


class TestInfeasibleConfigurations:
    def test_link_too_slow_is_rejected_at_construction(self):
        """A link that cannot feed the panel is a config error, not a
        runtime surprise."""
        with pytest.raises(ConfigurationError):
            SystemConfig(edp=EdpConfig(max_bandwidth=gbps(1.0)))

    def test_slow_decoder_misses_recorded(self):
        """A decoder too slow for the content records a miss on every
        new-frame window."""
        config = replace(
            skylake_tablet(UHD_5K),
            decoder=VideoDecoderConfig(max_output_rate=1e9),
        )
        frames = AnalyticContentModel().frames(UHD_5K, 6)
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 60.0
        )
        assert run.stats.deadline_misses == (
            run.stats.new_frame_windows
        )

    def test_slow_decoder_raises_in_strict_mode(self):
        config = replace(
            skylake_tablet(UHD_5K),
            decoder=VideoDecoderConfig(max_output_rate=1e9),
            strict_deadlines=True,
        )
        frames = AnalyticContentModel().frames(UHD_5K, 6)
        with pytest.raises(DeadlineMissError):
            FrameWindowSimulator(config, ConventionalScheme()).run(
                frames, 60.0
            )

    def test_enormous_orchestration_misses(self):
        config = replace(
            skylake_tablet(FHD),
            orchestration=OrchestrationConfig(
                baseline_per_frame=0.020  # longer than the window
            ),
        )
        frames = AnalyticContentModel().frames(FHD, 4)
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 60.0
        )
        assert run.stats.deadline_misses > 0

    def test_timeline_stays_valid_under_misses(self):
        """Even a missing window must produce a full, contiguous
        timeline (the panel still refreshes; the frame is just late)."""
        config = replace(
            skylake_tablet(UHD_5K),
            decoder=VideoDecoderConfig(max_output_rate=1e9),
        )
        frames = AnalyticContentModel().frames(UHD_5K, 6)
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 60.0
        )
        assert run.duration == pytest.approx(
            run.stats.windows / 60.0
        )
        assert sum(run.residency_fractions().values()) == (
            pytest.approx(1.0)
        )

    def test_burstlink_degrades_not_crashes_on_slow_decoder(self):
        config = replace(
            skylake_tablet(UHD_5K),
            decoder=VideoDecoderConfig(max_output_rate=1.5e9),
        ).with_drfb()
        frames = AnalyticContentModel().frames(UHD_5K, 6)
        run = FrameWindowSimulator(config, BurstLinkScheme()).run(
            frames, 60.0
        )
        # It may or may not miss depending on the stretch policy, but
        # the run must complete and account for all time.
        assert run.duration > 0


class TestNetworkDegradation:
    def test_starved_stream_counts_underruns(self):
        frames = AnalyticContentModel().frames(FHD, 20)
        source = StreamSource(
            frames=frames, bandwidth=mbps(0.5), prebuffer_frames=1
        )
        for index in range(20):
            source.pop_frame(index / 30.0)
        assert source.underruns > 10

    def test_ample_bandwidth_has_no_underruns(self):
        frames = AnalyticContentModel().frames(FHD, 20)
        source = StreamSource(
            frames=frames, bandwidth=mbps(200), prebuffer_frames=2
        )
        start = source.startup_delay
        for index in range(20):
            source.pop_frame(start + (index + 1) / 30.0)
        assert source.underruns == 0


class TestRuntimeFallbacks:
    def test_user_input_mid_session_forces_conventional(self):
        """A PSR2 exit (touch) must flip the selector to the
        conventional scheme on the next selection."""
        registers = RegisterFile.windowed_video()
        assert select_scheme(registers).name == "windowed-video"
        registers.psr2_exited = True
        assert select_scheme(registers).name == "conventional"
        registers.psr2_exited = False
        assert select_scheme(registers).name == "windowed-video"

    def test_new_plane_mid_session_forces_conventional(self):
        registers = RegisterFile.full_screen_video()
        assert select_scheme(registers).name == "burstlink"
        registers.graphics_interrupt = True
        assert select_scheme(registers).name == "conventional"

    def test_second_app_breaks_bypass(self):
        registers = RegisterFile.full_screen_video()
        registers.open_video_session()
        assert select_scheme(registers).name != "burstlink"


class TestExtremeGeometry:
    def test_tiny_panel_still_simulates(self):
        config = SystemConfig(
            panel=replace(
                skylake_tablet(FHD).panel,
                resolution=Resolution(160, 96),
            )
        )
        frames = AnalyticContentModel().frames(
            Resolution(160, 96), 4
        )
        run = FrameWindowSimulator(config, ConventionalScheme()).run(
            frames, 30.0
        )
        assert run.stats.deadline_misses == 0

    def test_low_fps_on_high_refresh(self):
        config = skylake_tablet(FHD, refresh_hz=120.0)
        frames = AnalyticContentModel().frames(FHD, 4)
        run = FrameWindowSimulator(
            config.with_drfb(), BurstLinkScheme()
        ).run(frames, 12.0)
        # 12 FPS on 120 Hz: nine repeat windows per new frame.
        assert run.stats.repeat_windows == (
            9 * run.stats.new_frame_windows
        )


class TestFleetCrashRecovery:
    """Kill a checkpointed fleet run mid-flight with SIGKILL and prove
    ``--resume`` reconstructs the exact report the uninterrupted run
    produces — without re-simulating any completed device."""

    SPEC = {
        "fleet": {
            "devices": 48,
            "seed": 7,
            "shard_size": 4,
            "schemes": ["burstlink"],
            "content_seeds": 2,
        },
        "axes": {
            "resolution": {"values": ["FHD", "QHD"]},
            "fps": {"values": [30.0, 60.0]},
        },
        "workloads": [{"name": "stream", "kind": "video", "frames": 8}],
    }

    @staticmethod
    def _spec_file(tmp_path):
        path = tmp_path / "fleet.toml"
        path.write_text(
            "[fleet]\n"
            "devices = 48\nseed = 7\nshard_size = 4\n"
            'schemes = ["burstlink"]\ncontent_seeds = 2\n'
            "[axes.resolution]\nvalues = [\"FHD\", \"QHD\"]\n"
            "[axes.fps]\nvalues = [30.0, 60.0]\n"
            "[[workloads]]\n"
            'name = "stream"\nkind = "video"\nframes = 8\n',
            encoding="utf-8",
        )
        return path

    @staticmethod
    def _run_cli(argv, timeout_s=None):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        src = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        env["PYTHONPATH"] = src
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env=env,
            timeout=timeout_s,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        import signal
        import subprocess
        import sys
        import os
        import time

        spec_file = self._spec_file(tmp_path)
        reference = tmp_path / "reference.json"
        result = self._run_cli(
            [
                "fleet", "run", str(spec_file),
                "--jobs", "2", "--out", str(reference),
            ],
            timeout_s=600,
        )
        assert result.returncode == 0, result.stderr

        checkpoint = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[2] / "src"
        )
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro",
                "fleet", "run", str(spec_file),
                "--jobs", "2",
                "--checkpoint", str(checkpoint),
                "--progress",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        # Wait for roughly half the shards to be checkpointed, then
        # SIGKILL — no cleanup, no atexit, mid-write is fair game.
        shards = checkpoint / "shards"
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                pytest.fail(
                    "victim finished before it could be killed; "
                    "enlarge the fleet"
                )
            if shards.is_dir() and len(list(shards.glob("*.json"))) >= 6:
                break
            time.sleep(0.05)
        else:
            pytest.fail("no shards checkpointed within the deadline")
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)

        survivors = set(shards.glob("*.json"))
        assert survivors, "checkpoint lost its shards after SIGKILL"
        before = {
            path.name: path.stat().st_mtime_ns for path in survivors
        }

        resumed = tmp_path / "resumed.json"
        result = self._run_cli(
            [
                "fleet", "run", str(spec_file),
                "--jobs", "2",
                "--checkpoint", str(checkpoint),
                "--resume", "--out", str(resumed),
            ],
            timeout_s=600,
        )
        assert result.returncode == 0, result.stderr
        assert resumed.read_bytes() == reference.read_bytes()

        # No completed device ran twice: surviving shard files were
        # reused verbatim, not rewritten.
        for path in survivors:
            assert (
                path.stat().st_mtime_ns == before[path.name]
            ), f"{path.name} was re-simulated on resume"

    def test_report_command_reads_the_checkpoint(self, tmp_path):
        spec_file = self._spec_file(tmp_path)
        checkpoint = tmp_path / "ckpt"
        out = tmp_path / "run.json"
        result = self._run_cli(
            [
                "fleet", "run", str(spec_file),
                "--jobs", "2",
                "--checkpoint", str(checkpoint),
                "--out", str(out),
            ],
            timeout_s=600,
        )
        assert result.returncode == 0, result.stderr
        report = self._run_cli(
            ["fleet", "report", str(checkpoint), "--json"],
            timeout_s=600,
        )
        assert report.returncode == 0, report.stderr
        assert report.stdout.encode("utf-8") == out.read_bytes()

    def test_partial_checkpoint_report_exits_nonzero(self, tmp_path):
        from repro.fleet import spec_from_dict
        from repro.fleet.checkpoint import FleetCheckpoint
        from repro.fleet.pool import _simulate_range

        spec = spec_from_dict(self.SPEC)
        checkpoint = tmp_path / "ckpt"
        store = FleetCheckpoint(checkpoint)
        store.initialize(spec, resume=False)
        store.write_shard(0, 0, 4, _simulate_range(spec, 0, 4))
        report = self._run_cli(
            ["fleet", "report", str(checkpoint)], timeout_s=600
        )
        assert report.returncode == 1
        assert "incomplete" in (report.stdout + report.stderr)
