"""End-to-end functional datapath: real bytes through every component.

A synthetic clip travels encode -> jitter buffer -> VD -> (P2P or DRAM)
-> DC -> eDP -> DRFB -> pixel formatter, with the traffic accounting
checked at every hop.  This is the integration test of the substrates
the energy model abstracts over.
"""

import numpy as np
import pytest

from repro.config import DisplayControllerConfig, PanelConfig, Resolution
from repro.display import DisplayPanel, DisplayController, EdpLink
from repro.dram.framebuffer import FrameBufferManager
from repro.soc.interconnect import DmaEngine, Interconnect, P2PEngine
from repro.soc.registers import RegisterFile
from repro.units import gb_per_s, gib, kib
from repro.video import Codec, CodecConfig, GopStructure, VideoDecoderIP
from repro.video.frames import DecodedFrame, FrameType


@pytest.fixture
def clip(small_clip):
    return small_clip[:4]


@pytest.fixture
def hardware():
    fabric = Interconnect()
    return {
        "fabric": fabric,
        "vd_port": fabric.attach("vd", gb_per_s(12.0)),
        "dc_port": fabric.attach("dc", gb_per_s(6.0)),
    }


def decode_all(decoder, encoded):
    decoded = {}
    anchors = []
    for frame in encoded:
        if frame.frame_type is FrameType.B:
            continue
        past = decoded[anchors[-1]].pixels if anchors else None
        decoded[frame.index] = decoder.decode(frame, past=past)
        anchors.append(frame.index)
    for frame in encoded:
        if frame.frame_type is not FrameType.B:
            continue
        past = max(a for a in anchors if a < frame.index)
        future = min(a for a in anchors if a > frame.index)
        decoded[frame.index] = decoder.decode(
            frame,
            past=decoded[past].pixels,
            future=decoded[future].pixels,
        )
    return [decoded[f.index] for f in encoded]


class TestBypassPath:
    def test_frame_travels_to_panel_without_dram(self, clip, hardware):
        codec = Codec(CodecConfig(qstep=10.0))
        encoded = codec.encode_sequence(clip)
        decoder = VideoDecoderIP(
            codec=codec, registers=RegisterFile.full_screen_video()
        )
        panel = DisplayPanel(
            PanelConfig(
                resolution=Resolution(96, 64), remote_buffers=2
            )
        )
        link = EdpLink()
        p2p = P2PEngine(hardware["vd_port"])

        for frame in decode_all(decoder, encoded):
            p2p.send(hardware["dc_port"], frame.size_bytes)
            link.transmit(frame.size_bytes, link.config.max_bandwidth)
            panel.receive_frame(frame.index, frame.size_bytes)
            panel.swap_buffers()
            panel.refresh()

        fabric = hardware["fabric"]
        assert fabric.dram_read_bytes == 0
        assert fabric.dram_write_bytes == 0
        assert fabric.p2p_bytes == sum(f.nbytes for f in clip)
        assert link.bytes_transferred == sum(f.nbytes for f in clip)
        assert panel.refreshes == len(clip)
        assert panel.remote_buffer.swaps == len(clip)

    def test_quality_preserved_through_pipeline(self, clip):
        codec = Codec(CodecConfig(qstep=8.0, gop=GopStructure("IPPP")))
        encoded = codec.encode_sequence(clip)
        decoder = VideoDecoderIP(codec=codec)
        decoded = decode_all(decoder, encoded)
        for original, output in zip(clip, decoded):
            reference = DecodedFrame(
                output.index, output.frame_type, original
            )
            assert output.psnr(reference) > 35.0


class TestConventionalPath:
    def test_frame_round_trips_dram(self, clip, hardware):
        """The conventional flow: VD DMA-writes the decoded frame, the
        DC DMA-reads it back chunk by chunk."""
        codec = Codec(CodecConfig(qstep=10.0))
        encoded = codec.encode_sequence(clip)
        decoder = VideoDecoderIP(codec=codec)  # no registers -> DRAM
        frame_bytes = clip[0].nbytes
        buffers = FrameBufferManager(dram_capacity=gib(1))
        buffers.allocate("video", frame_bytes, slots=2)
        dc = DisplayController(
            DisplayControllerConfig(
                buffer_size=kib(16), chunk_size=kib(8)
            )
        )
        vd_dma = DmaEngine(hardware["vd_port"])
        dc_dma = DmaEngine(hardware["dc_port"])

        for frame in decode_all(decoder, encoded):
            slot = buffers.region("video").acquire_slot()
            vd_dma.to_memory(frame.size_bytes)
            buffers.write("video", frame.size_bytes)
            # Chunked fetch through the DC's double buffer.
            remaining = frame.size_bytes
            while remaining > 0:
                chunk = min(dc.config.chunk_size, remaining)
                dc_dma.from_memory(chunk)
                buffers.read("video", chunk)
                dc.fill(chunk)
                dc.drain(chunk)
                remaining -= chunk
            buffers.region("video").release_slot(slot)

        fabric = hardware["fabric"]
        total = frame_bytes * len(clip)
        assert fabric.dram_write_bytes == total
        assert fabric.dram_read_bytes == total
        assert buffers.total_traffic == 2 * total
        assert dc.is_empty

    def test_decoder_destination_accounting(self, clip):
        codec = Codec(CodecConfig(qstep=10.0))
        encoded = codec.encode_sequence(clip)
        decoder = VideoDecoderIP(codec=codec)
        decode_all(decoder, encoded)
        assert decoder.bytes_to_dram == sum(f.nbytes for f in clip)
        assert decoder.bytes_to_dc == 0
