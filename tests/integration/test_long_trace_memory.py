"""The long-trace memory gate.

Summary retention exists so that trace length never shows up in memory:
a 10-minute ambient-standby run must peak within 25% of a 1-minute run.
This is the CI gate behind ``make long-trace`` — if a change starts
accumulating per-window state (segments, plans, digests), the 10x
duration blows straight through the bound.
"""

import tracemalloc

from repro.pipeline import ConventionalScheme
from repro.pipeline.sim import install_run_memo
from repro.workloads.standby import (
    AmbientStandbyWorkload,
    ambient_standby_run,
)


def _peak_bytes(duration_s):
    """Peak traced allocation of one summary-mode ambient run."""
    workload = AmbientStandbyWorkload(duration_s=duration_s)
    tracemalloc.start()
    try:
        run = ambient_standby_run(
            workload, ConventionalScheme(), retain="summary"
        )
        assert run.timeline is None
        assert run.stats.windows == workload.window_count
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_summary_mode_memory_is_flat_in_duration():
    previous = install_run_memo(None)
    try:
        # Warm-up run: lazy imports, metric registrations, and interned
        # objects land outside the measured windows.
        _peak_bytes(10.0)
        one_minute = _peak_bytes(60.0)
        ten_minutes = _peak_bytes(600.0)
    finally:
        install_run_memo(previous)
    assert ten_minutes <= one_minute * 1.25, (
        f"10-minute trace peaked at {ten_minutes} bytes, "
        f"1-minute at {one_minute} — summary mode is no longer O(1)"
    )
