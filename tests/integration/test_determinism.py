"""Determinism: every experiment must reproduce itself exactly.

Reproduction work is worthless if two runs disagree; all randomness in
the stack is seeded (content sizes, head traces, browsing activity), so
identical calls must return identical numbers — bit-for-bit, not just
approximately.
"""

from repro.analysis.experiments import (
    fig09_planar_reduction_30fps,
    fig11a_vr_workloads,
    table2_power_comparison,
)
from repro.analysis.runner import cache_disabled, run_exhibits
from repro.config import FHD, skylake_tablet
from repro.pipeline.sim import run_fingerprint
from repro.core import BurstLinkScheme
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel
from repro.workloads.browsing import browsing_timeline
from repro.workloads.scenario import streaming_session


class TestRunDeterminism:
    def test_identical_runs_identical_energy(self):
        def once():
            config = skylake_tablet(FHD).with_drfb()
            frames = AnalyticContentModel().frames(FHD, 12, seed=5)
            run = FrameWindowSimulator(config, BurstLinkScheme()).run(
                frames, 30.0
            )
            return PowerModel().report(run).total_energy_mj

        assert once() == once()

    def test_identical_timelines_segment_for_segment(self):
        def once():
            config = skylake_tablet(FHD)
            frames = AnalyticContentModel().frames(FHD, 8, seed=3)
            return FrameWindowSimulator(
                config, ConventionalScheme()
            ).run(frames, 60.0).timeline

        a, b = once(), once()
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert left == right


class TestExperimentDeterminism:
    def test_table2_reproduces(self):
        first = table2_power_comparison()
        second = table2_power_comparison()
        assert first.baseline_avg_mw == second.baseline_avg_mw
        assert first.burstlink_avg_mw == second.burstlink_avg_mw

    def test_fig09_reproduces(self):
        assert (
            fig09_planar_reduction_30fps().reductions
            == fig09_planar_reduction_30fps().reductions
        )

    def test_fig11a_reproduces(self):
        assert (
            fig11a_vr_workloads(frame_count=8).reductions
            == fig11a_vr_workloads(frame_count=8).reductions
        )


class TestEngineParity:
    """The parallel + cached engine must change nothing but the clock."""

    EXHIBITS = ("fig01", "fig09", "table2")

    def test_cached_matches_uncached(self):
        with cache_disabled():
            plain = run_exhibits(self.EXHIBITS)
        cached_cold = run_exhibits(self.EXHIBITS)
        cached_warm = run_exhibits(self.EXHIBITS)
        for a, b, c in zip(plain, cached_cold, cached_warm):
            assert a.result == b.result == c.result

    def test_parallel_matches_sequential(self):
        sequential = run_exhibits(self.EXHIBITS, jobs=1)
        parallel = run_exhibits(self.EXHIBITS, jobs=2)
        assert [o.name for o in parallel] == list(self.EXHIBITS)
        for a, b in zip(sequential, parallel):
            assert a.result == b.result

    def test_memoized_run_equals_fresh_run(self):
        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 10, seed=7)

        def once():
            return FrameWindowSimulator(
                config, BurstLinkScheme()
            ).run(frames, 30.0)

        with cache_disabled():
            fresh = once()
        cold, warm = once(), once()
        for run in (cold, warm):
            assert run.stats == fresh.stats
            assert list(run.timeline) == list(fresh.timeline)
            assert (
                PowerModel().report(run).total_energy_mj
                == PowerModel().report(fresh).total_energy_mj
            )


class TestCacheInvalidation:
    """Any change to any run input must change the fingerprint."""

    @staticmethod
    def _fingerprint(config, frames, fps=30.0, scheme=None):
        key = run_fingerprint(
            config, scheme or BurstLinkScheme(), frames, fps
        )
        assert key is not None
        return key

    def test_config_field_change_invalidates(self):
        frames = AnalyticContentModel().frames(FHD, 4, seed=1)
        base = skylake_tablet(FHD).with_drfb()
        baseline = self._fingerprint(base, frames)
        assert self._fingerprint(base, frames) == baseline
        assert self._fingerprint(
            skylake_tablet(FHD), frames
        ) != baseline

    def test_cadence_and_frames_invalidate(self):
        config = skylake_tablet(FHD).with_drfb()
        frames = AnalyticContentModel().frames(FHD, 4, seed=1)
        baseline = self._fingerprint(config, frames)
        assert self._fingerprint(config, frames, fps=60.0) != baseline
        other = AnalyticContentModel().frames(FHD, 4, seed=2)
        assert self._fingerprint(config, other) != baseline

    def test_scheme_identity_invalidates(self):
        config = skylake_tablet(FHD)
        frames = AnalyticContentModel().frames(FHD, 4, seed=1)
        assert self._fingerprint(
            config, frames, scheme=BurstLinkScheme()
        ) != self._fingerprint(
            config, frames, scheme=ConventionalScheme()
        )


class TestGeneratorDeterminism:
    def test_browsing_timeline_reproduces(self):
        config = skylake_tablet(FHD)
        a = browsing_timeline(config, duration_s=1.0, seed=4)
        b = browsing_timeline(config, duration_s=1.0, seed=4)
        assert [s.state for s in a] == [s.state for s in b]

    def test_scenario_reproduces(self):
        a = streaming_session(skylake_tablet(FHD)).play()
        b = streaming_session(skylake_tablet(FHD)).play()
        assert a.average_power_mw == b.average_power_mw
        assert a.scheme_sequence() == b.scheme_sequence()
