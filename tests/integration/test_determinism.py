"""Determinism: every experiment must reproduce itself exactly.

Reproduction work is worthless if two runs disagree; all randomness in
the stack is seeded (content sizes, head traces, browsing activity), so
identical calls must return identical numbers — bit-for-bit, not just
approximately.
"""

from repro.analysis.experiments import (
    fig09_planar_reduction_30fps,
    fig11a_vr_workloads,
    table2_power_comparison,
)
from repro.config import FHD, skylake_tablet
from repro.core import BurstLinkScheme
from repro.pipeline import ConventionalScheme, FrameWindowSimulator
from repro.power import PowerModel
from repro.video.source import AnalyticContentModel
from repro.workloads.browsing import browsing_timeline
from repro.workloads.scenario import streaming_session


class TestRunDeterminism:
    def test_identical_runs_identical_energy(self):
        def once():
            config = skylake_tablet(FHD).with_drfb()
            frames = AnalyticContentModel().frames(FHD, 12, seed=5)
            run = FrameWindowSimulator(config, BurstLinkScheme()).run(
                frames, 30.0
            )
            return PowerModel().report(run).total_energy_mj

        assert once() == once()

    def test_identical_timelines_segment_for_segment(self):
        def once():
            config = skylake_tablet(FHD)
            frames = AnalyticContentModel().frames(FHD, 8, seed=3)
            return FrameWindowSimulator(
                config, ConventionalScheme()
            ).run(frames, 60.0).timeline

        a, b = once(), once()
        assert len(a) == len(b)
        for left, right in zip(a, b):
            assert left == right


class TestExperimentDeterminism:
    def test_table2_reproduces(self):
        first = table2_power_comparison()
        second = table2_power_comparison()
        assert first.baseline_avg_mw == second.baseline_avg_mw
        assert first.burstlink_avg_mw == second.burstlink_avg_mw

    def test_fig09_reproduces(self):
        assert (
            fig09_planar_reduction_30fps().reductions
            == fig09_planar_reduction_30fps().reductions
        )

    def test_fig11a_reproduces(self):
        assert (
            fig11a_vr_workloads(frame_count=8).reductions
            == fig11a_vr_workloads(frame_count=8).reductions
        )


class TestGeneratorDeterminism:
    def test_browsing_timeline_reproduces(self):
        config = skylake_tablet(FHD)
        a = browsing_timeline(config, duration_s=1.0, seed=4)
        b = browsing_timeline(config, duration_s=1.0, seed=4)
        assert [s.state for s in a] == [s.state for s in b]

    def test_scenario_reproduces(self):
        a = streaming_session(skylake_tablet(FHD)).play()
        b = streaming_session(skylake_tablet(FHD)).play()
        assert a.average_power_mw == b.average_power_mw
        assert a.scheme_sequence() == b.scheme_sequence()
