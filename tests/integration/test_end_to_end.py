"""Cross-scheme run-level invariants: every scheme, every resolution,
one set of rules that must always hold."""

import pytest

from repro.baselines import (
    FrameBufferCompressionScheme,
    VipScheme,
    ZhangScheme,
)
from repro.config import FHD, UHD_4K, skylake_tablet
from repro.core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
    WindowedVideoScheme,
)
from repro.pipeline.conventional import ConventionalScheme
from repro.pipeline.sim import FrameWindowSimulator
from repro.power.model import PowerModel
from repro.video.source import AnalyticContentModel

ALL_SCHEMES = [
    ("conventional", ConventionalScheme, False),
    ("burstlink", BurstLinkScheme, True),
    ("bursting", FrameBurstingScheme, True),
    ("bypass", FrameBufferBypassScheme, False),
    ("windowed", WindowedVideoScheme, True),
    ("fbc", lambda: FrameBufferCompressionScheme(
        compression_rate=0.5
    ), False),
    ("zhang", ZhangScheme, False),
    ("vip", VipScheme, False),
]


@pytest.mark.parametrize(
    "name,factory,needs_drfb", ALL_SCHEMES,
    ids=[s[0] for s in ALL_SCHEMES],
)
@pytest.mark.parametrize("fps", [30.0, 60.0])
class TestUniversalInvariants:
    def _run(self, factory, needs_drfb, fps, resolution=FHD):
        config = skylake_tablet(resolution)
        if needs_drfb:
            config = config.with_drfb()
        frames = AnalyticContentModel().frames(resolution, 12)
        return FrameWindowSimulator(config, factory()).run(frames, fps)

    def test_timeline_covers_exactly_the_run(self, name, factory,
                                             needs_drfb, fps):
        run = self._run(factory, needs_drfb, fps)
        expected = run.stats.windows / 60.0
        assert run.duration == pytest.approx(expected)

    def test_residencies_sum_to_one(self, name, factory, needs_drfb,
                                    fps):
        run = self._run(factory, needs_drfb, fps)
        assert sum(run.residency_fractions().values()) == (
            pytest.approx(1.0)
        )

    def test_energy_is_positive_and_finite(self, name, factory,
                                           needs_drfb, fps):
        run = self._run(factory, needs_drfb, fps)
        report = PowerModel().report(run)
        assert 0 < report.average_power_mw < 20000

    def test_closed_form_identity(self, name, factory, needs_drfb,
                                  fps):
        model = PowerModel()
        run = self._run(factory, needs_drfb, fps)
        report = model.report(run)
        assert model.closed_form_average_power(report) == (
            pytest.approx(report.average_power_mw, rel=1e-9)
        )

    def test_no_deadline_misses_at_fhd(self, name, factory, needs_drfb,
                                       fps):
        run = self._run(factory, needs_drfb, fps)
        assert run.stats.deadline_misses == 0

    def test_edp_delivers_display_data(self, name, factory, needs_drfb,
                                       fps):
        run = self._run(factory, needs_drfb, fps)
        # Every scheme must physically move pixels to the panel in its
        # new-frame windows.
        assert run.timeline.edp_bytes > (
            0.5 * run.stats.new_frame_windows * FHD.frame_bytes()
        )


class TestEnergyOrderingAt4K:
    """The paper's overall Sec. 6 ordering at 4K 30 FPS."""

    @pytest.fixture(scope="class")
    def powers(self):
        frames = AnalyticContentModel().frames(UHD_4K, 16)
        model = PowerModel()
        powers = {}
        for name, factory, needs_drfb in ALL_SCHEMES:
            if name == "windowed":
                continue  # windowed targets a different scenario
            config = skylake_tablet(UHD_4K)
            if needs_drfb:
                config = config.with_drfb()
            run = FrameWindowSimulator(config, factory()).run(
                frames, 30.0
            )
            powers[name] = model.report(run).average_power_mw
        return powers

    def test_every_technique_beats_baseline(self, powers):
        for name, power in powers.items():
            if name == "conventional":
                continue
            assert power < powers["conventional"], name

    def test_full_burstlink_is_best(self, powers):
        assert powers["burstlink"] == min(powers.values())

    def test_incremental_techniques_ordered(self, powers):
        assert (
            powers["burstlink"]
            <= powers["bypass"]
            < powers["vip"]
            < powers["zhang"]
            < powers["conventional"]
        )
