"""DRAM traffic metering.

The analytical power model needs, per frame window and per package
C-state, the read/write bandwidth DRAM sustained (Sec. 5.2's operating
power term).  Pipelines log traffic samples here; the meter aggregates
them into totals, averages, and per-interval bandwidths.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from ..errors import DataPathError


@dataclass(frozen=True)
class TrafficSample:
    """One logged transfer: ``size_bytes`` moved during [start, end)."""

    start: float
    end: float
    read_bytes: float = 0.0
    write_bytes: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise DataPathError(
                f"sample ends ({self.end}) before it starts ({self.start})"
            )
        if self.read_bytes < 0 or self.write_bytes < 0:
            raise DataPathError("sample byte counts must be >= 0")

    @property
    def duration(self) -> float:
        """Length of the sample interval in seconds."""
        return self.end - self.start

    def overlap(self, start: float, end: float) -> float:
        """Length of this sample's overlap with [start, end)."""
        return max(0.0, min(self.end, end) - max(self.start, start))


@dataclass
class TrafficMeter:
    """Accumulates :class:`TrafficSample` records and answers bandwidth
    queries over arbitrary intervals (traffic inside a sample is assumed
    uniformly spread across it)."""

    samples: list[TrafficSample] = field(default_factory=list)
    _starts: list[float] = field(default_factory=list, repr=False)

    def log(self, sample: TrafficSample) -> None:
        """Append one sample (samples are kept sorted by start time)."""
        index = bisect.bisect(self._starts, sample.start)
        self._starts.insert(index, sample.start)
        self.samples.insert(index, sample)

    def log_transfer(self, start: float, end: float, *,
                     read_bytes: float = 0.0, write_bytes: float = 0.0,
                     label: str = "") -> None:
        """Convenience wrapper building and logging a sample."""
        self.log(
            TrafficSample(start, end, read_bytes, write_bytes, label)
        )

    # -- totals ------------------------------------------------------------------

    @property
    def total_read_bytes(self) -> float:
        """All bytes read."""
        return sum(s.read_bytes for s in self.samples)

    @property
    def total_write_bytes(self) -> float:
        """All bytes written."""
        return sum(s.write_bytes for s in self.samples)

    @property
    def total_bytes(self) -> float:
        """All bytes moved in either direction."""
        return self.total_read_bytes + self.total_write_bytes

    # -- interval queries ----------------------------------------------------------

    def bytes_in(self, start: float, end: float) -> tuple[float, float]:
        """(read, write) bytes attributable to [start, end), prorating
        samples that straddle the boundary."""
        if end < start:
            raise DataPathError("query interval is reversed")
        read = write = 0.0
        for sample in self.samples:
            if sample.start >= end:
                break
            if sample.duration == 0:
                # Instantaneous sample: attribute fully if inside.
                if start <= sample.start < end:
                    read += sample.read_bytes
                    write += sample.write_bytes
                continue
            fraction = sample.overlap(start, end) / sample.duration
            read += sample.read_bytes * fraction
            write += sample.write_bytes * fraction
        return read, write

    def average_bandwidth(self, start: float, end: float) -> tuple[
        float, float
    ]:
        """(read, write) average bandwidth in bytes/s over [start, end)."""
        duration = end - start
        if duration <= 0:
            raise DataPathError("query interval must have positive length")
        read, write = self.bytes_in(start, end)
        return read / duration, write / duration

    def reset(self) -> None:
        """Drop all samples."""
        self.samples.clear()
        self._starts.clear()
