"""DRAM substrate: power states, the background + operating power model of
paper Sec. 5.2, frame-buffer region management, and traffic accounting."""

from .states import DramPowerState, dram_state_for_package
from .power import DramPowerModel
from .framebuffer import FrameBufferManager, FrameBufferRegion
from .bandwidth import TrafficMeter, TrafficSample

__all__ = [
    "DramPowerModel",
    "DramPowerState",
    "FrameBufferManager",
    "FrameBufferRegion",
    "TrafficMeter",
    "TrafficSample",
    "dram_state_for_package",
]
