"""The two-part DRAM power model of paper Sec. 5.2.

DRAM power is modeled as:

* **background power**, which depends only on the DRAM power state
  (CKE-high / CKE-low / self-refresh) and is weighted by the time spent in
  each state; plus
* **operating power**, proportional to the read and write bandwidth
  actually consumed (mW per GB/s, with distinct read and write slopes as
  the paper's memory-benchmark extrapolation produces).

The default constants describe the evaluated 8 GB dual-channel
LPDDR3-1866 (Table 3) and are anchored so that DRAM contributes >30% of
system energy while streaming 4K video (Fig. 1) — the validation test in
``tests/power/test_calibration.py`` checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..units import gb_per_s
from .states import DramPowerState


@dataclass(frozen=True)
class DramPowerModel:
    """Background + operating DRAM power (all figures in mW)."""

    #: Background power per state, mW.
    background_mw: dict[DramPowerState, float] = field(
        default_factory=lambda: {
            DramPowerState.ACTIVE: 1100.0,
            DramPowerState.FAST_POWER_DOWN: 120.0,
            DramPowerState.SELF_REFRESH: 30.0,
        }
    )
    #: Operating power slope for reads, mW per GB/s.  The slopes cover the
    #: whole measured DRAM path of the paper's Sec. 5.3 setup (device
    #: VDD/VDDQ plus the DDRIO PHY and memory-controller datapath), which
    #: is why they sit well above bare-device datasheet numbers — and why
    #: DRAM reaches >30% of system energy at 4K (Fig. 1).
    read_mw_per_gbs: float = 400.0
    #: Operating power slope for writes, mW per GB/s (writes cost more:
    #: they burn the on-die termination both ways).
    write_mw_per_gbs: float = 440.0

    def __post_init__(self) -> None:
        for state in DramPowerState:
            if state not in self.background_mw:
                raise ConfigurationError(
                    f"background power missing for DRAM state {state.name}"
                )
            if self.background_mw[state] < 0:
                raise ConfigurationError(
                    f"background power for {state.name} must be >= 0"
                )
        if self.read_mw_per_gbs < 0 or self.write_mw_per_gbs < 0:
            raise ConfigurationError("operating power slopes must be >= 0")

    # -- instantaneous power ---------------------------------------------------

    def background_power(self, state: DramPowerState) -> float:
        """Background power (mW) in ``state``."""
        return self.background_mw[state]

    def operating_power(self, read_bw: float, write_bw: float) -> float:
        """Operating power (mW) while sustaining ``read_bw`` and
        ``write_bw`` (bytes/s each)."""
        if read_bw < 0 or write_bw < 0:
            raise ConfigurationError("bandwidths must be >= 0")
        return (
            self.read_mw_per_gbs * read_bw / gb_per_s(1)
            + self.write_mw_per_gbs * write_bw / gb_per_s(1)
        )

    def power(self, state: DramPowerState, read_bw: float = 0.0,
              write_bw: float = 0.0) -> float:
        """Total DRAM power (mW) in ``state`` at the given bandwidths.

        Traffic demands an active DRAM; asking for bandwidth in
        self-refresh or power-down is a modelling bug and raises.
        """
        if (read_bw > 0 or write_bw > 0) and not state.can_serve_requests:
            raise ConfigurationError(
                f"DRAM cannot serve traffic in state {state.name}"
            )
        return self.background_power(state) + self.operating_power(
            read_bw, write_bw
        )

    # -- energy over a weighted schedule ----------------------------------------

    def background_energy(
        self, residencies: dict[DramPowerState, float]
    ) -> float:
        """Background energy (mJ) of spending ``residencies[state]``
        seconds in each state (the state-weighted average of Sec. 5.2)."""
        total = 0.0
        for state, seconds in residencies.items():
            if seconds < 0:
                raise ConfigurationError(
                    f"residency for {state.name} must be >= 0"
                )
            total += self.background_power(state) * seconds
        return total

    def traffic_energy(self, read_bytes: float, write_bytes: float) -> float:
        """Operating energy (mJ) of moving the given byte totals.

        Energy per byte is independent of how fast the bytes move (power
        scales linearly with bandwidth, so time cancels), which lets the
        analytical model charge traffic volumes directly.
        """
        if read_bytes < 0 or write_bytes < 0:
            raise ConfigurationError("byte totals must be >= 0")
        return (
            self.read_mw_per_gbs * read_bytes / gb_per_s(1)
            + self.write_mw_per_gbs * write_bytes / gb_per_s(1)
        )
