"""DRAM power states and their coupling to package C-states.

The paper's Sec. 5.2 models DRAM background power over three states —
CKE-high (active), CKE-low (fast power-down), and self-refresh — and notes
that on the evaluated processor the DRAM state is *correlated to the
package C-state*: active in C0/C2, self-refresh everywhere deeper.
"""

from __future__ import annotations

import enum

from ..soc.cstates import PackageCState


class DramPowerState(enum.Enum):
    """The three DRAM background-power states of Sec. 5.2."""

    #: CKE high: clocked, serving or ready to serve requests.
    ACTIVE = "cke_high"
    #: CKE low: fast power-down between bursts of traffic.
    FAST_POWER_DOWN = "cke_low"
    #: Self-refresh: retention only; exiting costs microseconds.
    SELF_REFRESH = "self_refresh"

    @property
    def can_serve_requests(self) -> bool:
        """Whether reads/writes can be issued without a state change."""
        return self is DramPowerState.ACTIVE


def dram_state_for_package(state: PackageCState) -> DramPowerState:
    """The DRAM state implied by a package C-state (Table 1: DRAM is
    active only in C0 and C2, in self-refresh in every deeper state)."""
    if state in (PackageCState.C0, PackageCState.C2):
        return DramPowerState.ACTIVE
    return DramPowerState.SELF_REFRESH
