"""Frame-buffer regions inside host DRAM.

Conventional video processing stages all of its data through DRAM (paper
Fig. 2): the network/storage path buffers *encoded* frames, the video
decoder writes *decoded* frames into a double-buffered frame-buffer
region, and the display controller reads them back out.  Each display
plane owns its own frame buffer; the DC composes across them.

This manager allocates those regions, enforces capacity, and turns every
access into read/write byte counts — the quantity the DRAM operating-power
model charges for, and the quantity Frame Buffer Bypass eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import (
    BufferOverflowError,
    BufferUnderflowError,
    ConfigurationError,
    DataPathError,
)


@dataclass
class FrameBufferRegion:
    """One allocated region (e.g. the video plane's double frame buffer).

    ``slots`` is the number of frames the region holds: 2 for a classic
    double buffer, 1 for single-buffered planes, larger for the encoded
    stream's jitter buffer.
    """

    name: str
    slot_bytes: float
    slots: int = 2
    _occupied: list[bool] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.slot_bytes <= 0:
            raise ConfigurationError(
                f"region {self.name!r}: slot size must be positive"
            )
        if self.slots <= 0:
            raise ConfigurationError(
                f"region {self.name!r}: slot count must be positive"
            )
        self._occupied = [False] * self.slots

    @property
    def capacity(self) -> float:
        """Total bytes reserved for this region."""
        return self.slot_bytes * self.slots

    @property
    def occupied_slots(self) -> int:
        """Number of slots currently holding a frame."""
        return sum(self._occupied)

    @property
    def free_slots(self) -> int:
        """Number of empty slots."""
        return self.slots - self.occupied_slots

    def acquire_slot(self) -> int:
        """Claim a free slot for an incoming frame; returns its index."""
        for index, used in enumerate(self._occupied):
            if not used:
                self._occupied[index] = True
                return index
        raise BufferOverflowError(
            f"region {self.name!r}: all {self.slots} slots are occupied"
        )

    def release_slot(self, index: int) -> None:
        """Release a previously acquired slot."""
        if not 0 <= index < self.slots:
            raise DataPathError(
                f"region {self.name!r}: slot index {index} out of range"
            )
        if not self._occupied[index]:
            raise BufferUnderflowError(
                f"region {self.name!r}: slot {index} is already free"
            )
        self._occupied[index] = False


@dataclass
class FrameBufferManager:
    """Allocates frame-buffer regions within a DRAM capacity budget and
    accounts every byte written to / read from them."""

    dram_capacity: float
    regions: dict[str, FrameBufferRegion] = field(default_factory=dict)
    write_bytes: float = 0.0
    read_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.dram_capacity <= 0:
            raise ConfigurationError("DRAM capacity must be positive")

    # -- allocation ------------------------------------------------------------

    @property
    def allocated_bytes(self) -> float:
        """Bytes currently reserved across all regions."""
        return sum(r.capacity for r in self.regions.values())

    def allocate(self, name: str, slot_bytes: float,
                 slots: int = 2) -> FrameBufferRegion:
        """Reserve a new region; raises if the name collides or the DRAM
        budget would be exceeded."""
        if name in self.regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        region = FrameBufferRegion(name, slot_bytes, slots)
        if self.allocated_bytes + region.capacity > self.dram_capacity:
            raise BufferOverflowError(
                f"allocating {name!r} ({region.capacity:.0f} B) exceeds "
                f"DRAM capacity {self.dram_capacity:.0f} B"
            )
        self.regions[name] = region
        return region

    def free(self, name: str) -> None:
        """Release a region entirely."""
        if name not in self.regions:
            raise ConfigurationError(f"region {name!r} was never allocated")
        del self.regions[name]

    def region(self, name: str) -> FrameBufferRegion:
        """Look up a region by name."""
        try:
            return self.regions[name]
        except KeyError as exc:
            raise ConfigurationError(f"no region named {name!r}") from exc

    # -- traffic ---------------------------------------------------------------

    def write(self, name: str, size_bytes: float) -> None:
        """Record ``size_bytes`` written into region ``name`` (one frame
        store, a partial macroblock flush, ...)."""
        region = self.region(name)
        if size_bytes < 0:
            raise DataPathError("write size must be >= 0")
        if size_bytes > region.slot_bytes:
            raise BufferOverflowError(
                f"write of {size_bytes:.0f} B exceeds {name!r} slot size "
                f"{region.slot_bytes:.0f} B"
            )
        self.write_bytes += size_bytes

    def read(self, name: str, size_bytes: float) -> None:
        """Record ``size_bytes`` read out of region ``name``."""
        region = self.region(name)
        if size_bytes < 0:
            raise DataPathError("read size must be >= 0")
        if size_bytes > region.capacity:
            raise BufferUnderflowError(
                f"read of {size_bytes:.0f} B exceeds {name!r} capacity "
                f"{region.capacity:.0f} B"
            )
        self.read_bytes += size_bytes

    @property
    def total_traffic(self) -> float:
        """All bytes moved to/from the managed regions."""
        return self.read_bytes + self.write_bytes

    def reset_traffic(self) -> None:
        """Clear the byte counters (allocations are kept)."""
        self.read_bytes = 0.0
        self.write_bytes = 0.0
