"""Image/video quality metrics for the functional pipeline.

PSNR lives on :class:`~repro.video.frames.DecodedFrame`; this module
adds SSIM (the perceptual metric codec work is usually judged by) and
sequence-level aggregation, so codec and DSC quality can be asserted the
way a video engineer would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import uniform_filter

from ..errors import CodecError

#: SSIM stabilisation constants for 8-bit content (the standard values
#: K1=0.01, K2=0.03 against L=255).
_C1 = (0.01 * 255) ** 2
_C2 = (0.03 * 255) ** 2


def ssim(reference: np.ndarray, distorted: np.ndarray,
         window: int = 7) -> float:
    """Mean structural similarity between two H x W x 3 uint8 frames.

    The classic Wang et al. formulation with a uniform local window,
    computed per channel and averaged.  1.0 means identical.
    """
    if reference.shape != distorted.shape:
        raise CodecError(
            f"SSIM needs equal shapes, got {reference.shape} vs "
            f"{distorted.shape}"
        )
    if reference.ndim != 3 or reference.shape[2] != 3:
        raise CodecError(
            f"frames must be HxWx3, got {reference.shape}"
        )
    if min(reference.shape[0], reference.shape[1]) < window:
        raise CodecError(
            f"frames smaller than the {window}px SSIM window"
        )
    total = 0.0
    for channel in range(3):
        x = reference[..., channel].astype(np.float64)
        y = distorted[..., channel].astype(np.float64)
        mu_x = uniform_filter(x, window)
        mu_y = uniform_filter(y, window)
        sigma_x = uniform_filter(x * x, window) - mu_x * mu_x
        sigma_y = uniform_filter(y * y, window) - mu_y * mu_y
        sigma_xy = uniform_filter(x * y, window) - mu_x * mu_y
        numerator = (2 * mu_x * mu_y + _C1) * (2 * sigma_xy + _C2)
        denominator = (
            (mu_x ** 2 + mu_y ** 2 + _C1)
            * (sigma_x + sigma_y + _C2)
        )
        total += float(np.mean(numerator / denominator))
    return total / 3.0


def psnr(reference: np.ndarray, distorted: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two uint8 arrays, in dB."""
    if reference.shape != distorted.shape:
        raise CodecError("PSNR needs equal shapes")
    diff = reference.astype(np.float64) - distorted.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 ** 2 / mse)


@dataclass(frozen=True)
class SequenceQuality:
    """Quality summary over a decoded sequence."""

    mean_psnr_db: float
    min_psnr_db: float
    mean_ssim: float
    min_ssim: float
    frames: int


def sequence_quality(references: list[np.ndarray],
                     decoded: list[np.ndarray]) -> SequenceQuality:
    """Aggregate PSNR/SSIM over a frame sequence."""
    if len(references) != len(decoded):
        raise CodecError(
            f"sequence lengths differ: {len(references)} vs "
            f"{len(decoded)}"
        )
    if not references:
        raise CodecError("cannot score an empty sequence")
    psnrs = [psnr(r, d) for r, d in zip(references, decoded)]
    ssims = [ssim(r, d) for r, d in zip(references, decoded)]
    return SequenceQuality(
        mean_psnr_db=float(np.mean(psnrs)),
        min_psnr_db=float(np.min(psnrs)),
        mean_ssim=float(np.mean(ssims)),
        min_ssim=float(np.min(ssims)),
        frames=len(references),
    )
