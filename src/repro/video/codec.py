"""A functional macroblock-based video codec.

This is a real (if deliberately simple) transform codec in the
H.264/HEVC family shape the paper describes in Sec. 2.4: frames are
split into 16x16 macroblocks; each macroblock passes through a DCT,
quantization, zigzag + run-length coding, and Exp-Golomb entropy coding.
I-type macroblocks are coded independently; P-type macroblocks carry a
motion vector into the previous reconstructed frame plus a coded
residual; B-type macroblocks bi-predict from the previous and next
references.

The codec exists so the datapath — buffering encoded bytes, decoding at
macroblock granularity, writing reconstructed frames — is exercised
end-to-end with real data.  Energy experiments at 4K/5K use the
analytic content model instead (see ``repro.video.source``), because
what the power model needs from the codec is only frame *sizes* and
*timing*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.fft import dctn, idctn

from ..errors import CodecError, ConfigurationError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .bitstream import BitReader, BitWriter
from .frames import (
    DecodedFrame,
    EncodedFrame,
    FrameType,
    GopStructure,
    MACROBLOCK_SIZE,
)

#: Magic number opening every encoded frame ("BL" for BurstLink).
_MAGIC = 0xB1
#: Motion search radius in pixels.
_SEARCH_RADIUS = 8


def zigzag_order(size: int) -> np.ndarray:
    """Indices that traverse a ``size x size`` block in zigzag order,
    low frequencies first (as flat indices into the row-major block)."""
    if size <= 0:
        raise ConfigurationError(f"block size must be positive, got {size}")
    coords = sorted(
        ((r, c) for r in range(size) for c in range(size)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 else
                        rc[0]),
    )
    return np.array([r * size + c for r, c in coords], dtype=np.int64)


@dataclass(frozen=True)
class CodecConfig:
    """Codec parameters."""

    #: Quantization step; larger means smaller streams and lower quality.
    qstep: float = 12.0
    gop: GopStructure = field(default_factory=GopStructure)

    def __post_init__(self) -> None:
        if self.qstep <= 0:
            raise ConfigurationError("qstep must be positive")


class Codec:
    """Encoder/decoder pair sharing one configuration.

    Both sides maintain the *reconstructed* reference frame (not the
    source), so encoder and decoder predictions never drift apart.
    """

    def __init__(self, config: CodecConfig | None = None) -> None:
        self.config = config or CodecConfig()
        self._zigzag = zigzag_order(MACROBLOCK_SIZE)
        self._unzigzag = np.argsort(self._zigzag)

    # ------------------------------------------------------------------
    # Block-level transform coding
    # ------------------------------------------------------------------

    def _code_residual(
        self, writer: BitWriter, residual: np.ndarray
    ) -> np.ndarray:
        """Transform-code one 16x16x3 residual macroblock (all three
        channels through a single stacked DCT) and return the
        decoder-side reconstruction of the residual (float64).

        Producing the reconstruction here — from the very coefficients
        just entropy-coded — replaces the seed's separate per-channel
        re-quantization pass, so each macroblock costs one forward and
        one inverse transform instead of nine single-channel calls.
        """
        coefficients = dctn(residual, axes=(0, 1), norm="ortho")
        quantized = np.round(coefficients / self.config.qstep)
        for channel in range(3):
            self._write_scan(
                writer,
                quantized[..., channel].reshape(-1)[self._zigzag],
            )
        return idctn(
            quantized * self.config.qstep, axes=(0, 1), norm="ortho"
        )

    def _write_scan(self, writer: BitWriter, scan: np.ndarray) -> None:
        """Run-length + Exp-Golomb code one channel's zigzag scan.

        The (run, level) stream is derived with numpy (no per-position
        Python loop) and every pair's Exp-Golomb bits are folded into a
        single big integer appended with one ``write_bits`` call.
        """
        nonzero = np.flatnonzero(scan)
        writer.write_ue(len(nonzero))
        if not len(nonzero):
            return
        runs = np.diff(nonzero, prepend=-1) - 1
        levels = scan[nonzero]
        mapped = np.where(levels > 0, 2 * levels - 1, -2 * levels)
        accumulator = 0
        bits = 0
        for run, level in zip(runs.tolist(), mapped.tolist()):
            run_code = int(run) + 1
            level_code = int(level) + 1
            run_width = 2 * run_code.bit_length() - 1
            level_width = 2 * level_code.bit_length() - 1
            accumulator = (
                ((accumulator << run_width) | run_code) << level_width
            ) | level_code
            bits += run_width + level_width
        writer.write_bits(accumulator, bits)

    def _read_scan(self, reader: BitReader) -> np.ndarray:
        """Read one channel's zigzag scan of quantized coefficients."""
        count = reader.read_ue()
        size = MACROBLOCK_SIZE * MACROBLOCK_SIZE
        scan = np.zeros(size, dtype=np.float64)
        position = -1
        for _ in range(count):
            position += reader.read_ue() + 1
            if position >= size:
                raise CodecError("run-length past end of block")
            scan[position] = reader.read_se()
        return scan

    def _decode_residual(self, reader: BitReader) -> np.ndarray:
        """Inverse of :meth:`_code_residual`: read three channel scans
        and inverse-transform them in one stacked IDCT; returns the
        float64 16x16x3 residual."""
        size = MACROBLOCK_SIZE
        quantized = np.empty((size, size, 3), dtype=np.float64)
        flat = np.zeros(size * size, dtype=np.float64)
        for channel in range(3):
            flat[self._zigzag] = self._read_scan(reader)
            quantized[..., channel] = flat.reshape(size, size)
        return idctn(
            quantized * self.config.qstep, axes=(0, 1), norm="ortho"
        )

    # ------------------------------------------------------------------
    # Motion estimation / compensation
    # ------------------------------------------------------------------

    @staticmethod
    def _luma(frame: np.ndarray) -> np.ndarray:
        """A quick luma proxy (channel mean) for motion search."""
        return frame.mean(axis=2)

    def _estimate_motion(self, target_luma: np.ndarray,
                         reference_luma: np.ndarray,
                         top: int, left: int) -> tuple[int, int]:
        """Three-step search for the motion vector minimising SAD of the
        16x16 block at (top, left).  Returns (dy, dx)."""
        size = MACROBLOCK_SIZE
        height, width = reference_luma.shape
        block = target_luma[top:top + size, left:left + size]
        best = (0, 0)
        best_sad = None
        step = _SEARCH_RADIUS // 2
        center = (0, 0)
        while step >= 1:
            for dy in (-step, 0, step):
                for dx in (-step, 0, step):
                    candidate = (center[0] + dy, center[1] + dx)
                    ref_top = top + candidate[0]
                    ref_left = left + candidate[1]
                    if not (0 <= ref_top <= height - size
                            and 0 <= ref_left <= width - size):
                        continue
                    ref_block = reference_luma[
                        ref_top:ref_top + size, ref_left:ref_left + size
                    ]
                    sad = float(np.abs(block - ref_block).sum())
                    if best_sad is None or sad < best_sad:
                        best_sad = sad
                        best = candidate
            center = best
            step //= 2
        return best

    @staticmethod
    def _reference_block(reference: np.ndarray, top: int, left: int,
                         motion: tuple[int, int]) -> np.ndarray:
        """The 16x16x3 predictor block at (top, left) displaced by
        ``motion`` in ``reference``."""
        size = MACROBLOCK_SIZE
        ref_top = top + motion[0]
        ref_left = left + motion[1]
        height, width = reference.shape[:2]
        if not (0 <= ref_top <= height - size
                and 0 <= ref_left <= width - size):
            raise CodecError(
                f"motion vector {motion} leaves the reference frame"
            )
        return reference[
            ref_top:ref_top + size, ref_left:ref_left + size
        ].astype(np.float64)

    # ------------------------------------------------------------------
    # Frame-level encode
    # ------------------------------------------------------------------

    def encode_frame(
        self,
        index: int,
        frame: np.ndarray,
        frame_type: FrameType,
        past: np.ndarray | None = None,
        future: np.ndarray | None = None,
    ) -> tuple[EncodedFrame, np.ndarray]:
        """Encode one frame; returns the bitstream and the *reconstructed*
        frame (the decoder-side pixels, to be used as the next
        reference)."""
        self._validate_frame(frame)
        if frame_type.needs_past_reference and past is None:
            raise CodecError(f"{frame_type.value} frame needs a past "
                             "reference")
        if frame_type.needs_future_reference and future is None:
            raise CodecError("B frame needs a future reference")

        height, width = frame.shape[:2]
        tracer = obs_trace.active()
        frame_span = None
        if tracer is not None:
            frame_span = tracer.begin_span(
                "codec.encode",
                index=index,
                type=frame_type.value,
                width=width,
                height=height,
            )
            tracer.event("codec.phase", phase="header")
        writer = BitWriter()
        writer.write_bits(_MAGIC, 8)
        writer.write_bits({"I": 0, "P": 1, "B": 2}[frame_type.value], 2)
        writer.write_bits(width, 16)
        writer.write_bits(height, 16)
        writer.write_bits(index & 0xFFFF, 16)

        if tracer is not None:
            tracer.event("codec.phase", phase="macroblocks")
        reconstructed = np.empty_like(frame)
        past_luma = self._luma(past) if past is not None else None
        future_luma = self._luma(future) if future is not None else None
        target_luma = self._luma(frame)
        size = MACROBLOCK_SIZE
        for top in range(0, height, size):
            for left in range(0, width, size):
                original = frame[top:top + size, left:left + size].astype(
                    np.float64
                )
                predictor = self._encode_prediction(
                    writer, frame_type, target_luma, past, past_luma,
                    future, future_luma, top, left, reconstructed,
                    original,
                )
                # Code the residual and reconstruct through the same
                # quantization the decoder applies, so encoder and
                # decoder references never drift.
                recon = (
                    self._code_residual(writer, original - predictor)
                    + predictor
                )
                reconstructed[top:top + size, left:left + size] = np.clip(
                    np.round(recon), 0, 255
                ).astype(np.uint8)

        encoded = EncodedFrame(
            index=index,
            frame_type=frame_type,
            width=width,
            height=height,
            payload=writer.getvalue(),
        )
        macroblocks = (height // size) * (width // size)
        registry = obs_metrics.registry()
        registry.counter(
            "codec.frames_encoded", "frames pushed through the encoder"
        ).inc()
        registry.counter(
            "codec.macroblocks_encoded", "macroblocks transform-coded"
        ).inc(macroblocks)
        registry.histogram(
            "codec.encoded_bytes", "encoded payload size per frame"
        ).observe(len(encoded.payload))
        if tracer is not None:
            assert frame_span is not None
            tracer.end_span(
                frame_span,
                macroblocks=macroblocks,
                payload_bytes=len(encoded.payload),
            )
        return encoded, reconstructed

    # Intra 16x16 prediction modes: flat mid-grey, horizontal (extend
    # the left neighbour's edge), vertical (extend the top neighbour's
    # edge) — the H.264 intra-16x16 family.
    _INTRA_MODES = 3

    def _intra_candidates(
        self, reconstruction: np.ndarray, top: int, left: int
    ) -> list[np.ndarray]:
        """The intra predictor candidates available at (top, left),
        built only from already-reconstructed neighbours (so encoder
        and decoder agree)."""
        size = MACROBLOCK_SIZE
        candidates = [np.full((size, size, 3), 128.0)]
        if left >= size:
            edge = reconstruction[
                top:top + size, left - 1:left
            ].astype(np.float64)
            candidates.append(np.repeat(edge, size, axis=1))
        else:
            candidates.append(None)  # type: ignore[arg-type]
        if top >= size:
            edge = reconstruction[
                top - 1:top, left:left + size
            ].astype(np.float64)
            candidates.append(np.repeat(edge, size, axis=0))
        else:
            candidates.append(None)  # type: ignore[arg-type]
        return candidates

    def _encode_prediction(
        self,
        writer: BitWriter,
        frame_type: FrameType,
        target_luma: np.ndarray,
        past: np.ndarray | None,
        past_luma: np.ndarray | None,
        future: np.ndarray | None,
        future_luma: np.ndarray | None,
        top: int,
        left: int,
        reconstruction: np.ndarray,
        original: np.ndarray,
    ) -> np.ndarray:
        """Write the prediction side-information for one macroblock and
        return the predictor block (float64, 16x16x3)."""
        if frame_type is FrameType.I:
            candidates = self._intra_candidates(
                reconstruction, top, left
            )
            best_mode, best_predictor, best_sad = 0, candidates[0], None
            for mode, candidate in enumerate(candidates):
                if candidate is None:
                    continue
                sad = float(np.abs(original - candidate).sum())
                if best_sad is None or sad < best_sad:
                    best_mode, best_predictor, best_sad = (
                        mode, candidate, sad
                    )
            writer.write_bits(best_mode, 2)
            return best_predictor
        assert past is not None and past_luma is not None
        motion = self._estimate_motion(target_luma, past_luma, top, left)
        writer.write_se(motion[0])
        writer.write_se(motion[1])
        predictor = self._reference_block(past, top, left, motion)
        if frame_type is FrameType.B:
            assert future is not None and future_luma is not None
            motion_b = self._estimate_motion(
                target_luma, future_luma, top, left
            )
            writer.write_se(motion_b[0])
            writer.write_se(motion_b[1])
            predictor = (
                predictor
                + self._reference_block(future, top, left, motion_b)
            ) / 2.0
        return predictor

    # ------------------------------------------------------------------
    # Frame-level decode
    # ------------------------------------------------------------------

    def decode_frame(
        self,
        encoded: EncodedFrame,
        past: np.ndarray | None = None,
        future: np.ndarray | None = None,
    ) -> DecodedFrame:
        """Decode one frame from its bitstream."""
        tracer = obs_trace.active()
        frame_span = None
        if tracer is not None:
            frame_span = tracer.begin_span(
                "codec.decode",
                index=encoded.index,
                type=encoded.frame_type.value,
                payload_bytes=len(encoded.payload),
            )
            tracer.event("codec.phase", phase="header")
        try:
            reader = BitReader(encoded.payload)
            if reader.read_bits(8) != _MAGIC:
                raise CodecError("bad magic: not a BurstLink codec stream")
            type_code = reader.read_bits(2)
            if type_code > 2:
                raise CodecError(f"unknown frame-type code {type_code}")
            frame_type = (
                FrameType.I, FrameType.P, FrameType.B
            )[type_code]
            width = reader.read_bits(16)
            height = reader.read_bits(16)
            reader.read_bits(16)  # frame index (informational)
            if (width, height) != (encoded.width, encoded.height):
                raise CodecError(
                    "bitstream header dimensions disagree with frame "
                    "metadata"
                )
            if frame_type is not encoded.frame_type:
                raise CodecError(
                    "bitstream frame type disagrees with frame metadata"
                )
            if frame_type.needs_past_reference and past is None:
                raise CodecError(f"{frame_type.value} frame needs a past "
                                 "reference")
            if frame_type.needs_future_reference and future is None:
                raise CodecError("B frame needs a future reference")

            if tracer is not None:
                tracer.event("codec.phase", phase="macroblocks")
            pixels = np.empty((height, width, 3), dtype=np.uint8)
            size = MACROBLOCK_SIZE
            for top in range(0, height, size):
                for left in range(0, width, size):
                    predictor = self._decode_prediction(
                        reader, frame_type, past, future, top, left,
                        pixels
                    )
                    block = self._decode_residual(reader)
                    reconstructed = np.clip(
                        np.round(block + predictor), 0, 255
                    ).astype(np.uint8)
                    pixels[top:top + size, left:left + size] = (
                        reconstructed
                    )
        except Exception as error:
            # Close the span so a caught decode error can't poison the
            # tracer's nesting for every span that follows.
            if tracer is not None:
                assert frame_span is not None
                tracer.end_span(frame_span, error=type(error).__name__)
            raise
        registry = obs_metrics.registry()
        registry.counter(
            "codec.frames_decoded", "frames pushed through the decoder"
        ).inc()
        registry.counter(
            "codec.macroblocks_decoded", "macroblocks reconstructed"
        ).inc((height // size) * (width // size))
        if tracer is not None:
            assert frame_span is not None
            tracer.end_span(
                frame_span,
                macroblocks=(height // size) * (width // size),
            )
        return DecodedFrame(encoded.index, frame_type, pixels)

    def _decode_prediction(
        self,
        reader: BitReader,
        frame_type: FrameType,
        past: np.ndarray | None,
        future: np.ndarray | None,
        top: int,
        left: int,
        reconstruction: np.ndarray,
    ) -> np.ndarray:
        """Read one macroblock's side-information and rebuild its
        predictor."""
        if frame_type is FrameType.I:
            mode = reader.read_bits(2)
            if mode >= self._INTRA_MODES:
                raise CodecError(f"unknown intra mode {mode}")
            candidates = self._intra_candidates(
                reconstruction, top, left
            )
            predictor = candidates[mode]
            if predictor is None:
                raise CodecError(
                    f"intra mode {mode} references an unavailable "
                    "neighbour"
                )
            return predictor
        assert past is not None
        motion = (reader.read_se(), reader.read_se())
        predictor = self._reference_block(past, top, left, motion)
        if frame_type is FrameType.B:
            assert future is not None
            motion_b = (reader.read_se(), reader.read_se())
            predictor = (
                predictor
                + self._reference_block(future, top, left, motion_b)
            ) / 2.0
        return predictor

    # ------------------------------------------------------------------
    # Sequence-level helpers
    # ------------------------------------------------------------------

    def encode_sequence(
        self, frames: list[np.ndarray]
    ) -> list[EncodedFrame]:
        """Encode a frame sequence with this codec's GOP structure.

        B frames reference the nearest *following* I/P frame; encoding
        order is handled internally, the returned list is display order.
        """
        if not frames:
            return []
        for frame in frames:
            self._validate_frame(frame)

        types = [
            self.config.gop.frame_type(i) for i in range(len(frames))
        ]
        # A trailing B with no future anchor degrades to P.
        for i in range(len(frames)):
            if types[i] is FrameType.B and not any(
                t is not FrameType.B for t in types[i + 1:]
            ):
                types[i] = FrameType.P

        encoded: list[EncodedFrame | None] = [None] * len(frames)
        reconstructions: dict[int, np.ndarray] = {}
        last_anchor: int | None = None
        # First pass: anchors (I/P) in display order.
        for i, frame_type in enumerate(types):
            if frame_type is FrameType.B:
                continue
            past = (
                reconstructions[last_anchor]
                if last_anchor is not None else None
            )
            if frame_type is FrameType.P and past is None:
                frame_type = types[i] = FrameType.I
            enc, recon = self.encode_frame(
                i, frames[i], frame_type, past=past
            )
            encoded[i] = enc
            reconstructions[i] = recon
            last_anchor = i
        # Second pass: B frames between their anchors.
        anchors = sorted(reconstructions)
        for i, frame_type in enumerate(types):
            if frame_type is not FrameType.B:
                continue
            past_anchor = max(a for a in anchors if a < i)
            future_anchor = min(a for a in anchors if a > i)
            enc, recon = self.encode_frame(
                i,
                frames[i],
                FrameType.B,
                past=reconstructions[past_anchor],
                future=reconstructions[future_anchor],
            )
            encoded[i] = enc
            reconstructions[i] = recon
        assert all(e is not None for e in encoded)
        return [e for e in encoded if e is not None]

    def decode_sequence(
        self, encoded: list[EncodedFrame]
    ) -> list[DecodedFrame]:
        """Decode a display-order sequence produced by
        :meth:`encode_sequence`."""
        decoded: dict[int, DecodedFrame] = {}
        anchors: list[int] = []
        for frame in encoded:
            if frame.frame_type is FrameType.B:
                continue
            past = decoded[anchors[-1]].pixels if anchors else None
            decoded[frame.index] = self.decode_frame(frame, past=past)
            anchors.append(frame.index)
        for frame in encoded:
            if frame.frame_type is not FrameType.B:
                continue
            past_anchor = max(a for a in anchors if a < frame.index)
            future_anchor = min(a for a in anchors if a > frame.index)
            decoded[frame.index] = self.decode_frame(
                frame,
                past=decoded[past_anchor].pixels,
                future=decoded[future_anchor].pixels,
            )
        return [decoded[f.index] for f in encoded]

    # ------------------------------------------------------------------

    @staticmethod
    def _validate_frame(frame: np.ndarray) -> None:
        if frame.ndim != 3 or frame.shape[2] != 3:
            raise CodecError(
                f"frames must be HxWx3, got shape {frame.shape}"
            )
        if frame.dtype != np.uint8:
            raise CodecError(f"frames must be uint8, got {frame.dtype}")
        height, width = frame.shape[:2]
        if height % MACROBLOCK_SIZE or width % MACROBLOCK_SIZE:
            raise CodecError(
                f"frame {width}x{height} is not a multiple of the "
                f"{MACROBLOCK_SIZE}px macroblock size"
            )
