"""The video decoder (VD) IP model.

Wraps the functional codec with the IP-level behaviour the paper relies
on: the *destination selector* of Sec. 4.4 (decoded output routed to the
DRAM frame buffer or directly to the display controller over the P2P
path), the ``single_video`` CSR condition, decode timing under the
race/latency-tolerant DVFS policies, and byte accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..config import VideoDecoderConfig
from ..errors import DataPathError
from ..soc.registers import RegisterFile
from .codec import Codec
from .frames import DecodedFrame, EncodedFrame


class Destination(enum.Enum):
    """Where the destination selector routes decoded frames (Fig. 5)."""

    #: Conventional path: the DRAM frame buffer (Fig. 2 step 3).
    DRAM_FRAME_BUFFER = "dram"
    #: Frame Buffer Bypass: directly to the DC buffer over P2P (Fig. 5
    #: step 2).
    DISPLAY_CONTROLLER = "dc"


@dataclass
class DecodeRecord:
    """Accounting for one decoded frame."""

    index: int
    encoded_bytes: float
    decoded_bytes: float
    destination: Destination
    duration: float


@dataclass
class VideoDecoderIP:
    """The VD: functional decode plus destination selection and timing."""

    config: VideoDecoderConfig = field(default_factory=VideoDecoderConfig)
    codec: Codec = field(default_factory=Codec)
    registers: RegisterFile | None = None
    records: list[DecodeRecord] = field(default_factory=list)
    halted: bool = False

    # -- destination selection ------------------------------------------------

    def select_destination(self) -> Destination:
        """The Sec. 4.4 destination selector: bypass to the DC only when
        the CSRs assert both ``single_video`` and ``video_plane_only``
        (and no fallback condition holds); otherwise the DRAM frame
        buffer."""
        if self.registers is not None and self.registers.bypass_eligible:
            return Destination.DISPLAY_CONTROLLER
        return Destination.DRAM_FRAME_BUFFER

    # -- timing -----------------------------------------------------------------

    def decode_time(self, frame_bytes: float, frame_period: float,
                    race: bool) -> float:
        """Decode duration under the race (conventional) or
        latency-tolerant (BurstLink) DVFS policy — see
        :class:`~repro.config.VideoDecoderConfig`."""
        return self.config.decode_time(frame_bytes, frame_period, race)

    def halt(self) -> None:
        """Clock-gate the VD (DC buffer full — the C7 -> C7' edge)."""
        self.halted = True

    def wake(self) -> float:
        """Resume decoding after the PMU wakeup; returns the wake
        latency paid (zero when the VD was not halted)."""
        if not self.halted:
            return 0.0
        self.halted = False
        return self.config.wake_latency

    # -- functional decode ---------------------------------------------------------

    def decode(
        self,
        encoded: EncodedFrame,
        past: np.ndarray | None = None,
        future: np.ndarray | None = None,
        frame_period: float = 1.0 / 60.0,
        race: bool = True,
    ) -> DecodedFrame:
        """Decode a real bitstream frame, recording destination and
        timing.  A halted decoder cannot decode — the pipeline must wake
        it first."""
        if self.halted:
            raise DataPathError("the video decoder is halted (clock-gated)")
        frame = self.codec.decode_frame(encoded, past=past, future=future)
        self.records.append(
            DecodeRecord(
                index=encoded.index,
                encoded_bytes=encoded.size_bytes,
                decoded_bytes=frame.size_bytes,
                destination=self.select_destination(),
                duration=self.decode_time(
                    frame.size_bytes, frame_period, race
                ),
            )
        )
        return frame

    # -- aggregate accounting ---------------------------------------------------------

    @property
    def frames_decoded(self) -> int:
        """Total frames decoded through this IP."""
        return len(self.records)

    @property
    def bytes_to_dram(self) -> float:
        """Decoded bytes routed to the DRAM frame buffer."""
        return sum(
            r.decoded_bytes for r in self.records
            if r.destination is Destination.DRAM_FRAME_BUFFER
        )

    @property
    def bytes_to_dc(self) -> float:
        """Decoded bytes routed directly to the DC (bypass path)."""
        return sum(
            r.decoded_bytes for r in self.records
            if r.destination is Destination.DISPLAY_CONTROLLER
        )
