"""Network-streamed playback: an ABR client in front of the pipeline.

:class:`~repro.video.source.StreamSource` models the *jitter buffer*
(arrival timing of a fixed byte stream); this module models the layer
above it — an HTTP adaptive-streaming client that picks a bitrate-ladder
rung per chunk from the observed bandwidth, accumulates a playout
buffer, and **stalls** (re-presents the last picture) when a chunk
cannot be fetched before the buffer drains.  Energy-wise this matters
two ways (Herglotz et al. study the streaming-power side of this
trade): lower rungs shrink encoded frames (less decode/DRAM/WiFi work),
while stall repeats turn new-frame windows into repeat windows — the
regime BurstLink's repeat-window collapsing and PSR fallback machinery
target.

Everything is deterministic given the seed: the per-chunk bandwidth
draws, rung choices, buffer levels, and stall placements are all
precomputed at construction, so the source fingerprints in O(1) and the
run memoizer can reuse results across processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

import numpy as np

from ..config import Resolution
from ..errors import ConfigurationError
from .source import AnalyticContentModel, ContentAttributes, FrameDescriptor


@dataclass(frozen=True)
class NetworkFrameSource:
    """An ABR-streamed frame source with rebuffering stalls.

    Presents exactly ``count`` frames.  Real frames advance the
    underlying analytic stream with their encoded size scaled by the
    chosen ladder rung; stall frames re-present the previous descriptor
    (flagged ``stalled`` in its :class:`ContentAttributes`), displacing
    real frames within the fixed presentation budget — a stalled session
    shows fewer distinct pictures, exactly like a real player.
    """

    model: AnalyticContentModel
    resolution: Resolution
    count: int
    #: Presentation rate, frames per second.
    fps: float = 30.0
    #: Mean network bandwidth, bits per second (note: *bits*, the
    #: natural unit for media ladders; :class:`StreamSource` uses
    #: bytes/s for its DMA-side accounting).
    bandwidth_bps: float = 10e6
    #: The bitrate ladder as fractions of the content's nominal rate,
    #: ascending; the top rung is the full-quality stream.
    ladder: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    #: Peak-to-mean fluctuation of the per-chunk bandwidth (0 = steady).
    fluctuation: float = 0.3
    #: Frames per ABR chunk (segment).
    chunk_frames: int = 24
    #: The client never downloads more than this many seconds ahead.
    buffer_cap_s: float = 8.0
    #: The client picks the highest rung whose rate fits within
    #: ``safety`` times the observed bandwidth.
    safety: float = 0.85
    seed: int = 0
    #: Per-presented-frame schedule of ``(rung index, stalled)``,
    #: derived deterministically in ``__post_init__``.
    _schedule: tuple[tuple[int, bool], ...] = field(
        init=False, repr=False, compare=False
    )
    _rebuffer_events: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("frame count must be >= 1")
        if self.fps <= 0:
            raise ConfigurationError("fps must be positive")
        if self.bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not self.ladder or any(
            not 0.0 < rung <= 1.0 for rung in self.ladder
        ):
            raise ConfigurationError(
                "ladder rungs must be fractions in (0, 1]"
            )
        if tuple(sorted(self.ladder)) != tuple(self.ladder):
            raise ConfigurationError("ladder must be ascending")
        if not 0.0 <= self.fluctuation < 1.0:
            raise ConfigurationError("fluctuation must be in [0, 1)")
        if self.chunk_frames < 1:
            raise ConfigurationError("chunk_frames must be >= 1")
        if self.buffer_cap_s <= 0:
            raise ConfigurationError("buffer cap must be positive")
        if not 0.0 < self.safety <= 1.0:
            raise ConfigurationError("safety must be in (0, 1]")
        schedule, rebuffers = self._plan_session()
        object.__setattr__(self, "_schedule", schedule)
        object.__setattr__(self, "_rebuffer_events", rebuffers)

    # -- the ABR session plan --------------------------------------------------

    def nominal_rate_bps(self) -> float:
        """The full-quality (top-rung) stream rate in bits per second."""
        return (
            self.model.content.bits_per_pixel
            * self.resolution.pixels
            * self.fps
        )

    def _plan_session(self) -> tuple[tuple[tuple[int, bool], ...], int]:
        """Simulate the chunk-by-chunk download/playback race.

        Per chunk: draw the bandwidth, pick the highest affordable rung,
        and race the download against the playout buffer.  A download
        that outlasts the buffer stalls playback for the deficit —
        emitted as repeat frames at the presentation rate.  The first
        chunk downloads during startup (before playback), so it never
        stalls; startup delay itself is not presented.
        """
        rng = np.random.default_rng(self.seed)
        nominal = self.nominal_rate_bps()
        chunk_s = self.chunk_frames / self.fps
        schedule: list[tuple[int, bool]] = []
        rebuffers = 0
        buffer_s = 0.0
        first = True
        while len(schedule) < self.count:
            bandwidth = self.bandwidth_bps * (
                1.0 + self.fluctuation * float(rng.uniform(-1.0, 1.0))
            )
            tier = 0
            for index, rung in enumerate(self.ladder):
                if rung * nominal <= self.safety * bandwidth:
                    tier = index
            download_s = (
                self.ladder[tier] * nominal * chunk_s / bandwidth
            )
            if first:
                buffer_s = chunk_s
                first = False
            else:
                deficit = download_s - buffer_s
                if deficit > 0.0:
                    stalled = min(
                        self.count - len(schedule),
                        int(math.ceil(deficit * self.fps)),
                    )
                    previous = schedule[-1][0]
                    schedule.extend(
                        ((previous, True),) * stalled
                    )
                    rebuffers += 1
                    buffer_s = 0.0
                else:
                    buffer_s -= download_s
                buffer_s = min(
                    buffer_s + chunk_s, self.buffer_cap_s
                )
            remaining = self.count - len(schedule)
            if remaining > 0:
                schedule.extend(
                    ((tier, False),)
                    * min(self.chunk_frames, remaining)
                )
        return tuple(schedule[: self.count]), rebuffers

    # -- session statistics ----------------------------------------------------

    @property
    def rebuffer_events(self) -> int:
        """Distinct stall (rebuffering) events in the session."""
        return self._rebuffer_events

    @property
    def stall_ratio(self) -> float:
        """Fraction of presented frames that are stall repeats."""
        stalls = sum(1 for _, stalled in self._schedule if stalled)
        return stalls / len(self._schedule)

    @property
    def mean_tier(self) -> float:
        """Average ladder rung index across presented frames."""
        return sum(tier for tier, _ in self._schedule) / len(
            self._schedule
        )

    def tier_counts(self) -> dict[int, int]:
        """Presented frames per ladder rung."""
        counts: dict[int, int] = {}
        for tier, _ in self._schedule:
            counts[tier] = counts.get(tier, 0) + 1
        return counts

    # -- the frame stream ------------------------------------------------------

    def __iter__(self) -> Iterator[FrameDescriptor]:
        frames = self.model.iter_frames(
            self.resolution, self.count, seed=self.seed
        )
        previous: FrameDescriptor | None = None
        for index, (tier, stalled) in enumerate(self._schedule):
            if stalled:
                assert previous is not None
                yield replace(
                    previous,
                    index=index,
                    attributes=replace(
                        previous.attributes
                        or ContentAttributes(apl=self.model.apl),
                        stalled=True,
                    ),
                )
                continue
            base = next(frames)
            descriptor = replace(
                base,
                index=index,
                encoded_bytes=base.encoded_bytes * self.ladder[tier],
                attributes=ContentAttributes(
                    apl=self.model.apl,
                    bitrate_tier=tier,
                    stalled=False,
                ),
            )
            previous = descriptor
            yield descriptor

    def __len__(self) -> int:
        return self.count

    def fingerprint_token(self) -> Any:
        return (
            "frames/network",
            self.model,
            self.resolution,
            self.count,
            self.fps,
            self.bandwidth_bps,
            self.ladder,
            self.fluctuation,
            self.chunk_frames,
            self.buffer_cap_s,
            self.safety,
            self.seed,
        )
