"""Stream sources: the network/storage side of video processing.

For streaming, the WiFi NIC DMA-writes encoded frames into a DRAM jitter
buffer; for playback, the storage controller does (paper Sec. 2.4,
"Buffering").  The buffer absorbs network bandwidth fluctuation.

Two content paths feed the pipeline:

* the **functional codec** produces real byte streams for small frames
  (tests, examples); and
* the **analytic content model** synthesises per-frame encoded sizes for
  full-resolution workloads, using bits-per-pixel rates representative of
  H.264/HEVC streaming ladders, with I/P/B size ratios and log-normal
  frame-to-frame variation.  The energy results depend only on sizes and
  timing, so this preserves the quantities that matter (DESIGN.md,
  substitution table).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import Resolution
from ..errors import BufferUnderflowError, ConfigurationError
from .frames import FrameType, GopStructure


class ContentClass(enum.Enum):
    """Content families with representative compressed bit rates.

    The value is the average encoded bits per pixel at streaming quality
    (e.g. NATURAL at 4K30 gives ~0.08 bpp = ~20 Mbps, a typical 4K
    streaming ladder rung).
    """

    #: Camera-captured natural video (film, sports).
    NATURAL = 0.080
    #: Animation/synthetic content (flat regions compress further).
    ANIMATION = 0.045
    #: Screen content / productivity capture.
    SCREEN = 0.030
    #: High-motion content (action, 360-degree VR source video).
    HIGH_MOTION = 0.120

    @property
    def bits_per_pixel(self) -> float:
        """Average encoded bits per displayed pixel."""
        return self.value


#: Representative average picture level per content family, used when a
#: workload opts into content-aware (OLED) pricing.  Screen content is
#: bright (white documents), high-motion/film skews dark.
CONTENT_APL = {
    ContentClass.NATURAL: 0.45,
    ContentClass.ANIMATION: 0.60,
    ContentClass.SCREEN: 0.85,
    ContentClass.HIGH_MOTION: 0.40,
}


@dataclass(frozen=True)
class ContentAttributes:
    """Displayed-content attributes that power terms may price on.

    Attached per frame; ``None`` on a :class:`FrameDescriptor` means
    "content-agnostic" and reproduces the historical behavior exactly.
    """

    #: Average picture level (mean relative luminance), 0..1.
    apl: float = 0.0
    #: Rung index on the source's ABR ladder (0 = lowest).
    bitrate_tier: int = 0
    #: The frame is a stall repeat (rebuffering re-presented the
    #: previous picture instead of advancing the stream).
    stalled: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.apl <= 1.0:
            raise ConfigurationError("APL must be within [0, 1]")
        if self.bitrate_tier < 0:
            raise ConfigurationError("bitrate tier must be >= 0")

    def to_payload(self) -> dict[str, Any]:
        """The attributes as a JSON-safe wire payload."""
        return {
            "apl": self.apl,
            "bitrate_tier": self.bitrate_tier,
            "stalled": self.stalled,
        }


@dataclass(frozen=True)
class FrameDescriptor:
    """A lightweight stand-in for an encoded frame: everything the energy
    pipeline needs (sizes and type) without a payload."""

    index: int
    frame_type: FrameType
    encoded_bytes: float
    decoded_bytes: float
    #: Content attributes for content-aware power terms; ``None`` keeps
    #: the frame content-agnostic (the historical default).
    attributes: "ContentAttributes | None" = None

    def __post_init__(self) -> None:
        if self.encoded_bytes <= 0 or self.decoded_bytes <= 0:
            raise ConfigurationError("frame sizes must be positive")

    def to_payload(self) -> dict[str, Any]:
        """The descriptor as a JSON-safe wire payload (the ``repro
        serve`` session protocol ships frames in this shape).  The
        ``attributes`` key appears only for content-aware frames, so
        historical payloads are unchanged byte for byte."""
        payload = {
            "index": self.index,
            "type": self.frame_type.value,
            "encoded_bytes": self.encoded_bytes,
            "decoded_bytes": self.decoded_bytes,
        }
        if self.attributes is not None:
            payload["attributes"] = self.attributes.to_payload()
        return payload


def descriptor_from_payload(payload: dict[str, Any]) -> FrameDescriptor:
    """Parse one wire-protocol frame payload (the inverse of
    :meth:`FrameDescriptor.to_payload`), validating sizes and type."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"frame payload must be an object, got {type(payload).__name__}"
        )
    try:
        frame_type = FrameType(str(payload.get("type", "P")))
    except ValueError:
        raise ConfigurationError(
            f"unknown frame type {payload.get('type')!r}"
        ) from None
    attributes = None
    raw_attributes = payload.get("attributes")
    if raw_attributes is not None:
        if not isinstance(raw_attributes, dict):
            raise ConfigurationError(
                "frame attributes must be an object"
            )
        try:
            attributes = ContentAttributes(
                apl=float(raw_attributes.get("apl", 0.0)),
                bitrate_tier=int(raw_attributes.get("bitrate_tier", 0)),
                stalled=bool(raw_attributes.get("stalled", False)),
            )
        except (TypeError, ValueError):
            raise ConfigurationError(
                "frame attributes need numeric apl/bitrate_tier"
            ) from None
    try:
        return FrameDescriptor(
            index=int(payload.get("index", 0)),
            frame_type=frame_type,
            encoded_bytes=float(payload["encoded_bytes"]),
            decoded_bytes=float(payload["decoded_bytes"]),
            attributes=attributes,
        )
    except (KeyError, TypeError, ValueError):
        raise ConfigurationError(
            "frame payload needs numeric encoded_bytes/decoded_bytes"
        ) from None


#: Relative encoded-size weights of I, P, and B frames (I frames are the
#: big intra-coded anchors; B frames compress best).
_TYPE_WEIGHTS = {FrameType.I: 4.0, FrameType.P: 1.3, FrameType.B: 0.7}


@dataclass(frozen=True)
class AnalyticContentModel:
    """Synthesises representative encoded frame sizes for a content class."""

    content: ContentClass = ContentClass.NATURAL
    gop: GopStructure = field(default_factory=GopStructure)
    #: Log-normal sigma of frame-to-frame size variation.
    variability: float = 0.18
    #: Average picture level stamped on every generated frame (0
    #: disables content attributes — the historical, content-agnostic
    #: default).  Pass :data:`CONTENT_APL` values for representative
    #: luminance per content family.
    apl: float = 0.0

    def __post_init__(self) -> None:
        if self.variability < 0:
            raise ConfigurationError("variability must be >= 0")
        if not 0.0 <= self.apl <= 1.0:
            raise ConfigurationError("APL must be within [0, 1]")

    def _normalised_weights(self) -> dict[FrameType, float]:
        """Per-type size multipliers scaled so the GOP average equals the
        content class's bits-per-pixel budget."""
        counts = self.gop.type_counts()
        total = sum(
            _TYPE_WEIGHTS[t] * n for t, n in counts.items() if n
        )
        frames = self.gop.length
        scale = frames / total
        return {t: _TYPE_WEIGHTS[t] * scale for t in FrameType}

    def iter_frames(self, resolution: Resolution, count: int,
                    seed: int = 0) -> Iterator[FrameDescriptor]:
        """Lazily yield ``count`` frame descriptors for a stream at
        ``resolution``.

        One RNG draw per frame in index order, so the stream is
        reproducible and materializing it with :meth:`frames` gives the
        identical sequence.
        """
        if count < 0:
            raise ConfigurationError("frame count must be >= 0")
        rng = np.random.default_rng(seed)
        weights = self._normalised_weights()
        mean_bytes = (
            self.content.bits_per_pixel * resolution.pixels / 8.0
        )
        decoded = float(resolution.frame_bytes())
        attributes = (
            ContentAttributes(apl=self.apl) if self.apl > 0 else None
        )
        for index in range(count):
            frame_type = self.gop.frame_type(index)
            noise = (
                float(rng.lognormal(mean=0.0, sigma=self.variability))
                if self.variability else 1.0
            )
            size = max(64.0, mean_bytes * weights[frame_type] * noise)
            yield FrameDescriptor(
                index=index,
                frame_type=frame_type,
                encoded_bytes=size,
                decoded_bytes=decoded,
                attributes=attributes,
            )

    def frames(self, resolution: Resolution, count: int,
               seed: int = 0) -> list[FrameDescriptor]:
        """``count`` frame descriptors for a stream at ``resolution``."""
        return list(self.iter_frames(resolution, count, seed=seed))

    def average_encoded_bytes(self, resolution: Resolution) -> float:
        """Long-run mean encoded frame size at ``resolution``."""
        return self.content.bits_per_pixel * resolution.pixels / 8.0


# ---------------------------------------------------------------------------
# Frame sources: streaming input to the simulator
# ---------------------------------------------------------------------------


@runtime_checkable
class FrameSource(Protocol):
    """An iterable stream of frame descriptors.

    The simulator pulls one frame per new-frame window, so a source only
    ever needs O(1) frames in memory.  Sources with a known length also
    implement ``__len__`` (frame count); unbounded/opaque sources require
    the caller to pass ``max_windows``.  ``fingerprint_token`` returns a
    compact canonical description of the stream for run memoization, or
    raises ``TypeError`` when the stream cannot be fingerprinted without
    materializing it.
    """

    def __iter__(self) -> Iterator[FrameDescriptor]:
        ...  # pragma: no cover - protocol

    def fingerprint_token(self) -> Any:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ListFrameSource:
    """A fully materialized frame list viewed as a source."""

    frames: tuple[FrameDescriptor, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "frames", tuple(self.frames))

    def __iter__(self) -> Iterator[FrameDescriptor]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def fingerprint_token(self) -> Any:
        return ("frames/list", self.frames)


@dataclass(frozen=True)
class RepeatingFrameSource:
    """The same frame presented ``count`` times (standby, static UI).

    Yields copies re-indexed 0..count-1 so downstream consumers see a
    well-formed stream, while the run fingerprint stays O(1).
    """

    frame: FrameDescriptor
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError("repeat count must be >= 1")

    def __iter__(self) -> Iterator[FrameDescriptor]:
        for index in range(self.count):
            yield replace(self.frame, index=index)

    def __len__(self) -> int:
        return self.count

    def fingerprint_token(self) -> Any:
        return ("frames/repeat", self.frame, self.count)


@dataclass(frozen=True)
class AnalyticFrameSource:
    """A lazily generated analytic content stream.

    Streams :meth:`AnalyticContentModel.iter_frames` without
    materializing it, so hour-long synthetic traces cost O(1) memory.
    The fingerprint covers the generator parameters, not the frames.
    """

    model: AnalyticContentModel
    resolution: Resolution
    count: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError("frame count must be >= 0")

    def __iter__(self) -> Iterator[FrameDescriptor]:
        return self.model.iter_frames(
            self.resolution, self.count, seed=self.seed
        )

    def __len__(self) -> int:
        return self.count

    def fingerprint_token(self) -> Any:
        return (
            "frames/analytic",
            self.model,
            self.resolution,
            self.count,
            self.seed,
        )


def as_frame_source(
    frames: "FrameSource | Sequence[FrameDescriptor]",
) -> FrameSource:
    """Coerce a frame list (the historical input type) or any
    :class:`FrameSource` to a source."""
    if isinstance(frames, (list, tuple)):
        return ListFrameSource(tuple(frames))
    if isinstance(frames, FrameSource):
        return frames
    raise ConfigurationError(
        f"cannot stream frames from {type(frames).__qualname__}"
    )


@dataclass
class StreamSource:
    """The DRAM jitter buffer between the network/storage producer and the
    video decoder.

    ``deliver_until(t)`` advances the (fluctuating) arrival process;
    ``pop_frame(t)`` hands the next frame to the VD.  Underruns model a
    stall (rebuffering) and are counted.
    """

    frames: list[FrameDescriptor]
    #: Average delivery bandwidth of the network/storage path, bytes/s.
    bandwidth: float
    #: Peak-to-mean fluctuation of the delivery rate (0 = constant).
    fluctuation: float = 0.25
    #: Frames buffered before playback starts.
    prebuffer_frames: int = 4
    seed: int = 0
    delivered: int = field(default=0, init=False)
    consumed: int = field(default=0, init=False)
    underruns: int = field(default=0, init=False)
    buffered_bytes: float = field(default=0.0, init=False)
    _arrival_times: list[float] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("source bandwidth must be positive")
        if not 0 <= self.fluctuation < 1:
            raise ConfigurationError("fluctuation must be in [0, 1)")
        if self.prebuffer_frames < 0:
            raise ConfigurationError("prebuffer_frames must be >= 0")
        self._compute_arrivals()

    def _compute_arrivals(self) -> None:
        """Precompute each frame's arrival completion time under the
        fluctuating delivery rate (deterministic given the seed)."""
        rng = np.random.default_rng(self.seed)
        clock = 0.0
        for descriptor in self.frames:
            rate = self.bandwidth * (
                1.0 + self.fluctuation * float(rng.uniform(-1.0, 1.0))
            )
            clock += descriptor.encoded_bytes / rate
            self._arrival_times.append(clock)

    @property
    def startup_delay(self) -> float:
        """Time until the prebuffer target is met and playback may start."""
        if not self.frames:
            return 0.0
        target = min(self.prebuffer_frames, len(self.frames))
        if target == 0:
            return 0.0
        return self._arrival_times[target - 1]

    def deliver_until(self, now: float) -> float:
        """Advance arrivals to time ``now``; returns the bytes newly
        DMA-written into the jitter buffer (DRAM write traffic)."""
        written = 0.0
        while (
            self.delivered < len(self.frames)
            and self._arrival_times[self.delivered] <= now
        ):
            size = self.frames[self.delivered].encoded_bytes
            self.buffered_bytes += size
            written += size
            self.delivered += 1
        return written

    def pop_frame(self, now: float) -> FrameDescriptor:
        """The VD takes the next frame out of the jitter buffer.

        An underrun (frame not yet delivered) is counted and the frame is
        handed over anyway at its arrival time semantics — the pipeline
        layer decides whether to stall or drop.
        """
        if self.consumed >= len(self.frames):
            raise BufferUnderflowError("the stream is exhausted")
        self.deliver_until(now)
        descriptor = self.frames[self.consumed]
        if self._arrival_times[self.consumed] > now:
            self.underruns += 1
        else:
            self.buffered_bytes = max(
                0.0, self.buffered_bytes - descriptor.encoded_bytes
            )
        self.consumed += 1
        return descriptor

    @property
    def exhausted(self) -> bool:
        """Whether every frame has been consumed."""
        return self.consumed >= len(self.frames)
