"""Bit-level writer/reader with Exp-Golomb entropy coding.

The functional codec entropy-codes quantized coefficients and motion
vectors with unsigned/signed Exp-Golomb codes — the universal codes
H.264/HEVC use for their side information — over a plain MSB-first bit
stream.
"""

from __future__ import annotations

from ..errors import CodecError


class BitWriter:
    """Accumulates bits MSB-first and yields a padded byte string."""

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (big-endian within the
        field)."""
        if width < 0:
            raise CodecError(f"bit width must be >= 0, got {width}")
        if value < 0 or (width < 64 and value >> width):
            raise CodecError(
                f"value {value} does not fit in {width} bits"
            )
        self._accumulator = (self._accumulator << width) | value
        self._bit_count += width
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._chunks.append(
                (self._accumulator >> self._bit_count) & 0xFF
            )
        self._accumulator &= (1 << self._bit_count) - 1

    def write_ue(self, value: int) -> None:
        """Unsigned Exp-Golomb: ``value`` >= 0 as zeros-prefix + binary."""
        if value < 0:
            raise CodecError(f"ue(v) needs v >= 0, got {value}")
        code = value + 1
        width = code.bit_length()
        self.write_bits(0, width - 1)
        self.write_bits(code, width)

    def write_se(self, value: int) -> None:
        """Signed Exp-Golomb via the standard zigzag integer mapping."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def getvalue(self) -> bytes:
        """The stream so far, zero-padded to a byte boundary."""
        data = bytearray(self._chunks)
        if self._bit_count:
            data.append(
                (self._accumulator << (8 - self._bit_count)) & 0xFF
            )
        return bytes(data)

    @property
    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return len(self._chunks) * 8 + self._bit_count


class BitReader:
    """Reads an MSB-first bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit cursor

    @property
    def bits_remaining(self) -> int:
        """Bits left in the stream (including any padding)."""
        return len(self._data) * 8 - self._position

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise CodecError(f"bit width must be >= 0, got {width}")
        if width > self.bits_remaining:
            raise CodecError(
                f"bitstream truncated: need {width} bits, have "
                f"{self.bits_remaining}"
            )
        value = 0
        remaining = width
        while remaining:
            byte_index, bit_offset = divmod(self._position, 8)
            take = min(8 - bit_offset, remaining)
            byte = self._data[byte_index]
            shifted = (byte >> (8 - bit_offset - take)) & ((1 << take) - 1)
            value = (value << take) | shifted
            self._position += take
            remaining -= take
        return value

    def read_ue(self) -> int:
        """Read an unsigned Exp-Golomb code."""
        zeros = 0
        while self.read_bits(1) == 0:
            zeros += 1
            if zeros > 64:
                raise CodecError("malformed Exp-Golomb prefix")
        if zeros == 0:
            return 0
        suffix = self.read_bits(zeros)
        return (1 << zeros) - 1 + suffix

    def read_se(self) -> int:
        """Read a signed Exp-Golomb code."""
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)
