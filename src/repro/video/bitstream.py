"""Bit-level writer/reader with Exp-Golomb entropy coding.

The functional codec entropy-codes quantized coefficients and motion
vectors with unsigned/signed Exp-Golomb codes — the universal codes
H.264/HEVC use for their side information — over a plain MSB-first bit
stream.

The hot paths are bulk-oriented: :meth:`BitWriter.write_bits` accepts
arbitrarily wide fields (the codec assembles a whole macroblock's
entropy codes into one big integer and appends it in a single call),
whole bytes move through :meth:`BitWriter.write_bytes` /
:meth:`BitReader.read_bytes` without per-bit work when the stream is
byte-aligned, and :meth:`BitReader.read_ue` locates the Exp-Golomb
prefix a byte at a time instead of bit by bit.
"""

from __future__ import annotations

from ..errors import CodecError


class BitWriter:
    """Accumulates bits MSB-first and yields a padded byte string."""

    def __init__(self) -> None:
        self._chunks = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits of ``value`` (big-endian within the
        field).  ``width`` may exceed 64: wide fields are appended in
        one bulk operation."""
        if width < 0:
            raise CodecError(f"bit width must be >= 0, got {width}")
        if value < 0 or value >> width:
            raise CodecError(
                f"value {value} does not fit in {width} bits"
            )
        self._accumulator = (self._accumulator << width) | value
        self._bit_count += width
        if self._bit_count >= 8:
            whole, self._bit_count = divmod(self._bit_count, 8)
            self._chunks += (
                self._accumulator >> self._bit_count
            ).to_bytes(whole, "big")
            self._accumulator &= (1 << self._bit_count) - 1

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes; a byte-aligned stream takes the O(1)
        buffer-extend fast path."""
        if self._bit_count == 0:
            self._chunks += data
        elif data:
            self.write_bits(int.from_bytes(data, "big"), 8 * len(data))

    def write_ue(self, value: int) -> None:
        """Unsigned Exp-Golomb: ``value`` >= 0 as zeros-prefix + binary."""
        if value < 0:
            raise CodecError(f"ue(v) needs v >= 0, got {value}")
        code = value + 1
        width = code.bit_length()
        self.write_bits(code, 2 * width - 1)

    def write_se(self, value: int) -> None:
        """Signed Exp-Golomb via the standard zigzag integer mapping."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def getvalue(self) -> bytes:
        """The stream so far, zero-padded to a byte boundary."""
        data = bytearray(self._chunks)
        if self._bit_count:
            data.append(
                (self._accumulator << (8 - self._bit_count)) & 0xFF
            )
        return bytes(data)

    @property
    def bit_length(self) -> int:
        """Bits written so far (before padding)."""
        return len(self._chunks) * 8 + self._bit_count


class BitReader:
    """Reads an MSB-first bit stream produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit cursor

    @property
    def bits_remaining(self) -> int:
        """Bits left in the stream (including any padding)."""
        return len(self._data) * 8 - self._position

    def read_bits(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise CodecError(f"bit width must be >= 0, got {width}")
        if width > self.bits_remaining:
            raise CodecError(
                f"bitstream truncated: need {width} bits, have "
                f"{self.bits_remaining}"
            )
        value = 0
        remaining = width
        while remaining:
            byte_index, bit_offset = divmod(self._position, 8)
            take = min(8 - bit_offset, remaining)
            byte = self._data[byte_index]
            shifted = (byte >> (8 - bit_offset - take)) & ((1 << take) - 1)
            value = (value << take) | shifted
            self._position += take
            remaining -= take
        return value

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` whole bytes; a byte-aligned cursor takes the
        O(1) slice fast path."""
        if count < 0:
            raise CodecError(f"byte count must be >= 0, got {count}")
        if 8 * count > self.bits_remaining:
            raise CodecError(
                f"bitstream truncated: need {8 * count} bits, have "
                f"{self.bits_remaining}"
            )
        if self._position % 8 == 0:
            start = self._position // 8
            self._position += 8 * count
            return bytes(self._data[start:start + count])
        return self.read_bits(8 * count).to_bytes(count, "big")

    def _leading_zeros(self) -> int:
        """Zero bits between the cursor and the next set bit, scanning a
        byte at a time (the cursor does not move).  Stops counting past
        the malformed-prefix threshold or the end of the stream."""
        position = self._position
        end = len(self._data) * 8
        zeros = 0
        while position < end and zeros <= 64:
            byte_index, bit_offset = divmod(position, 8)
            chunk = self._data[byte_index] & (0xFF >> bit_offset)
            if chunk:
                return zeros + 8 - bit_offset - chunk.bit_length()
            zeros += 8 - bit_offset
            position += 8 - bit_offset
        return zeros

    def read_ue(self) -> int:
        """Read an unsigned Exp-Golomb code."""
        zeros = self._leading_zeros()
        if zeros > 64:
            raise CodecError("malformed Exp-Golomb prefix")
        return self.read_bits(2 * zeros + 1) - 1

    def read_se(self) -> int:
        """Read a signed Exp-Golomb code."""
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)
