"""Frame and macroblock types for the functional video pipeline.

An encoded frame is a byte stream of entropy-coded macroblocks; a decoded
frame is an H x W x 3 ``uint8`` array.  Frame types follow the paper's
Sec. 2.4: I-type macroblocks reconstruct from the same frame, P-type from
the previous reference, B-type from previous and later references via
motion vectors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import CodecError, ConfigurationError

#: Macroblock edge length in pixels (the codec works in 16x16 blocks, the
#: most common granularity per the paper's Sec. 2.4).
MACROBLOCK_SIZE = 16


class FrameType(enum.Enum):
    """Frame coding types."""

    I = "I"  # noqa: E741 - the codec-standard name
    P = "P"
    B = "B"

    @property
    def needs_past_reference(self) -> bool:
        """Whether decoding needs an earlier reconstructed frame."""
        return self in (FrameType.P, FrameType.B)

    @property
    def needs_future_reference(self) -> bool:
        """Whether decoding needs a later reconstructed frame."""
        return self is FrameType.B


@dataclass(frozen=True)
class EncodedFrame:
    """One entropy-coded frame as produced by :class:`~repro.video.Codec`
    (or synthesised by the analytic content model for resolutions too
    large to run the functional codec on)."""

    index: int
    frame_type: FrameType
    width: int
    height: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("encoded frame dimensions must be > 0")
        if self.index < 0:
            raise ConfigurationError("frame index must be >= 0")

    @property
    def size_bytes(self) -> int:
        """Encoded size — what network buffering and the VD's DRAM reads
        cost."""
        return len(self.payload)

    @property
    def decoded_bytes(self) -> int:
        """Size of the decoded frame this expands to (24 bpp)."""
        return self.width * self.height * 3

    @property
    def compression_ratio(self) -> float:
        """decoded / encoded size."""
        if self.size_bytes == 0:
            raise CodecError("encoded frame has an empty payload")
        return self.decoded_bytes / self.size_bytes


@dataclass(frozen=True)
class DecodedFrame:
    """One reconstructed frame."""

    index: int
    frame_type: FrameType
    pixels: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if self.pixels.ndim != 3 or self.pixels.shape[2] != 3:
            raise CodecError(
                f"decoded frame must be HxWx3, got shape {self.pixels.shape}"
            )
        if self.pixels.dtype != np.uint8:
            raise CodecError(
                f"decoded frame must be uint8, got {self.pixels.dtype}"
            )

    @property
    def width(self) -> int:
        """Frame width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def height(self) -> int:
        """Frame height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def size_bytes(self) -> int:
        """Raw size of the frame (what a frame-buffer slot must hold)."""
        return int(self.pixels.nbytes)

    def psnr(self, reference: "DecodedFrame") -> float:
        """Peak signal-to-noise ratio against ``reference`` in dB
        (infinite for identical frames)."""
        if self.pixels.shape != reference.pixels.shape:
            raise CodecError("PSNR requires equal-shaped frames")
        diff = self.pixels.astype(np.float64) - reference.pixels.astype(
            np.float64
        )
        mse = float(np.mean(diff * diff))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(255.0 ** 2 / mse)


@dataclass(frozen=True)
class GopStructure:
    """A group-of-pictures pattern, e.g. ``IPPP`` or ``IBBP``.

    ``frame_type(i)`` is the coding type of frame ``i`` in display order;
    the pattern repeats every ``len(pattern)`` frames with an I frame at
    each repeat.
    """

    pattern: str = "IPPP"

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ConfigurationError("GOP pattern cannot be empty")
        if self.pattern[0] != "I":
            raise ConfigurationError("GOP pattern must start with an I frame")
        invalid = set(self.pattern) - {"I", "P", "B"}
        if invalid:
            raise ConfigurationError(
                f"GOP pattern has invalid frame types: {sorted(invalid)}"
            )

    @property
    def length(self) -> int:
        """Frames per GOP."""
        return len(self.pattern)

    def frame_type(self, index: int) -> FrameType:
        """Coding type of frame ``index`` (display order)."""
        if index < 0:
            raise ConfigurationError("frame index must be >= 0")
        return FrameType(self.pattern[index % self.length])

    def type_counts(self) -> dict[FrameType, int]:
        """How many of each type one GOP contains."""
        return {t: self.pattern.count(t.value) for t in FrameType}
