"""Video pipeline substrate: frame and macroblock types, a functional
macroblock-based codec, the video decoder IP with BurstLink's destination
selector, the GPU with VR projective transformation, and the network/
storage stream source (paper Sec. 2.4)."""

from .frames import (
    DecodedFrame,
    EncodedFrame,
    FrameType,
    GopStructure,
    MACROBLOCK_SIZE,
)
from .codec import Codec, CodecConfig
from .decoder import Destination, VideoDecoderIP
from .gpu import GpuIP, Viewport
from .metrics import SequenceQuality, psnr, sequence_quality, ssim
from .source import (
    AnalyticContentModel,
    AnalyticFrameSource,
    ContentClass,
    FrameSource,
    ListFrameSource,
    RepeatingFrameSource,
    StreamSource,
    as_frame_source,
)

__all__ = [
    "AnalyticContentModel",
    "AnalyticFrameSource",
    "FrameSource",
    "ListFrameSource",
    "RepeatingFrameSource",
    "as_frame_source",
    "Codec",
    "CodecConfig",
    "ContentClass",
    "DecodedFrame",
    "Destination",
    "EncodedFrame",
    "FrameType",
    "GopStructure",
    "GpuIP",
    "SequenceQuality",
    "psnr",
    "sequence_quality",
    "ssim",
    "MACROBLOCK_SIZE",
    "StreamSource",
    "VideoDecoderIP",
    "Viewport",
]
