"""The GPU IP: VR projective transformation and timing.

In VR video processing each decoded 360-degree frame passes through
projective transformation (PT) before display (paper Sec. 2.4): points of
the 3D viewing sphere inside the user's viewport are mapped onto a 2D
plane, after which the frame displays exactly like planar video.

:meth:`GpuIP.project` implements a real gnomonic (rectilinear) projection
out of an equirectangular source frame with numpy sampling, so the VR
examples and tests exercise genuine pixel work; the timing model scales
with output pixels and head angular velocity (fast head motion lowers
sampling locality and costs more — the axis that differentiates the
Fig. 11a workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GpuConfig, Resolution
from ..errors import ConfigurationError


@dataclass(frozen=True)
class Viewport:
    """A head pose and field of view, in degrees."""

    yaw: float = 0.0
    pitch: float = 0.0
    fov: float = 90.0

    def __post_init__(self) -> None:
        if not 0 < self.fov < 180:
            raise ConfigurationError(
                f"field of view must be in (0, 180), got {self.fov}"
            )
        if not -90 <= self.pitch <= 90:
            raise ConfigurationError(
                f"pitch must be in [-90, 90], got {self.pitch}"
            )


@dataclass
class GpuIP:
    """The GPU: functional projection plus a calibrated timing model."""

    config: GpuConfig = field(default_factory=GpuConfig)
    frames_projected: int = 0
    pixels_projected: float = 0.0

    # -- timing -------------------------------------------------------------

    def projection_time(self, output_pixels: float,
                        head_velocity_deg_s: float = 0.0) -> float:
        """Seconds of GPU work to project one frame of ``output_pixels``
        while the head turns at ``head_velocity_deg_s`` (delegates to the
        config's calibrated cost model)."""
        return self.config.projection_time(
            output_pixels, head_velocity_deg_s
        )

    # -- functional projection --------------------------------------------------

    def project(self, equirect: np.ndarray, viewport: Viewport,
                output: Resolution) -> np.ndarray:
        """Gnomonic projection of an equirectangular frame into the
        viewport.

        Every output pixel is cast as a ray through the virtual camera,
        rotated by the head pose, and sampled (nearest neighbour) from
        the equirectangular source.
        """
        if equirect.ndim != 3 or equirect.shape[2] != 3:
            raise ConfigurationError(
                f"equirect frame must be HxWx3, got {equirect.shape}"
            )
        src_h, src_w = equirect.shape[:2]
        out_w, out_h = output.width, output.height

        # Image-plane coordinates at unit focal distance.
        half_fov = np.radians(viewport.fov) / 2.0
        tan_half = np.tan(half_fov)
        xs = np.linspace(-tan_half, tan_half, out_w)
        ys = np.linspace(
            -tan_half * out_h / out_w, tan_half * out_h / out_w, out_h
        )
        grid_x, grid_y = np.meshgrid(xs, ys)

        # Rays in camera space (z forward, x right, y down).
        norm = np.sqrt(grid_x ** 2 + grid_y ** 2 + 1.0)
        dir_x = grid_x / norm
        dir_y = grid_y / norm
        dir_z = 1.0 / norm

        # Rotate by pitch (around x) then yaw (around y).
        pitch = np.radians(viewport.pitch)
        yaw = np.radians(viewport.yaw)
        cos_p, sin_p = np.cos(pitch), np.sin(pitch)
        ry = dir_y * cos_p - dir_z * sin_p
        rz = dir_y * sin_p + dir_z * cos_p
        cos_y, sin_y = np.cos(yaw), np.sin(yaw)
        rx = dir_x * cos_y + rz * sin_y
        rz = -dir_x * sin_y + rz * cos_y

        # Spherical coordinates -> equirectangular pixel coordinates.
        lon = np.arctan2(rx, rz)
        lat = np.arcsin(np.clip(ry, -1.0, 1.0))
        u = ((lon / (2 * np.pi) + 0.5) * src_w).astype(np.int64) % src_w
        v = np.clip(
            ((lat / np.pi + 0.5) * src_h).astype(np.int64), 0, src_h - 1
        )

        projected = equirect[v, u]
        self.frames_projected += 1
        self.pixels_projected += float(out_w * out_h)
        return projected
