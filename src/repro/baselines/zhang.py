"""Zhang et al. (MICRO'17): race-to-sleep + content caching + display
caching (paper Sec. 6.4).

Three techniques on top of the conventional pipeline:

1. **race-to-sleep** — batch several encoded frames and decode them
   back-to-back at boosted VD frequency, lengthening the idle gaps
   between decode bursts;
2. **content caching** — cache reconstructed macroblocks inside the VD
   so fewer decoded bytes are written to DRAM (an extension of
   short-circuiting);
3. **display caching** — a DC-side cache that trims the display fetch.

The paper reports the combination cutting DRAM bandwidth by ~34% on
average but total system energy by only ~6% at 4K — the DRAM round trip
survives, and the display path stays active across every window.  The
test suite checks both of those outcomes against this model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from ..pipeline.conventional import ConventionalScheme
from ..pipeline.sim import WindowContext, WindowResult


@dataclass
class ZhangScheme(ConventionalScheme):
    """Race-to-sleep + content caching + display caching."""

    #: Frames decoded per batch at boosted frequency.
    batch_size: int = 4
    #: Fraction of decoded write-back removed by content caching.
    content_cache_saving: float = 0.25
    #: Fraction of display fetch removed by display caching.
    display_cache_saving: float = 0.28
    #: VD frequency boost while racing a batch (shortens decode, raises
    #: its instantaneous power via the faster write bandwidth).
    boost: float = 1.3

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if not 0 <= self.content_cache_saving < 1:
            raise ConfigurationError("content_cache_saving out of range")
        if not 0 <= self.display_cache_saving < 1:
            raise ConfigurationError("display_cache_saving out of range")
        if self.boost < 1:
            raise ConfigurationError("boost must be >= 1")
        self.name = "zhang-rts"
        self.writeback_scale = 1.0 - self.content_cache_saving
        self.fetch_scale = 1.0 - self.display_cache_saving

    def plan_key(self) -> tuple:
        """Collapse key: the batch geometry joins the inherited traffic
        knobs (the batch *position* is window state and is covered by
        the collapse key's frame index)."""
        return super().plan_key() + (self.batch_size, self.boost)

    def frame_phase(self, frame_index: int) -> object:
        """Race-to-sleep plans by batch position: frame ``k`` decodes
        the whole batch when ``k % batch_size == 0`` and skips decode
        otherwise, so only the position within the batch matters."""
        return frame_index % self.batch_size

    def plan_window(self, ctx: WindowContext) -> WindowResult:
        """Batch decode: every ``batch_size``-th new frame decodes the
        whole batch at boosted frequency; the other new-frame windows
        skip decode entirely (their frame already sits decoded in the
        DRAM frame buffer) and only fetch/stream."""
        if not ctx.window.is_new_frame:
            return super().plan_window(ctx)
        display = min(
            ctx.frame.decoded_bytes, float(ctx.config.panel.frame_bytes)
        )
        batch_position = ctx.window.frame_index % self.batch_size
        if batch_position == 0:
            # Decode the whole batch now: the decode work is batch_size
            # frames at boosted rate.  Model it by inflating the frame's
            # decoded size (decode time and write-back both scale), while
            # pinning the display volume to a single frame.
            boosted = replace(
                ctx.frame,
                decoded_bytes=(
                    ctx.frame.decoded_bytes * self.batch_size / self.boost
                ),
                encoded_bytes=ctx.frame.encoded_bytes * self.batch_size,
            )
            return super().plan_window(
                replace(ctx, frame=boosted, display_bytes_override=display)
            )
        # Mid-batch window: no decode or write-back (the frame already
        # sits decoded in the DRAM frame buffer) — just fetch and stream.
        prefetched = replace(
            ctx.frame, decoded_bytes=1.0, encoded_bytes=1.0
        )
        return super().plan_window(
            replace(ctx, frame=prefetched, display_bytes_override=display)
        )
