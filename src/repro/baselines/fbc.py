"""Frame-buffer compression (FBC) baseline (paper Sec. 6.4, Fig. 13).

FBC compresses each decoded frame before storing it in the DRAM frame
buffer, cutting both the VD's write-back and the DC's fetch by the
compression rate (modern implementations reach ~50%).  The compression
engine itself costs compute: the paper notes high computational overhead
and a reserved graphics-memory region, and that several systems let the
driver disable the feature because the blocks are error-prone.

The scheme derives from the conventional pipeline with the write-back
and fetch traffic scaled by ``1 - compression_rate`` and a per-frame
compression-engine cost added to the C0 phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..pipeline.conventional import ConventionalScheme
from ..units import ms


@dataclass
class FrameBufferCompressionScheme(ConventionalScheme):
    """The conventional pipeline with FBC enabled."""

    #: Fraction of frame bytes removed by compression (0.5 = 50%).
    compression_rate: float = 0.5
    #: Compression-engine time per megabyte of decoded frame.
    compression_cost_per_mb: float = ms(0.02)

    def __post_init__(self) -> None:
        if not 0 < self.compression_rate < 1:
            raise ConfigurationError(
                f"compression rate must be in (0, 1), got "
                f"{self.compression_rate}"
            )
        if self.compression_cost_per_mb < 0:
            raise ConfigurationError("compression cost must be >= 0")
        self.name = f"fbc-{int(round(self.compression_rate * 100))}"
        survivor = 1.0 - self.compression_rate
        self.writeback_scale = survivor
        self.fetch_scale = survivor

    def plan_window(self, ctx):
        """Plan a window with the per-frame compression cost attached."""
        if ctx.window.is_new_frame:
            self.extra_c0_per_frame = (
                self.compression_cost_per_mb
                * ctx.frame.decoded_bytes / 2**20
            )
        return super().plan_window(ctx)
