"""VIP — Virtualizing IP chains (ISCA'15) — baseline (paper Sec. 6.4).

VIP chains IO IPs so each IP's output feeds the next directly (no DRAM
hop for the decoded frame) and trims the CPU orchestration overhead of
invoking the chain.  Its limitation, which the paper leans on: the
display panel still consumes frame data across the *entire* window, so
the VD, DC, and eDP interface stay powered all window — there is no
burst, no DRFB, and no deep C9 residency.

Model: a new-frame window runs a shortened C0 slice (reduced
orchestration + raced decode into the chain's SRAM buffers, encoded
bytes still staged through DRAM), then C8 for the rest of the window
with the DC draining at the pixel rate from the chained input.  Repeat
windows are conventional PSR windows (stock firmware: C8 parking, and
the driver's per-window work remains).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..soc.cstates import PackageCState
from ..pipeline.builder import TimelineBuilder
from ..pipeline.sim import WindowContext, WindowResult
from ..pipeline.timeline import PanelMode, VdMode


@dataclass
class VipScheme:
    """IP chaining without bursting."""

    name: str = "vip"
    #: VIP trims CPU orchestration by chaining IP invocations.
    orchestration_scale: float = 0.8

    def plan_key(self) -> tuple:
        """Collapse key: VIP keeps no per-window state."""
        return (self.name, self.orchestration_scale)

    def frame_phase(self, frame_index: int) -> object:
        """Plans read only the frame's content, never its index."""
        return None

    def plan_window(self, ctx: WindowContext) -> WindowResult:
        """Plan one refresh window under VIP."""
        if not ctx.window.is_new_frame:
            return self._plan_repeat(ctx)
        return self._plan_new_frame(ctx)

    # ------------------------------------------------------------------

    def _plan_repeat(self, ctx: WindowContext) -> WindowResult:
        """Conventional PSR repeat window (driver work + C8 parking)."""
        cfg = ctx.config
        builder = TimelineBuilder(
            start=ctx.window.start, initial_state=ctx.initial_state
        )
        orchestration = min(
            cfg.orchestration.baseline_per_frame
            * self.orchestration_scale,
            ctx.window.duration,
        )
        if orchestration > 0:
            builder.add(
                orchestration,
                PackageCState.C0,
                label="chain upkeep",
                cpu_active=True,
                panel_mode=PanelMode.SELF_REFRESH,
            )
        builder.fill_to(
            ctx.window.end,
            PackageCState.C8,
            label="psr",
            panel_mode=PanelMode.SELF_REFRESH,
        )
        return WindowResult(timeline=builder.build(), used_psr=True)

    # ------------------------------------------------------------------

    def _plan_new_frame(self, ctx: WindowContext) -> WindowResult:
        """C0 chain setup + decode, then a full window of C8 draining."""
        cfg = ctx.config
        window = ctx.window.duration
        pixel_rate = cfg.panel.pixel_update_bandwidth

        orchestration = (
            cfg.orchestration.baseline_per_frame * self.orchestration_scale
        )
        decode = cfg.decoder.decode_time(
            ctx.frame.decoded_bytes, window, race=True
        )
        projection = ctx.vr.projection_s if ctx.vr is not None else 0.0
        active = orchestration + decode + projection
        missed = active > window
        active = min(active, window)

        # Only the encoded stream touches DRAM; the decoded frame rides
        # the chain's internal buffers.  VR chains still round-trip the
        # source sphere (the GPU needs random access into it).
        staged = ctx.frame.encoded_bytes
        reads = staged
        writes = staged
        if ctx.vr is not None:
            reads += ctx.vr.source_bytes
            writes += ctx.vr.source_bytes

        builder = TimelineBuilder(
            start=ctx.window.start, initial_state=ctx.initial_state
        )
        builder.add(
            active,
            PackageCState.C0,
            label="chain setup+decode",
            cpu_active=True,
            vd_mode=VdMode.ACTIVE,
            gpu_active=ctx.vr is not None,
            dram_read_bw=reads / active,
            dram_write_bw=writes / active,
            dc_active=True,
            edp_rate=pixel_rate,
            panel_mode=PanelMode.LIVE,
        )
        builder.fill_to(
            ctx.window.end,
            PackageCState.C8,
            label="chained drain",
            dc_active=True,
            edp_rate=pixel_rate,
            panel_mode=PanelMode.LIVE,
        )
        return WindowResult(
            timeline=builder.build(),
            deadline_missed=missed,
            bypassed_dram=True,
        )
