"""Competing techniques the paper compares BurstLink against (Sec. 6.4):
frame-buffer compression, Zhang et al.'s race-to-sleep + content caching
+ display caching, and VIP's virtualized IP chains."""

from .fbc import FrameBufferCompressionScheme
from .zhang import ZhangScheme
from .vip import VipScheme

__all__ = [
    "FrameBufferCompressionScheme",
    "VipScheme",
    "ZhangScheme",
]
