"""Exception hierarchy for the BurstLink reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch the whole family with one ``except`` clause.  Subclasses
mark *which layer* of the system misbehaved, mirroring the package layout
(SoC model, DRAM, display subsystem, video pipeline, power model).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A system/display/workload configuration is inconsistent or
    out of the modeled range (e.g. a refresh rate of zero, an eDP link
    slower than the panel's pixel-update rate)."""


class PowerStateError(ReproError):
    """An illegal power-state transition or an unknown package C-state."""


class DataPathError(ReproError):
    """A datapath invariant was violated: writing into a full buffer,
    reading a frame that was never produced, DMA into an unmapped region."""


class BufferOverflowError(DataPathError):
    """More bytes were pushed into a fixed-capacity buffer than it holds."""


class BufferUnderflowError(DataPathError):
    """More bytes were drained from a buffer than it currently holds."""


class CodecError(ReproError):
    """The functional video codec was asked to decode a malformed or
    truncated bitstream, or to encode an unsupported frame."""


class DeadlineMissError(ReproError):
    """A frame could not be decoded/fetched/transferred within its refresh
    window.  Raised only when a pipeline is configured with
    ``strict_deadlines=True``; otherwise the miss is recorded on the run
    statistics instead."""


class SimulationError(ReproError):
    """The discrete-event frame-window simulator reached an inconsistent
    state (e.g. overlapping exclusive activities, time moving backwards)."""


class CalibrationError(ReproError):
    """A calibrated power library fails its internal consistency checks
    (e.g. component powers no longer sum to the anchored package power)."""
