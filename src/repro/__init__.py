"""BurstLink reproduction — energy-efficient video display for
conventional and virtual-reality systems (Haj-Yahya et al., MICRO 2021).

The package models the full mobile video-display stack: the SoC with its
package C-states and PMU, DRAM with the paper's two-part power model, the
display subsystem (DC, eDP link, panel T-con with RFB/DRFB, PSR/PSR2), a
functional macroblock codec and VR projection, a frame-window simulator,
the BurstLink mechanisms (Frame Buffer Bypass + Frame Bursting), every
baseline the paper compares against, and the validated analytical power
model that evaluates them all.

Quickstart::

    from repro import (
        BurstLinkScheme, ConventionalScheme, FrameWindowSimulator,
        PowerModel, skylake_tablet, UHD_4K,
    )
    from repro.video.source import AnalyticContentModel

    config = skylake_tablet(UHD_4K)
    frames = AnalyticContentModel().frames(UHD_4K, 60)
    baseline = FrameWindowSimulator(config, ConventionalScheme()).run(
        frames, video_fps=60.0
    )
    burstlink = FrameWindowSimulator(
        config.with_drfb(), BurstLinkScheme()
    ).run(frames, video_fps=60.0)
    model = PowerModel()
    saving = 1 - (model.report(burstlink).average_power_mw
                  / model.report(baseline).average_power_mw)
    print(f"BurstLink saves {saving:.0%}")
"""

from .config import (
    EDP_1_3,
    EDP_1_4,
    EdpConfig,
    FHD,
    PLANAR_RESOLUTIONS,
    PanelConfig,
    QHD,
    Resolution,
    SystemConfig,
    UHD_4K,
    UHD_5K,
    VR_EYE_RESOLUTIONS,
    skylake_tablet,
    vr_headset,
)
from .core import (
    BurstLinkScheme,
    FrameBufferBypassScheme,
    FrameBurstingScheme,
    HardwareCostModel,
    SchemeSelector,
    WindowedVideoScheme,
    select_scheme,
)
from .errors import ReproError
from .pipeline import (
    ConventionalScheme,
    FrameWindowSimulator,
    RunResult,
    Timeline,
)
from .power import (
    PlatformExtras,
    PowerModel,
    SKYLAKE_TABLET_POWER,
    breakdown_report,
    validate_against_paper,
)
from .soc import PackageCState

__version__ = "1.0.0"

__all__ = [
    "BurstLinkScheme",
    "ConventionalScheme",
    "EDP_1_3",
    "EDP_1_4",
    "EdpConfig",
    "FHD",
    "FrameBufferBypassScheme",
    "FrameBurstingScheme",
    "FrameWindowSimulator",
    "HardwareCostModel",
    "PLANAR_RESOLUTIONS",
    "PackageCState",
    "PanelConfig",
    "PlatformExtras",
    "PowerModel",
    "QHD",
    "ReproError",
    "Resolution",
    "RunResult",
    "SKYLAKE_TABLET_POWER",
    "SchemeSelector",
    "SystemConfig",
    "Timeline",
    "UHD_4K",
    "UHD_5K",
    "VR_EYE_RESOLUTIONS",
    "WindowedVideoScheme",
    "breakdown_report",
    "select_scheme",
    "skylake_tablet",
    "validate_against_paper",
    "vr_headset",
    "__version__",
]
