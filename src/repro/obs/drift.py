"""The paper-drift regression gate.

The golden-trace suite pins *exact bytes*; this module pins *published
numbers*.  Every expectation below anchors one value the paper prints —
a Table 2 residency or average power, the Fig. 1 DRAM share, the Fig. 4
streaming power, a Fig. 9/11/12 reduction percentage — with a tolerance
band wide enough for the reproduction's documented deviation (see
EXPERIMENTS.md) and no wider.  ``repro validate`` recomputes every
anchor from the live simulation stack and fails (non-zero exit) the
moment one leaves its band, so modelling drift is caught the same way a
broken test is.

The second half is the *performance* regression gate: ``repro
bench-all --record`` persists one wall-clock + cache-hit snapshot per
day under ``benchmarks/history/BENCH_<date>.json``; ``--check``
compares a fresh run against the most recent snapshot and fails on a
>15% total wall-clock regression.
"""

from __future__ import annotations

import datetime
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.runner import ExhibitOutcome
    from ..power.calibration import ComponentPowerLibrary
    from ..stats.bootstrap import IntervalEstimate

#: Default location of the bench history (relative to the repo root).
DEFAULT_HISTORY_DIR = "benchmarks/history"

#: Fractional total-wall-clock growth that fails ``bench-all --check``.
BENCH_REGRESSION_THRESHOLD = 0.15

#: Every measurable drift section, in presentation order.
DRIFT_SECTIONS = (
    "table2", "fig01", "fig04", "fig09", "fig11", "fig12",
)

#: Scenario-expansion sections: anchored to external measurements
#: rather than to the source paper, so they ride a separate tuple and a
#: default ``repro validate`` run stays the paper's 19 anchors.
#: Select them explicitly (``repro validate --section oled``) — CI does.
SCENARIO_SECTIONS = ("oled", "netstream")


# ---------------------------------------------------------------------------
# Expectations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expectation:
    """One published number, with the band the reproduction must hit.

    Exactly one of ``tol_abs`` (same unit as ``paper``) or ``tol_rel``
    (fraction of ``paper``) must be set.
    """

    key: str
    section: str
    description: str
    paper: float
    unit: str
    tol_abs: float | None = None
    tol_rel: float | None = None

    def __post_init__(self) -> None:
        if (self.tol_abs is None) == (self.tol_rel is None):
            raise ConfigurationError(
                f"expectation {self.key!r} needs exactly one of "
                "tol_abs/tol_rel"
            )

    @property
    def tolerance(self) -> float:
        """The band half-width, in the expectation's unit."""
        if self.tol_abs is not None:
            return self.tol_abs
        assert self.tol_rel is not None
        return abs(self.paper) * self.tol_rel

    @property
    def low(self) -> float:
        return self.paper - self.tolerance

    @property
    def high(self) -> float:
        return self.paper + self.tolerance

    def check(self, actual: float) -> "DriftRow":
        ok = (
            math.isfinite(actual)
            and self.low <= actual <= self.high
        )
        return DriftRow(expectation=self, actual=actual, ok=ok)

    def check_interval(
        self, estimate: "IntervalEstimate"
    ) -> "DriftRow":
        """Interval semantics: pass when the reproduction's CI
        intersects the paper band.  A single-seed estimate has a
        zero-width CI at its point value, so this degenerates to
        exactly :meth:`check`."""
        ok = (
            math.isfinite(estimate.mean)
            and estimate.overlaps(self.low, self.high)
        )
        return DriftRow(
            expectation=self,
            actual=estimate.mean,
            ok=ok,
            estimate=estimate,
        )


@dataclass(frozen=True)
class DriftRow:
    """One checked expectation (point or interval mode)."""

    expectation: Expectation
    actual: float
    ok: bool
    #: Multi-seed CI behind ``actual`` (``None`` in point mode).
    estimate: "IntervalEstimate | None" = None

    @property
    def deviation(self) -> float:
        """Signed distance from the paper value, in the unit."""
        return self.actual - self.expectation.paper


@dataclass
class DriftReport:
    """Every checked expectation plus the verdict."""

    rows: list[DriftRow] = field(default_factory=list)
    #: Expectation keys that could not be measured (section not run).
    skipped: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    @property
    def failures(self) -> list[DriftRow]:
        return [row for row in self.rows if not row.ok]

    @property
    def interval(self) -> bool:
        """Whether any row carries a multi-seed CI."""
        return any(row.estimate is not None for row in self.rows)

    def summary(self) -> str:
        """The aligned drift table ``repro validate`` appends.

        Interval reports grow a ``ci`` column (the bootstrap CI the
        overlap check used) and quote the seed count in the verdict.
        """
        from ..analysis.report import format_table

        interval = self.interval
        table_rows = []
        for row in self.rows:
            cells = [
                row.expectation.key,
                row.expectation.description,
                f"{row.expectation.paper:g} {row.expectation.unit}",
                f"±{row.expectation.tolerance:g}",
                f"{row.actual:.2f}",
            ]
            if interval:
                est = row.estimate
                cells.append(
                    f"[{est.lo:.2f}, {est.hi:.2f}]"
                    if est is not None else "-"
                )
            cells.append("ok" if row.ok else "DRIFT")
            table_rows.append(tuple(cells))
        mode = ""
        if interval:
            seeds = max(
                (r.estimate.n for r in self.rows if r.estimate),
                default=1,
            )
            mode = f", CI overlap over {seeds} seeds"
        verdict = (
            f"drift gate: PASS ({len(self.rows)} anchors in "
            f"band{mode})"
            if self.ok
            else (
                f"drift gate: FAIL ({len(self.failures)} of "
                f"{len(self.rows)} anchors out of band{mode}: "
                + ", ".join(r.expectation.key for r in self.failures)
                + ")"
            )
        )
        if self.skipped:
            verdict += f"  [skipped: {', '.join(self.skipped)}]"
        headers = ["anchor", "what", "paper", "band", "actual"]
        if interval:
            headers.append("ci")
        headers.append("status")
        return (
            format_table(tuple(headers), table_rows)
            + "\n\n"
            + verdict
        )

    def to_dict(self) -> dict[str, Any]:
        anchors = []
        for row in self.rows:
            anchor = {
                "key": row.expectation.key,
                "section": row.expectation.section,
                "description": row.expectation.description,
                "paper": row.expectation.paper,
                "unit": row.expectation.unit,
                "low": row.expectation.low,
                "high": row.expectation.high,
                # Short aliases + the explicit half-width, so JSON
                # consumers need not re-derive the band.
                "lo": row.expectation.low,
                "hi": row.expectation.high,
                "tolerance": row.expectation.tolerance,
                "actual": row.actual,
                "deviation": row.deviation,
                "ok": row.ok,
            }
            if row.estimate is not None:
                anchor["ci"] = row.estimate.to_dict()
            anchors.append(anchor)
        return {
            "ok": self.ok,
            "mode": "interval" if self.interval else "point",
            "anchors": anchors,
            "skipped": list(self.skipped),
        }


#: The paper-anchored expectation table.  Bands come from the measured
#: deviations recorded in EXPERIMENTS.md: tight where the reproduction
#: tracks the paper closely (Table 2 powers within ~3%), wide where a
#: deviation is known and explained there (the high-resolution Fig. 12
#: overshoot from full-fidelity DRAM fetch scaling).
PAPER_EXPECTATIONS: tuple[Expectation, ...] = (
    # Table 2 — per-C-state power/residency, FHD 30 FPS.
    Expectation(
        "table2.baseline.avg_mw", "table2",
        "baseline AvgP, FHD 30FPS", 2162.0, "mW", tol_rel=0.05,
    ),
    Expectation(
        "table2.baseline.c0_pct", "table2",
        "baseline C0 residency", 9.0, "%", tol_abs=2.0,
    ),
    Expectation(
        "table2.baseline.c2_pct", "table2",
        "baseline C2 residency", 11.0, "%", tol_abs=2.0,
    ),
    Expectation(
        "table2.baseline.c8_pct", "table2",
        "baseline C8 residency", 80.0, "%", tol_abs=3.0,
    ),
    Expectation(
        "table2.burstlink.avg_mw", "table2",
        "BurstLink AvgP, FHD 30FPS", 1274.0, "mW", tol_rel=0.06,
    ),
    Expectation(
        "table2.burstlink.c7_pct", "table2",
        "BurstLink C7 residency", 19.0, "%", tol_abs=3.0,
    ),
    Expectation(
        "table2.burstlink.c9_pct", "table2",
        "BurstLink C9 residency", 79.0, "%", tol_abs=3.0,
    ),
    Expectation(
        "table2.reduction_pct", "table2",
        "BurstLink energy reduction (\">40%\")", 40.0, "%",
        tol_abs=3.0,
    ),
    # Fig. 1 — baseline energy breakdown (DRAM share of total).
    Expectation(
        "fig01.dram_share_4k_pct", "fig01",
        "DRAM share of 4K baseline energy (\">30%\")", 30.0, "%",
        tol_abs=5.0,
    ),
    Expectation(
        "fig01.dram_share_fhd_pct", "fig01",
        "DRAM share of FHD baseline energy", 20.0, "%", tol_abs=4.0,
    ),
    # Fig. 4 — streaming mean power.
    Expectation(
        "fig04.streaming_avg_mw", "fig04",
        "mean power, FHD 60FPS streaming", 2831.0, "mW", tol_rel=0.05,
    ),
    # Fig. 9 — 30 FPS planar reductions.
    Expectation(
        "fig09.fhd.burst_pct", "fig09",
        "Frame Bursting reduction, FHD 30FPS", 23.0, "%", tol_abs=4.0,
    ),
    Expectation(
        "fig09.fhd.bypass_pct", "fig09",
        "Bypass reduction, FHD 30FPS", 31.0, "%", tol_abs=5.0,
    ),
    Expectation(
        "fig09.fhd.burstlink_pct", "fig09",
        "BurstLink reduction, FHD 30FPS", 37.0, "%", tol_abs=5.0,
    ),
    Expectation(
        "fig09.4k.burstlink_pct", "fig09",
        "BurstLink reduction, 4K 30FPS (Sec. 6.4)", 40.6, "%",
        tol_abs=9.0,
    ),
    # Fig. 11 — VR streaming reductions.
    Expectation(
        "fig11.elephant_pct", "fig11",
        "VR Elephant reduction (\"up to 33%\")", 33.0, "%",
        tol_abs=4.0,
    ),
    Expectation(
        "fig11.rollercoaster_pct", "fig11",
        "VR Rollercoaster reduction (least-benefit axis)", 24.0, "%",
        tol_abs=4.0,
    ),
    # Fig. 12 — 60 FPS planar reductions.
    Expectation(
        "fig12.fhd.burstlink_pct", "fig12",
        "BurstLink reduction, FHD 60FPS", 46.0, "%", tol_abs=6.0,
    ),
    Expectation(
        "fig12.5k.burstlink_pct", "fig12",
        "BurstLink reduction, 5K 60FPS (known overshoot)", 47.0, "%",
        tol_abs=16.0,
    ),
)


#: The scenario-expansion expectation table.  The OLED anchors pin the
#: luminance model this reproduction adds on top of the paper (emission
#: linear in brightness x APL; Duinkharjav et al. 2022 motivate the
#: lever): full-brightness FHD natural content lands near the
#: calibrated LCD's draw by construction, and BurstLink's relative
#: saving shrinks as the emissive floor grows.  The netstream anchors
#: follow Herglotz et al.'s HTTP-adaptive-streaming measurements:
#: end-to-end playback power in the low-watt band and nearly flat in
#: delivered bitrate (the display path dominates), with rebuffering
#: stalls appearing only under constrained bandwidth.
SCENARIO_EXPECTATIONS: tuple[Expectation, ...] = (
    # OLED — brightness sweep, FHD 30 FPS natural content.
    Expectation(
        "oled.full.conventional_mw", "oled",
        "conventional OLED power at full brightness", 2180.0, "mW",
        tol_rel=0.06,
    ),
    Expectation(
        "oled.full.reduction_pct", "oled",
        "BurstLink reduction at full brightness", 40.0, "%",
        tol_abs=5.0,
    ),
    Expectation(
        "oled.dim.reduction_pct", "oled",
        "BurstLink reduction at 0.4 brightness", 49.0, "%",
        tol_abs=5.0,
    ),
    Expectation(
        "oled.full.panel_share_pct", "oled",
        "panel share of conventional energy, full brightness",
        36.0, "%", tol_abs=6.0,
    ),
    # Netstream — ABR playback vs bandwidth (Herglotz et al. anchors).
    Expectation(
        "netstream.ample.conventional_mw", "netstream",
        "conventional streaming power, ample bandwidth", 2200.0,
        "mW", tol_rel=0.06,
    ),
    Expectation(
        "netstream.ample.reduction_pct", "netstream",
        "BurstLink reduction, ample bandwidth", 40.0, "%",
        tol_abs=5.0,
    ),
    Expectation(
        "netstream.power_spread_pct", "netstream",
        "power spread across bandwidth conditions (\"nearly flat\")",
        0.0, "%", tol_abs=5.0,
    ),
    Expectation(
        "netstream.constrained.stall_pct", "netstream",
        "stall-repeat share under constrained bandwidth", 20.0, "%",
        tol_abs=8.0,
    ),
)


def expectations_for(
    sections: tuple[str, ...],
) -> list[Expectation]:
    """The expectations belonging to ``sections`` (validated)."""
    known = DRIFT_SECTIONS + SCENARIO_SECTIONS
    unknown = [s for s in sections if s not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown drift sections: {', '.join(unknown)}; "
            f"known: {', '.join(known)}"
        )
    return [
        e for e in PAPER_EXPECTATIONS + SCENARIO_EXPECTATIONS
        if e.section in sections
    ]


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure_table2(
    library: "ComponentPowerLibrary | None",
) -> dict[str, float]:
    from ..analysis.experiments import content_seed
    from ..config import FHD, skylake_tablet
    from ..core.burstlink import BurstLinkScheme
    from ..pipeline.conventional import ConventionalScheme
    from ..pipeline.sim import FrameWindowSimulator
    from ..power.model import PowerModel
    from ..soc.cstates import PackageCState
    from ..video.source import AnalyticContentModel

    model = (
        PowerModel(library=library) if library is not None
        else PowerModel()
    )
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(
        FHD, 60, seed=content_seed()
    )
    base_run = FrameWindowSimulator(
        config, ConventionalScheme()
    ).run(frames, 30.0)
    base = model.report(base_run)
    base_res = base_run.residency_fractions()
    bl_run = FrameWindowSimulator(
        config.with_drfb(), BurstLinkScheme()
    ).run(frames, 30.0)
    burstlink = model.report(bl_run)
    bl_res = bl_run.residency_fractions()
    return {
        "table2.baseline.avg_mw": base.average_power_mw,
        "table2.baseline.c0_pct":
            100 * base_res.get(PackageCState.C0, 0.0),
        "table2.baseline.c2_pct":
            100 * base_res.get(PackageCState.C2, 0.0),
        "table2.baseline.c8_pct":
            100 * base_res.get(PackageCState.C8, 0.0),
        "table2.burstlink.avg_mw": burstlink.average_power_mw,
        "table2.burstlink.c7_pct":
            100 * bl_res.get(PackageCState.C7, 0.0),
        "table2.burstlink.c9_pct":
            100 * bl_res.get(PackageCState.C9, 0.0),
        "table2.reduction_pct": 100 * (
            1.0 - burstlink.average_power_mw / base.average_power_mw
        ),
    }


def _measure_fig01() -> dict[str, float]:
    from ..analysis.experiments import fig01_energy_breakdown

    result = fig01_energy_breakdown()
    return {
        "fig01.dram_share_4k_pct": 100 * result.dram_fraction("4K"),
        "fig01.dram_share_fhd_pct": 100 * result.dram_fraction("FHD"),
    }


def _measure_fig04(
    library: "ComponentPowerLibrary | None",
) -> dict[str, float]:
    from ..analysis.experiments import content_seed
    from ..config import FHD, skylake_tablet
    from ..pipeline.conventional import ConventionalScheme
    from ..pipeline.sim import FrameWindowSimulator
    from ..power.model import PowerModel
    from ..video.source import AnalyticContentModel

    model = (
        PowerModel(library=library) if library is not None
        else PowerModel()
    )
    config = skylake_tablet(FHD)
    frames = AnalyticContentModel().frames(
        FHD, 60, seed=content_seed()
    )
    run = FrameWindowSimulator(
        config, ConventionalScheme()
    ).run(frames, 60.0)
    return {
        "fig04.streaming_avg_mw": model.report(run).average_power_mw,
    }


def _measure_fig09() -> dict[str, float]:
    from ..analysis.experiments import fig09_planar_reduction_30fps

    result = fig09_planar_reduction_30fps()
    return {
        "fig09.fhd.burst_pct":
            100 * result.reductions["FHD"]["burst"],
        "fig09.fhd.bypass_pct":
            100 * result.reductions["FHD"]["bypass"],
        "fig09.fhd.burstlink_pct":
            100 * result.reductions["FHD"]["burstlink"],
        "fig09.4k.burstlink_pct":
            100 * result.reductions["4K"]["burstlink"],
    }


def _measure_fig11() -> dict[str, float]:
    from ..analysis.experiments import fig11a_vr_workloads

    result = fig11a_vr_workloads()
    return {
        "fig11.elephant_pct": 100 * result.reductions["Elephant"],
        "fig11.rollercoaster_pct":
            100 * result.reductions["Rollercoaster"],
    }


def _measure_fig12() -> dict[str, float]:
    from ..analysis.experiments import fig12_planar_reduction_60fps

    result = fig12_planar_reduction_60fps()
    return {
        "fig12.fhd.burstlink_pct":
            100 * result.reductions["FHD"]["burstlink"],
        "fig12.5k.burstlink_pct":
            100 * result.reductions["5K"]["burstlink"],
    }


def _measure_oled() -> dict[str, float]:
    from ..analysis.experiments import oled_brightness_sweep

    result = oled_brightness_sweep()
    return {
        "oled.full.conventional_mw":
            result.power_mw["conventional"][1.0],
        "oled.full.reduction_pct": 100 * result.reduction(1.0),
        "oled.dim.reduction_pct": 100 * result.reduction(0.4),
        "oled.full.panel_share_pct":
            100 * result.panel_fraction[1.0],
    }


def _measure_netstream() -> dict[str, float]:
    from ..analysis.experiments import network_streamed_playback

    result = network_streamed_playback()
    conventional = result.power_mw
    lowest = min(c["conventional"] for c in conventional.values())
    highest = max(c["conventional"] for c in conventional.values())
    return {
        "netstream.ample.conventional_mw":
            result.power_mw["ample"]["conventional"],
        "netstream.ample.reduction_pct":
            100 * result.reduction("ample"),
        "netstream.power_spread_pct":
            100 * (highest / lowest - 1.0),
        "netstream.constrained.stall_pct":
            100 * result.stall_ratio["constrained"],
    }


def measure_expectations(
    sections: tuple[str, ...] = DRIFT_SECTIONS,
    library: "ComponentPowerLibrary | None" = None,
) -> dict[str, float]:
    """Recompute every anchor in ``sections`` from the live stack.

    ``library`` substitutes an alternative calibrated power library
    into the sections that evaluate the power model directly (Table 2,
    Fig. 4) — how the tests demonstrate the gate catching a perturbed
    constant.
    """
    expectations_for(sections)  # validates the section names
    actuals: dict[str, float] = {}
    if "table2" in sections:
        actuals.update(_measure_table2(library))
    if "fig01" in sections:
        actuals.update(_measure_fig01())
    if "fig04" in sections:
        actuals.update(_measure_fig04(library))
    if "fig09" in sections:
        actuals.update(_measure_fig09())
    if "fig11" in sections:
        actuals.update(_measure_fig11())
    if "fig12" in sections:
        actuals.update(_measure_fig12())
    if "oled" in sections:
        actuals.update(_measure_oled())
    if "netstream" in sections:
        actuals.update(_measure_netstream())
    return actuals


def check_drift(
    actuals: dict[str, float] | None = None,
    sections: tuple[str, ...] = DRIFT_SECTIONS,
    library: "ComponentPowerLibrary | None" = None,
) -> DriftReport:
    """Check every expectation in ``sections`` against ``actuals``
    (measured live when not supplied)."""
    selected = expectations_for(sections)
    if actuals is None:
        actuals = measure_expectations(sections, library=library)
    report = DriftReport()
    for expectation in selected:
        if expectation.key not in actuals:
            report.skipped.append(expectation.key)
            continue
        report.rows.append(
            expectation.check(actuals[expectation.key])
        )
    return report


def check_drift_interval(
    samples: dict[str, list[float]] | None = None,
    sections: tuple[str, ...] = DRIFT_SECTIONS,
    seeds: int = 1,
    jobs: int = 1,
    library: "ComponentPowerLibrary | None" = None,
    confidence: float | None = None,
    resamples: int | None = None,
) -> DriftReport:
    """The uncertainty-aware drift gate.

    Each anchor is re-measured once per seed offset (``samples`` maps
    anchor key -> per-seed values; measured live through
    :func:`repro.stats.replicate.replicate_expectations` when not
    supplied), summarized as a bootstrap CI, and passes when that CI
    *overlaps* the paper band.  With one seed the CI is zero-width at
    the point value, so the verdict — and every anchor's ok flag — is
    identical to :func:`check_drift`.
    """
    from ..stats import bootstrap
    from ..stats.replicate import replicate_expectations

    selected = expectations_for(sections)
    if samples is None:
        samples = replicate_expectations(
            sections, seeds=seeds, jobs=jobs, library=library
        )
    kwargs: dict[str, Any] = {}
    if confidence is not None:
        kwargs["confidence"] = confidence
    if resamples is not None:
        kwargs["resamples"] = resamples
    report = DriftReport()
    for expectation in selected:
        values = samples.get(expectation.key)
        if not values:
            report.skipped.append(expectation.key)
            continue
        estimate = bootstrap.bootstrap_mean(
            values,
            seed=bootstrap.stable_seed(expectation.key),
            **kwargs,
        )
        report.rows.append(expectation.check_interval(estimate))
    return report


# ---------------------------------------------------------------------------
# Bench history — the wall-clock regression gate
# ---------------------------------------------------------------------------


def bench_snapshot(
    outcomes: "list[ExhibitOutcome]",
    date: str | None = None,
    wall_samples: dict[str, list[float]] | None = None,
) -> dict[str, Any]:
    """One recordable history entry for a ``bench-all`` run.

    ``wall_samples`` (exhibit -> per-repeat wall-clock seconds, from
    ``bench-all --repeat N``) adds a bootstrap CI half-width per
    exhibit plus ``total_wall_ci_half_s``/``repeat`` — still format 1,
    the extra fields are optional for readers.
    """
    if not outcomes:
        raise SimulationError("cannot snapshot an empty bench run")
    snapshot: dict[str, Any] = {
        "format": 1,
        "date": date or datetime.date.today().isoformat(),
        "total_wall_s": sum(
            o.metrics.wall_clock_s for o in outcomes
        ),
        "total_cache_hits": sum(
            o.metrics.cache_hits for o in outcomes
        ),
        "total_cache_misses": sum(
            o.metrics.cache_misses for o in outcomes
        ),
        "exhibits": {
            o.name: {
                "wall_s": o.metrics.wall_clock_s,
                "cache_hits": o.metrics.cache_hits,
                "cache_misses": o.metrics.cache_misses,
                "windows": o.metrics.windows_simulated,
            }
            for o in outcomes
        },
    }
    if wall_samples:
        from ..stats import bootstrap

        repeats = max(len(v) for v in wall_samples.values())
        half_widths = {}
        for name, values in wall_samples.items():
            if name not in snapshot["exhibits"]:
                continue
            estimate = bootstrap.bootstrap_mean(
                values, seed=bootstrap.stable_seed(f"bench.{name}")
            )
            entry = snapshot["exhibits"][name]
            entry["wall_ci_half_s"] = estimate.half_width
            entry["wall_mean_s"] = estimate.mean
            half_widths[name] = estimate.half_width
        snapshot["repeat"] = repeats
        # Conservative total: half-widths add (perfectly correlated
        # worst case), matching how total_wall_s sums means.
        snapshot["total_wall_ci_half_s"] = sum(
            half_widths.values()
        )
    return snapshot


def record_bench(
    outcomes: "list[ExhibitOutcome]",
    directory: str | Path = DEFAULT_HISTORY_DIR,
    date: str | None = None,
    wall_samples: dict[str, list[float]] | None = None,
) -> Path:
    """Persist one snapshot as ``BENCH_<date>.json`` (same-day re-runs
    overwrite, so the history holds at most one entry per day)."""
    snapshot = bench_snapshot(
        outcomes, date=date, wall_samples=wall_samples
    )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{snapshot['date']}.json"
    path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def latest_baseline(
    directory: str | Path = DEFAULT_HISTORY_DIR,
) -> tuple[Path, dict[str, Any]] | None:
    """The most recent recorded snapshot (ISO dates sort lexically),
    or ``None`` when the history is empty."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("BENCH_*.json"))
    for path in reversed(candidates):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if payload.get("format") == 1:
            return path, payload
    return None


@dataclass
class BenchCheck:
    """Verdict of a bench run against the recorded baseline."""

    ok: bool
    baseline_path: Path
    baseline_total_s: float
    current_total_s: float
    threshold: float
    notes: list[str] = field(default_factory=list)

    @property
    def growth(self) -> float:
        """Fractional total wall-clock growth vs the baseline."""
        if self.baseline_total_s <= 0:
            return 0.0
        return (
            self.current_total_s / self.baseline_total_s - 1.0
        )

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"bench gate: {verdict} — total {self.current_total_s:.2f}s "
            f"vs baseline {self.baseline_total_s:.2f}s "
            f"({self.growth * +100:+.1f}%, limit "
            f"+{self.threshold * 100:.0f}%) "
            f"[{self.baseline_path.name}]"
        ]
        lines.extend(self.notes)
        return "\n".join(lines)


def check_bench(
    outcomes: "list[ExhibitOutcome]",
    directory: str | Path = DEFAULT_HISTORY_DIR,
    threshold: float = BENCH_REGRESSION_THRESHOLD,
) -> BenchCheck:
    """Fail when this run's total wall-clock exceeds the most recent
    baseline by more than ``threshold``.  Per-exhibit regressions and
    cache-hit drops are reported as notes (informational — individual
    exhibits are too small to gate on reliably)."""
    baseline = latest_baseline(directory)
    if baseline is None:
        raise ConfigurationError(
            f"no bench baseline under {directory}; record one first "
            "with `repro bench-all --record`"
        )
    path, payload = baseline
    current = bench_snapshot(outcomes)
    ok = current["total_wall_s"] <= (
        payload["total_wall_s"] * (1.0 + threshold)
    )
    notes: list[str] = []
    for name, entry in current["exhibits"].items():
        base_entry = payload["exhibits"].get(name)
        if base_entry is None or base_entry["wall_s"] < 0.05:
            continue
        if entry["wall_s"] > base_entry["wall_s"] * (1.0 + threshold):
            notes.append(
                f"  note: {name} {base_entry['wall_s']:.2f}s -> "
                f"{entry['wall_s']:.2f}s"
            )
    if current["total_cache_hits"] < payload["total_cache_hits"]:
        notes.append(
            f"  note: cache hits {payload['total_cache_hits']} -> "
            f"{current['total_cache_hits']}"
        )
    baseline_half = payload.get("total_wall_ci_half_s")
    if baseline_half is not None:
        notes.append(
            f"  note: baseline noise ±{baseline_half:.2f}s "
            f"(CI half-width over {payload.get('repeat', '?')} "
            "repeats)"
        )
    return BenchCheck(
        ok=ok,
        baseline_path=path,
        baseline_total_s=payload["total_wall_s"],
        current_total_s=current["total_wall_s"],
        threshold=threshold,
        notes=notes,
    )
