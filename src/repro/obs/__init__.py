"""``repro.obs`` — the observability layer.

Producers (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — a low-overhead span/counter event tracer
  over *simulated* time with byte-stable JSONL export; a no-op unless a
  tracer is installed (``REPRO_TRACE=…``, ``repro trace``,
  ``repro figures --trace``, or :func:`trace.tracing` in code).
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms with text-table and JSON reports.
* :mod:`repro.obs.golden` — canonical traced runs whose JSONL bytes are
  pinned under ``tests/golden/`` as regression artifacts.

Consumers, layered strictly on top of the producers (all imported
lazily; not re-exported here to keep hot-path imports light):

* :mod:`repro.obs.profile` — the energy-attribution profiler: joins a
  run's trace with the power model into a per-component × C-state ×
  window-kind ledger plus timing percentiles (``repro profile``).
* :mod:`repro.obs.export` — interchange exporters: Chrome trace-event
  JSON for Perfetto/``chrome://tracing`` (``repro trace --chrome``) and
  the Prometheus text exposition (``repro metrics --prom``).
* :mod:`repro.obs.drift` — the paper-drift regression gate (``repro
  validate``) and the bench-history wall-clock gate (``repro bench-all
  --record/--check``).
* :mod:`repro.obs.dist` — cross-process propagation: a serializable
  trace context, per-worker JSONL trace shards merged back into the
  parent tracer, worker metrics-registry snapshots folded into the
  parent registry, and live fan-out heartbeats (``repro figures
  --jobs N --trace/--progress``).
* :mod:`repro.obs.diff` — structural trace/profile diffing (``repro
  obs diff``): added/removed/count-shifted spans, counter deltas,
  simulated-duration shifts.
* :mod:`repro.obs.serve` — the live telemetry plane (``repro serve``):
  long-lived power-advisor sessions over a local NDJSON socket, rolling
  per-session power/residency/fps gauges, fan-out progress from the
  heartbeat plane, and an embedded ``GET /metrics`` Prometheus scrape
  endpoint.
"""

from __future__ import annotations

from . import metrics, trace
from .metrics import MetricsRegistry, metrics_table, registry
from .trace import Tracer, render_span_tree, tracing

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "metrics",
    "metrics_table",
    "registry",
    "render_span_tree",
    "trace",
    "tracing",
]

# Opt-in profiling hook: REPRO_TRACE=<path> traces the whole process.
trace.install_env_tracer()
