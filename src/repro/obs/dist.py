"""Cross-process observability: trace shards, merges, heartbeats.

The fan-out engine (:func:`repro.analysis.runner.run_exhibits`) spawns
worker processes whose tracer spans and metrics registries would
otherwise die with the worker — a parallel ``repro figures --jobs N
--trace`` used to silently drop nearly all telemetry.  This module
closes that gap with a shard protocol:

* the parent mints a :class:`TraceContext` (a picklable record naming a
  run id and a shard directory) and passes it to every worker task;
* each worker wraps its task in :func:`run_worker_task`: a fresh tracer
  per task, events appended to a per-worker JSONL *shard* (keyed by run
  id and worker id), the worker's metrics registry snapshot written
  alongside, and start/done *heartbeat* lines streamed for live
  progress;
* after the pool drains, the parent calls :func:`absorb_trace` — shards
  merge into the parent tracer as one coherent stream, task groups
  ordered by request order (which equals sequential execution order)
  with sequence numbers renumbered to continue the parent's own — and
  :func:`merge_worker_metrics`, which folds every worker registry
  snapshot into the parent registry (counters/gauges sum, histograms
  add bucket-wise).

Merged worker events carry two extra fields the in-process tracer never
emits: ``w`` (a stable 1-based worker index) and ``task`` (the task's
position in the request order).  The Chrome exporter renders ``w`` as
one thread track per worker; :func:`normalize_events` strips both (and
renumbers ids) so a merged parallel trace compares byte-for-byte
against a sequential one.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import ConfigurationError
from . import metrics as obs_metrics
from . import trace as obs_trace

#: Merged-event field carrying the 1-based worker index.
WORKER_FIELD = "w"
#: Merged-event field carrying the task's request-order position.
TASK_FIELD = "task"
#: Merged-event field carrying the fan-out's task namespace.  Task
#: indexes are only unique *within* one fan-out; when several fan-outs
#: of different kinds (figure exhibits, fleet shards) merge into one
#: parent trace, the namespace is what keeps ``(task, worker)`` groups
#: from colliding.
NAMESPACE_FIELD = "ns"

#: Namespace used when a context does not declare one (the historical
#: figure-exhibit fan-out shape).
DEFAULT_NAMESPACE = "task"

#: Attributes that describe execution topology rather than simulated
#: behavior — :func:`normalize_events` strips them so traces captured
#: at different ``--jobs`` settings compare equal.
VOLATILE_ATTRS = frozenset({"workers", "jobs"})

_SHARD_SUFFIX = ".shard.jsonl"
_METRICS_SUFFIX = ".metrics.json"
_HEARTBEAT_SUFFIX = ".hb.jsonl"

#: Environment variable pinning every fan-out's heartbeat files to one
#: shared directory so an external observer (``repro serve``) can watch
#: live shard progress across processes.  Setting it also forces
#: heartbeats on for every context minted in the process tree.
HEARTBEAT_DIR_ENV = "REPRO_HEARTBEAT_DIR"


def heartbeat_dir() -> Path | None:
    """The pinned heartbeat directory, when :data:`HEARTBEAT_DIR_ENV`
    names one (empty values count as unset)."""
    value = os.environ.get(HEARTBEAT_DIR_ENV, "").strip()
    return Path(value) if value else None


# ---------------------------------------------------------------------------
# The propagated context
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to ship telemetry home.

    Plain strings and booleans only, so the context pickles across any
    :mod:`multiprocessing` start method and could equally ride in an
    environment variable or an RPC header.
    """

    run_id: str
    shard_dir: str
    #: Record a per-task tracer and write event shards.
    collect_trace: bool = True
    #: Run the task with simulator memoization disabled (propagates the
    #: parent's ``cache_disabled()`` state so traced parallel runs stay
    #: deterministic).
    disable_memo: bool = False
    #: Stream start/done heartbeat lines for the live progress surface.
    heartbeat: bool = False
    #: The fan-out's task-index namespace.  Task indexes from contexts
    #: with different namespaces never collide when their shards merge
    #: into the same parent trace.
    namespace: str = DEFAULT_NAMESPACE

    def to_payload(self) -> dict[str, Any]:
        """The context as a JSON-safe dictionary."""
        return {
            "run_id": self.run_id,
            "shard_dir": self.shard_dir,
            "collect_trace": self.collect_trace,
            "disable_memo": self.disable_memo,
            "heartbeat": self.heartbeat,
            "namespace": self.namespace,
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "TraceContext":
        """Rebuild a context serialized by :meth:`to_payload`."""
        return cls(
            run_id=str(payload["run_id"]),
            shard_dir=str(payload["shard_dir"]),
            collect_trace=bool(payload.get("collect_trace", True)),
            disable_memo=bool(payload.get("disable_memo", False)),
            heartbeat=bool(payload.get("heartbeat", False)),
            namespace=str(
                payload.get("namespace", DEFAULT_NAMESPACE)
            ),
        )


def new_context(
    collect_trace: bool = True,
    disable_memo: bool = False,
    heartbeat: bool = False,
    shard_root: str | Path | None = None,
    namespace: str = DEFAULT_NAMESPACE,
) -> TraceContext:
    """Mint a context for one fan-out, creating its shard directory
    (a private temp dir unless ``shard_root`` or the
    :data:`HEARTBEAT_DIR_ENV` environment variable pins one).  A
    pinned heartbeat directory also forces ``heartbeat=True`` so a
    concurrent ``repro serve`` observes progress without the run
    passing ``--progress``."""
    pinned = heartbeat_dir()
    if shard_root is not None:
        base = Path(shard_root)
        base.mkdir(parents=True, exist_ok=True)
    elif pinned is not None:
        base = pinned
        base.mkdir(parents=True, exist_ok=True)
        heartbeat = True
    else:
        base = Path(tempfile.mkdtemp(prefix="repro-shards-"))
    return TraceContext(
        run_id=uuid.uuid4().hex[:12],
        shard_dir=str(base),
        collect_trace=collect_trace,
        disable_memo=disable_memo,
        heartbeat=heartbeat,
        namespace=namespace,
    )


def cleanup(context: TraceContext) -> None:
    """Remove the context's shard directory (best-effort).

    In a pinned heartbeat directory (see :func:`heartbeat_dir`) the
    directory is shared and outlives the run: only this run's shard
    and metrics files are removed, and its heartbeat files are kept so
    a live observer polling the directory never loses the final
    ``done`` lines to a cleanup race.
    """
    pinned = heartbeat_dir()
    shard_dir = Path(context.shard_dir)
    if pinned is not None and shard_dir == pinned:
        for path in shard_dir.glob(f"{context.run_id}-w*"):
            if path.name.endswith(_HEARTBEAT_SUFFIX):
                continue
            try:
                path.unlink()
            except OSError:
                pass
        return
    shutil.rmtree(context.shard_dir, ignore_errors=True)


def _worker_stem(context: TraceContext, worker_id: int) -> Path:
    return Path(context.shard_dir) / (
        f"{context.run_id}-w{worker_id:08d}"
    )


def shard_path(context: TraceContext, worker_id: int) -> Path:
    """Where worker ``worker_id`` appends its trace events."""
    return _worker_stem(context, worker_id).with_suffix(_SHARD_SUFFIX)


def metrics_path(context: TraceContext, worker_id: int) -> Path:
    """Where worker ``worker_id`` publishes its registry snapshot."""
    return _worker_stem(context, worker_id).with_suffix(
        _METRICS_SUFFIX
    )


def heartbeat_path(context: TraceContext, worker_id: int) -> Path:
    """Where worker ``worker_id`` appends progress heartbeats."""
    return _worker_stem(context, worker_id).with_suffix(
        _HEARTBEAT_SUFFIX
    )


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: The run id this worker process has initialized for.  Workers forked
#: from a tracing parent inherit its registry (and tracer) — the first
#: task under a new run resets the registry so the worker's snapshot
#: counts only its own work and nothing double-merges.
_worker_run_id: str | None = None


def _ensure_worker(context: TraceContext) -> None:
    global _worker_run_id
    if _worker_run_id == context.run_id:
        return
    obs_metrics.registry().reset()
    _worker_run_id = context.run_id


def _append_jsonl(path: Path, lines: Iterable[str]) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _emit_heartbeat(
    context: TraceContext, worker_id: int, record: dict[str, Any]
) -> None:
    if not context.heartbeat:
        return
    try:
        _append_jsonl(
            heartbeat_path(context, worker_id),
            [json.dumps(record, sort_keys=True)],
        )
    except OSError:
        # Heartbeats are advisory; a full disk must not fail the task.
        pass


def _publish_metrics(context: TraceContext, worker_id: int) -> None:
    """Atomically overwrite this worker's cumulative registry snapshot
    (the last write, after its final task, is what the parent merges)."""
    path = metrics_path(context, worker_id)
    payload = json.dumps(
        obs_metrics.registry().snapshot(), sort_keys=True
    )
    handle = tempfile.NamedTemporaryFile(
        "w",
        dir=path.parent,
        prefix=f".{path.name}-",
        suffix=".tmp",
        delete=False,
        encoding="utf-8",
    )
    tmp_name = handle.name
    try:
        with handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        tmp_name = None
    finally:
        if tmp_name is not None:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass


def run_worker_task(
    context: TraceContext,
    task_index: int,
    name: str,
    thunk: Callable[[], Any],
    summarize: Callable[[Any], dict[str, Any]] | None = None,
) -> Any:
    """Run one fan-out task under the shard protocol.

    Installs a fresh per-task tracer (when ``collect_trace``), runs
    ``thunk``, appends the captured events — each tagged with the task
    index — to this worker's shard, republishes the worker's metrics
    snapshot, and emits start/done heartbeats (``summarize`` maps the
    task's return value to the done-heartbeat payload).  Returns the
    thunk's result unchanged.
    """
    _ensure_worker(context)
    worker_id = os.getpid()
    ns_tag: dict[str, Any] = (
        {}
        if context.namespace == DEFAULT_NAMESPACE
        else {NAMESPACE_FIELD: context.namespace}
    )
    _emit_heartbeat(
        context,
        worker_id,
        {
            "event": "start",
            "task": task_index,
            "name": name,
            "worker": worker_id,
            **ns_tag,
        },
    )
    tracer = obs_trace.Tracer() if context.collect_trace else None
    if tracer is not None:
        previous = obs_trace.install(tracer)
        try:
            result = thunk()
        finally:
            obs_trace.install(previous)
        _append_jsonl(
            shard_path(context, worker_id),
            (
                json.dumps(
                    {**event, TASK_FIELD: task_index, **ns_tag},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                for event in tracer.events
            ),
        )
    else:
        result = thunk()
    _publish_metrics(context, worker_id)
    done: dict[str, Any] = {
        "event": "done",
        "task": task_index,
        "name": name,
        "worker": worker_id,
        **ns_tag,
    }
    if summarize is not None:
        done.update(summarize(result))
    _emit_heartbeat(context, worker_id, done)
    return result


def record_fanout(
    namespace: str, workers: int, selected: int
) -> None:
    """Record one fan-out dispatch under its namespace: a tracer event
    ``<namespace>.fanout`` (with worker/task counts as attributes) plus
    a ``<namespace>.fanouts`` counter increment.  Using the namespace
    as the metric/event prefix keeps figure-exhibit fan-outs and fleet
    shards distinguishable in merged traces and scraped metrics."""
    tracer = obs_trace.active()
    if tracer is not None:
        tracer.event(
            f"{namespace}.fanout",
            workers=workers,
            selected=selected,
        )
    obs_metrics.registry().counter(
        f"{namespace}.fanouts", f"{namespace} fan-out dispatches"
    ).inc()


# ---------------------------------------------------------------------------
# Parent side: shard reading and merging
# ---------------------------------------------------------------------------


@dataclass
class TaskGroup:
    """One task's events as recorded by one worker."""

    worker_id: int
    task: int
    events: list[dict[str, Any]] = field(default_factory=list)
    namespace: str = DEFAULT_NAMESPACE


def read_shards(context: TraceContext) -> list[TaskGroup]:
    """Every shard in the context's directory, split into per-task
    groups and sorted by (namespace, task index) — within one
    namespace, task index is the request order, which is also the
    order a sequential run would have emitted them."""
    groups: dict[tuple[str, int, int], TaskGroup] = {}
    pattern = f"{context.run_id}-w*{_SHARD_SUFFIX}"
    for path in sorted(Path(context.shard_dir).glob(pattern)):
        worker_id = int(
            path.name[
                len(context.run_id) + 2 : -len(_SHARD_SUFFIX)
            ]
        )
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                task = int(event.pop(TASK_FIELD, 0))
                namespace = str(
                    event.pop(NAMESPACE_FIELD, DEFAULT_NAMESPACE)
                )
                groups.setdefault(
                    (namespace, task, worker_id),
                    TaskGroup(
                        worker_id, task, namespace=namespace
                    ),
                ).events.append(event)
    return [groups[key] for key in sorted(groups)]


def merge_groups(
    groups: list[TaskGroup],
    base_seq: int = 0,
    parent_span: int | None = None,
) -> list[dict[str, Any]]:
    """Renumber task groups into one stream starting at ``base_seq``.

    Sequence numbers (and the ``span``/``parent`` references built on
    them) are rewritten to be globally unique and strictly increasing;
    worker ids are replaced by stable 1-based indexes in the ``w``
    field; ``parent_span``, when given, adopts each group's root events
    (so a fan-out traced inside an enclosing span nests under it).
    """
    worker_index = {
        worker: index
        for index, worker in enumerate(
            sorted({group.worker_id for group in groups}), start=1
        )
    }
    merged: list[dict[str, Any]] = []
    seq = base_seq
    for group in groups:
        mapping: dict[int, int] = {}
        for event in group.events:
            record = dict(event)
            mapping[record["seq"]] = seq
            record["seq"] = seq
            seq += 1
            if "span" in record:
                record["span"] = mapping[record["span"]]
            if "parent" in record:
                record["parent"] = mapping[record["parent"]]
            elif parent_span is not None:
                record["parent"] = parent_span
            record[WORKER_FIELD] = worker_index[group.worker_id]
            record[TASK_FIELD] = group.task
            if group.namespace != DEFAULT_NAMESPACE:
                record[NAMESPACE_FIELD] = group.namespace
            merged.append(record)
    return merged


def absorb_trace(
    tracer: obs_trace.Tracer, context: TraceContext
) -> int:
    """Merge every worker shard into ``tracer`` as one coherent
    stream; returns the number of events absorbed."""
    merged = merge_groups(
        read_shards(context),
        base_seq=tracer.next_seq,
        parent_span=tracer.innermost_open_span,
    )
    tracer.ingest(merged)
    return len(merged)


def read_worker_metrics(
    context: TraceContext,
) -> list[dict[str, dict[str, Any]]]:
    """Every worker's published registry snapshot, in worker-id order."""
    snapshots = []
    pattern = f"{context.run_id}-w*{_METRICS_SUFFIX}"
    for path in sorted(Path(context.shard_dir).glob(pattern)):
        try:
            snapshots.append(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, ValueError):
            raise ConfigurationError(
                f"unreadable worker metrics snapshot {path}"
            ) from None
    return snapshots


def merge_worker_metrics(
    registry: obs_metrics.MetricsRegistry, context: TraceContext
) -> int:
    """Fold every worker registry snapshot into ``registry``; returns
    the number of worker snapshots merged."""
    snapshots = read_worker_metrics(context)
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return len(snapshots)


# ---------------------------------------------------------------------------
# Normalization — comparing traces across --jobs settings
# ---------------------------------------------------------------------------


def normalize_events(
    events: list[dict[str, Any]],
) -> list[dict[str, Any]]:
    """A canonical view of an event stream for structural comparison.

    Sequence numbers (and ``span``/``parent`` references) renumber from
    zero in stream order, worker/task tags drop, and
    :data:`VOLATILE_ATTRS` strip from attributes — after which a merged
    ``--jobs N`` trace of a deterministic run is byte-identical to the
    sequential trace of the same work.
    """
    normalized: list[dict[str, Any]] = []
    mapping: dict[int, int] = {}
    for index, event in enumerate(events):
        record = {
            key: value
            for key, value in event.items()
            if key
            not in (WORKER_FIELD, TASK_FIELD, NAMESPACE_FIELD)
        }
        mapping[record["seq"]] = index
        record["seq"] = index
        if "span" in record:
            record["span"] = mapping.get(
                record["span"], record["span"]
            )
        if "parent" in record:
            parent = mapping.get(record["parent"])
            if parent is None:
                del record["parent"]
            else:
                record["parent"] = parent
        attrs = record.get("attrs")
        if attrs:
            kept = {
                key: value
                for key, value in attrs.items()
                if key not in VOLATILE_ATTRS
            }
            if kept:
                record["attrs"] = kept
            else:
                record.pop("attrs", None)
        normalized.append(record)
    return normalized


def normalized_jsonl(events: list[dict[str, Any]]) -> str:
    """The normalized stream in the tracer's canonical JSONL form."""
    return "".join(
        json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
        for event in normalize_events(events)
    )


# ---------------------------------------------------------------------------
# The live progress surface
# ---------------------------------------------------------------------------


def tail_complete_lines(
    path: Path | str, offset: int = 0
) -> tuple[list[dict[str, Any]], int]:
    """New JSONL records appended to ``path`` past ``offset``.

    Built for files a live worker is still appending to: a torn final
    line (no trailing newline — the writer is mid-``write``) is left
    for the next poll rather than parsed or counted, complete lines
    that fail to parse are skipped, and an unreadable file reads as
    empty.  Returns ``(records, new_offset)`` where ``new_offset``
    covers exactly the complete lines consumed.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            payload = handle.read()
    except OSError:
        return [], offset
    records: list[dict[str, Any]] = []
    consumed = 0
    for line in payload.splitlines(keepends=True):
        # A writer may be mid-line; only complete lines parse.
        if not line.endswith(b"\n"):
            break
        consumed += len(line)
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records, offset + consumed


def pinned_heartbeat_emitter(
    namespace: str = DEFAULT_NAMESPACE,
) -> Callable[[dict[str, Any]], None] | None:
    """A heartbeat writer for *sequential* execution paths.

    Parallel fan-outs pick up the pinned directory through
    :func:`new_context`; the sequential paths feed their progress
    records straight to a monitor and would otherwise stay invisible
    to an external observer.  When :data:`HEARTBEAT_DIR_ENV` pins a
    directory this returns an ``emit(record)`` callable appending the
    same shard-protocol records to a per-process heartbeat file there
    (namespace-tagged like a worker's); otherwise ``None``.
    """
    pinned = heartbeat_dir()
    if pinned is None:
        return None
    try:
        pinned.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    path = pinned / (
        f"{uuid.uuid4().hex[:12]}-w{os.getpid():08d}"
        f"{_HEARTBEAT_SUFFIX}"
    )
    ns_tag: dict[str, Any] = (
        {}
        if namespace == DEFAULT_NAMESPACE
        else {NAMESPACE_FIELD: namespace}
    )

    def emit(record: dict[str, Any]) -> None:
        try:
            _append_jsonl(
                path,
                [json.dumps({**record, **ns_tag}, sort_keys=True)],
            )
        except OSError:
            # Heartbeats are advisory, never fatal.
            pass

    return emit


class ProgressMonitor:
    """Streams fan-out progress lines from worker heartbeats.

    The parent polls :meth:`poll` while futures are pending; each new
    heartbeat line renders as one human-readable progress line through
    ``sink``.  The sequential path feeds the same records directly via
    :meth:`feed`, so ``--progress`` reads identically at any ``--jobs``.
    """

    def __init__(
        self,
        sink: Callable[[str], None],
        total: int,
    ) -> None:
        self.sink = sink
        self.total = total
        self.done = 0
        self._offsets: dict[Path, int] = {}

    def feed(self, record: dict[str, Any]) -> None:
        """Render one heartbeat record."""
        event = record.get("event")
        name = record.get("name", "?")
        worker = record.get("worker", 0)
        if event == "start":
            self.sink(f"{name} started [worker {worker}]")
        elif event == "done":
            self.done += 1
            cost = ""
            if "wall_s" in record:
                cost = (
                    f" in {record['wall_s']:.2f}s "
                    f"(hits={record.get('hits', 0)} "
                    f"misses={record.get('misses', 0)} "
                    f"windows={record.get('windows', 0)})"
                )
            self.sink(
                f"[{self.done}/{self.total}] {name} done{cost} "
                f"[worker {worker}]"
            )

    def poll(self, context: TraceContext) -> int:
        """Read any new heartbeat lines from the context's shard
        directory; returns how many records were rendered."""
        handled = 0
        pattern = f"{context.run_id}-w*{_HEARTBEAT_SUFFIX}"
        for path in sorted(Path(context.shard_dir).glob(pattern)):
            records, new_offset = tail_complete_lines(
                path, self._offsets.get(path, 0)
            )
            for record in records:
                self.feed(record)
                handled += 1
            self._offsets[path] = new_offset
        return handled


def progress_record(
    event: str,
    task_index: int,
    name: str,
    worker: int = 0,
    **extra: Any,
) -> dict[str, Any]:
    """A heartbeat record in the shard-protocol shape (the sequential
    path builds these inline instead of writing heartbeat files)."""
    return {
        "event": event,
        "task": task_index,
        "name": name,
        "worker": worker,
        **extra,
    }


__all__ = [
    "DEFAULT_NAMESPACE",
    "HEARTBEAT_DIR_ENV",
    "NAMESPACE_FIELD",
    "TASK_FIELD",
    "TraceContext",
    "VOLATILE_ATTRS",
    "WORKER_FIELD",
    "absorb_trace",
    "cleanup",
    "heartbeat_dir",
    "heartbeat_path",
    "merge_groups",
    "merge_worker_metrics",
    "metrics_path",
    "new_context",
    "normalize_events",
    "normalized_jsonl",
    "pinned_heartbeat_emitter",
    "progress_record",
    "read_shards",
    "read_worker_metrics",
    "record_fanout",
    "run_worker_task",
    "shard_path",
    "tail_complete_lines",
    "ProgressMonitor",
]
