"""Trace and metrics exporters — interchange formats for external
viewers.

Two converters:

* :func:`chrome_trace` — our JSONL event stream as the Chrome
  trace-event format (the ``{"traceEvents": [...]}`` JSON object that
  Perfetto and ``chrome://tracing`` load directly).  Simulated seconds
  map to the format's microsecond ``ts`` axis; spans become complete
  (``"ph": "X"``) events with a ``dur``, point events become instants,
  counter bumps become cumulative counter tracks.  ``repro trace
  <exhibit> --chrome out.json`` writes it.
* :func:`prometheus_text` — the process-wide metrics registry in the
  Prometheus text exposition format (``# HELP`` / ``# TYPE`` headers,
  cumulative ``_bucket{le="..."}`` series for histograms).  ``repro
  metrics --prom`` prints it.

Both are pure functions of already-recorded data: exporting never
mutates the tracer or the registry, and exporting a deterministic trace
is itself deterministic.
"""

from __future__ import annotations

import json
import re
from typing import Any

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RollingGauge,
)
from .metrics import registry as default_registry
from .trace import COUNTER, EVENT, SPAN_END, SPAN_START, Tracer

#: Simulated seconds -> trace-event microseconds.
MICROSECONDS_PER_SECOND = 1e6

#: pid/tid the single simulated timeline reports under.
TRACE_PID = 1
TRACE_TID = 1


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------


def _category(name: str) -> str:
    """Event category: the dotted name's first segment."""
    return name.split(".", 1)[0] if "." in name else name or "trace"


def chrome_trace_events(
    events: list[dict[str, Any]],
    time_scale: float = MICROSECONDS_PER_SECOND,
) -> list[dict[str, Any]]:
    """Convert a flat event stream to trace-event dictionaries.

    Spans emit one complete (``X``) event each, with ``dur`` from the
    matching end event; an unclosed span gets the largest timestamp
    seen anywhere in the stream as its implicit end.  Events without a
    simulated timestamp inherit a cursor (the latest timestamp seen so
    far), so every ``dur`` is >= 0.  Each *root* span opens its own
    thread track (root spans may overlap in simulated time — the
    simulator and the power model both walk the same timeline), and the
    returned list is sorted by ``ts`` so the stream reads
    monotonically.

    A *merged* cross-process trace (events tagged with a ``w`` worker
    index by :mod:`repro.obs.dist`) renders instead as one thread
    track per worker: each worker's tasks tile left-to-right along its
    track (every task restarts simulated time near zero, so task
    groups are offset to lay out sequentially), and untagged parent
    events keep the main track.
    """
    if any("w" in event for event in events):
        return _chrome_worker_tracks(events, time_scale)
    # Pass 1: match span ends to starts and find the stream's horizon.
    end_ts: dict[int, float | None] = {}
    horizon = 0.0
    for event in events:
        t = event.get("t")
        if t is not None:
            horizon = max(horizon, float(t))
        if event["kind"] == SPAN_END:
            end_ts[event["span"]] = t

    converted: list[dict[str, Any]] = []
    thread_names: dict[int, str] = {}
    cursor = 0.0
    depth = 0
    tid = TRACE_TID
    next_tid = TRACE_TID
    counters: dict[str, float] = {}
    for event in events:
        kind = event["kind"]
        if kind == SPAN_END:
            depth = max(0, depth - 1)
            t = event.get("t")
            if t is not None:
                cursor = max(cursor, float(t))
            continue
        t = event.get("t")
        start = float(t) if t is not None else cursor
        cursor = max(cursor, start)
        attrs = dict(event.get("attrs", {}))
        if kind == SPAN_START and depth == 0:
            tid = next_tid
            next_tid += 1
            thread_names.setdefault(tid, event["name"])
        record: dict[str, Any] = {
            "pid": TRACE_PID,
            "tid": tid,
            "ts": start * time_scale,
            "name": event["name"],
            "cat": _category(event["name"]),
        }
        if kind == SPAN_START:
            depth += 1
            end = end_ts.get(event["seq"])
            end_s = float(end) if end is not None else max(
                horizon, start
            )
            record["ph"] = "X"
            record["dur"] = max(0.0, end_s - start) * time_scale
            if attrs:
                record["args"] = attrs
        elif kind == EVENT:
            record["ph"] = "i"
            record["s"] = "t"
            if attrs:
                record["args"] = attrs
        elif kind == COUNTER:
            name = event["name"]
            counters[name] = counters.get(name, 0.0) + float(
                attrs.get("value", 1)
            )
            record["ph"] = "C"
            record["args"] = {"value": counters[name]}
        else:  # pragma: no cover - no other kinds exist
            continue
        converted.append(record)
    converted.sort(key=lambda record: record["ts"])
    metadata: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "ts": 0,
            "name": "process_name",
            "args": {"name": "repro (simulated time)"},
        }
    ]
    for thread, label in sorted(thread_names.items()):
        metadata.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": thread,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    return metadata + converted


def _chrome_worker_tracks(
    events: list[dict[str, Any]],
    time_scale: float,
) -> list[dict[str, Any]]:
    """Render a merged cross-process trace: the parent's events on the
    main track, each worker's events on its own track with task groups
    tiled sequentially (each task restarts simulated time at zero)."""
    parent_stream: list[dict[str, Any]] = []
    # Task indexes are only unique within one fan-out namespace, so
    # groups key on (namespace, task) — fleet shards and figure
    # exhibits merged into one trace tile as distinct groups.
    worker_tasks: dict[
        int, dict[tuple[str, int], list[dict[str, Any]]]
    ] = {}
    for event in events:
        worker = event.get("w")
        if worker is None:
            parent_stream.append(event)
        else:
            group = (
                str(event.get("ns", "task")),
                int(event.get("task", 0)),
            )
            worker_tasks.setdefault(int(worker), {}).setdefault(
                group, []
            ).append(event)

    converted: list[dict[str, Any]] = []
    counters: dict[str, float] = {}

    def convert(
        stream: list[dict[str, Any]], tid: int, offset: float
    ) -> float:
        end_ts = {
            event["span"]: event.get("t")
            for event in stream
            if event["kind"] == SPAN_END
        }
        horizon = 0.0
        for event in stream:
            t = event.get("t")
            if t is not None:
                horizon = max(horizon, float(t))
        cursor = 0.0
        for event in stream:
            kind = event["kind"]
            t = event.get("t")
            if kind == SPAN_END:
                if t is not None:
                    cursor = max(cursor, float(t))
                continue
            start = float(t) if t is not None else cursor
            cursor = max(cursor, start)
            attrs = dict(event.get("attrs", {}))
            record: dict[str, Any] = {
                "pid": TRACE_PID,
                "tid": tid,
                "ts": (start + offset) * time_scale,
                "name": event["name"],
                "cat": _category(event["name"]),
            }
            if kind == SPAN_START:
                end = end_ts.get(event["seq"])
                end_s = float(end) if end is not None else max(
                    horizon, start
                )
                record["ph"] = "X"
                record["dur"] = max(0.0, end_s - start) * time_scale
                if attrs:
                    record["args"] = attrs
            elif kind == EVENT:
                record["ph"] = "i"
                record["s"] = "t"
                if attrs:
                    record["args"] = attrs
            elif kind == COUNTER:
                name = event["name"]
                counters[name] = counters.get(name, 0.0) + float(
                    attrs.get("value", 1)
                )
                record["ph"] = "C"
                record["args"] = {"value": counters[name]}
            else:  # pragma: no cover - no other kinds exist
                continue
            converted.append(record)
        return horizon

    convert(parent_stream, TRACE_TID, 0.0)
    thread_names: dict[int, str] = {TRACE_TID: "main"}
    for worker in sorted(worker_tasks):
        tid = TRACE_TID + worker
        thread_names[tid] = f"worker {worker}"
        track_cursor = 0.0
        for task in sorted(worker_tasks[worker]):
            horizon = convert(
                worker_tasks[worker][task], tid, track_cursor
            )
            # Tile the next task after this one, with a visible gap.
            track_cursor += horizon + max(horizon * 0.05, 1e-6)
    converted.sort(key=lambda record: record["ts"])
    metadata: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "ts": 0,
            "name": "process_name",
            "args": {"name": "repro (simulated time)"},
        }
    ]
    for tid, label in sorted(thread_names.items()):
        metadata.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": 0,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
    return metadata + converted


def chrome_trace_from_events(
    events: list[dict[str, Any]],
    time_scale: float = MICROSECONDS_PER_SECOND,
) -> dict[str, Any]:
    """A flat event stream (e.g. a merged shard trace read back from
    JSONL) as a loadable Chrome trace object."""
    return {
        "traceEvents": chrome_trace_events(
            events, time_scale=time_scale
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "simulated",
            "source": "repro.obs.trace",
        },
    }


def chrome_trace(
    tracer: Tracer, time_scale: float = MICROSECONDS_PER_SECOND
) -> dict[str, Any]:
    """The tracer's events as a loadable Chrome trace object."""
    return chrome_trace_from_events(
        tracer.events, time_scale=time_scale
    )


def chrome_trace_json(
    tracer: Tracer, indent: int | None = None
) -> str:
    """The Chrome trace as a JSON string."""
    return json.dumps(
        chrome_trace(tracer), indent=indent, sort_keys=True
    )


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    payload = chrome_trace(tracer)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
    return len(payload["traceEvents"])


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """Our dotted metric name as a Prometheus series name."""
    return "repro_" + _NAME_SANITIZER.sub("_", name)


def _format_value(value: float | int | None) -> str:
    if value is None:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    return f"{value:.10g}"


def _escape_help(text: str) -> str:
    """``# HELP`` text escaping per the 0.0.4 spec: backslash and
    line feed (label values additionally escape ``"``, but HELP does
    not)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _split_key(name: str) -> tuple[str, str]:
    """A registry key as ``(family, label_body)``.

    Labelled keys minted by :func:`repro.obs.metrics.labelled` render
    the (pre-escaped) label set inline — ``serve.win_mw{sid="a"}`` —
    so the family is everything before the first ``{`` and the label
    body is the text between the braces (empty for plain keys).
    """
    if "{" in name and name.endswith("}"):
        family, _, labels = name.partition("{")
        return family, labels[:-1]
    return name, ""


def _merge_labels(body: str, extra: str) -> str:
    """Combine an inline label body with an extra ``k="v"`` pair."""
    return f"{body},{extra}" if body else extra


def prometheus_text(
    registry: MetricsRegistry | None = None,
) -> str:
    """The registry in the Prometheus text exposition format (0.0.4).

    Counters emit one sample each under the conventional ``_total``
    suffix; gauges (and rolling gauges, which expose their windowed
    mean) emit one sample; histograms emit the cumulative
    ``_bucket{le="..."}`` series (our internal per-bucket occupancies
    are cumulated here) plus ``_sum`` and ``_count``.  Registry keys
    carrying a :func:`repro.obs.metrics.labelled` label set group under
    one ``# HELP`` / ``# TYPE`` header per family, and ``# HELP`` text
    is escaped per the spec (backslash, line feed).
    """
    registry = registry if registry is not None else default_registry()
    # Group label-bearing keys by family so every family emits exactly
    # one HELP/TYPE header.  Grouping cannot rely on sort adjacency:
    # "a.b_x" sorts between "a.b" and 'a.b{sid="1"}'.
    families: dict[str, list[tuple[str, object]]] = {}
    for name in registry.names():
        family, labels = _split_key(name)
        families.setdefault(family, []).append(
            (labels, registry.get(name))
        )
    lines: list[str] = []
    for family in sorted(families):
        members = families[family]
        first = members[0][1]
        series = prometheus_name(family)
        help_text = _escape_help(first.help or family)
        if isinstance(first, Counter):
            total = f"{series}_total"
            lines.append(f"# HELP {total} {help_text}")
            lines.append(f"# TYPE {total} counter")
            for labels, metric in members:
                sample = f"{total}{{{labels}}}" if labels else total
                lines.append(
                    f"{sample} {_format_value(metric.value)}"
                )
        elif isinstance(first, (Gauge, RollingGauge)):
            lines.append(f"# HELP {series} {help_text}")
            lines.append(f"# TYPE {series} gauge")
            for labels, metric in members:
                sample = f"{series}{{{labels}}}" if labels else series
                lines.append(
                    f"{sample} {_format_value(metric.value)}"
                )
        elif isinstance(first, Histogram):
            lines.append(f"# HELP {series} {help_text}")
            lines.append(f"# TYPE {series} histogram")
            for labels, metric in members:
                cumulative = 0
                for bound, occupancy in zip(
                    metric.buckets + (float("inf"),),
                    metric.bucket_counts,
                ):
                    cumulative += occupancy
                    le = f'le="{_format_value(bound)}"'
                    lines.append(
                        f"{series}_bucket"
                        f"{{{_merge_labels(labels, le)}}} "
                        f"{cumulative}"
                    )
                suffix = f"{{{labels}}}" if labels else ""
                lines.append(
                    f"{series}_sum{suffix} "
                    f"{_format_value(metric.total)}"
                )
                lines.append(
                    f"{series}_count{suffix} {metric.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
