"""The energy-attribution profiler: turns traces into answers.

Where :mod:`repro.obs.trace` records *what happened in order*, this
module answers *where the energy and time went*.  It consumes the
``(tracer, run)`` pair of a canonical capture (see
:mod:`repro.obs.golden`) and produces:

* an **energy-attribution ledger** — per component x package C-state x
  window kind, built by joining the trace's ``sim.window`` spans (which
  carry the window kind and boundaries) with the power model's
  per-segment component composition, and reconciled against the
  ``power.component`` events the model itself emitted (the run-level
  Table 2 aggregate).  Totals must agree to well under 0.1%;
  ``repro profile`` prints the reconciliation verdict.
* **span timing statistics** — flame-graph-style self/total simulated
  seconds per span name, from the strictly nested span forest.
* **percentile statistics** — exact percentiles over window durations
  (by window kind) plus bucket-interpolated quantiles for any
  wall-clock latency histograms the process registry holds
  (``cache.load_s``, ``cache.store_s``, ``exhibit.wall_s``).

The join is name-based and guarded by the stable identifiers exported
from :mod:`repro.power.model` (:data:`~repro.power.model.COMPONENT_IDS`,
:func:`~repro.power.model.component_id`,
:func:`~repro.power.model.state_id`): a renamed component or C-state is
a schema break and raises instead of silently dropping energy.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import SimulationError
from ..pipeline.sim import RunResult
from ..power.model import (
    COMPONENT_KEYS,
    PowerModel,
    component_id,
    state_id,
)
from . import metrics as obs_metrics
from .trace import COUNTER, EVENT, SPAN_END, SPAN_START, Tracer

#: Relative tolerance for the ledger-vs-model reconciliation (the
#: acceptance bar is 0.1%; the join is exact, so we hold it tighter).
RECONCILE_RTOL = 1e-6

#: Window-kind label for timeline spans not covered by any
#: ``sim.window`` span (e.g. a bare ``report_timeline`` call).
OUTSIDE_WINDOWS = "outside"


# ---------------------------------------------------------------------------
# Span forest
# ---------------------------------------------------------------------------


@dataclass
class SpanNode:
    """One span reassembled from its B/E events."""

    span_id: int
    name: str
    start_t: float | None
    end_t: float | None
    attrs: dict[str, Any] = field(default_factory=dict)
    end_attrs: dict[str, Any] = field(default_factory=dict)
    children: list["SpanNode"] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        """Whether the span's end event was recorded."""
        return self.end_t is not None or bool(self.end_attrs)

    @property
    def duration(self) -> float | None:
        """Simulated seconds the span covers, when both stamps exist."""
        if self.start_t is None or self.end_t is None:
            return None
        return self.end_t - self.start_t

    def walk(self) -> Iterator["SpanNode"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_forest(
    events: list[dict[str, Any]],
) -> tuple[list[SpanNode], list[dict[str, Any]]]:
    """Reassemble a flat event stream into ``(roots, root_events)``.

    Tolerant of truncated streams: a span whose end event never arrived
    stays in the forest with ``end_t=None``.  Point events and counters
    attach to the innermost open span, or to ``root_events`` when no
    span encloses them.
    """
    roots: list[SpanNode] = []
    root_events: list[dict[str, Any]] = []
    stack: list[SpanNode] = []
    by_id: dict[int, SpanNode] = {}
    for event in events:
        kind = event["kind"]
        if kind == SPAN_START:
            node = SpanNode(
                span_id=event["seq"],
                name=event["name"],
                start_t=event.get("t"),
                end_t=None,
                attrs=dict(event.get("attrs", {})),
            )
            by_id[node.span_id] = node
            (stack[-1].children if stack else roots).append(node)
            stack.append(node)
        elif kind == SPAN_END:
            node = by_id.get(event["span"])
            if node is None:
                continue  # end for a span we never saw open
            node.end_t = event.get("t")
            node.end_attrs = dict(event.get("attrs", {}))
            # Unwind to (and past) the ended span; intervening spans
            # are left unclosed — a truncated or interleaved stream.
            while stack:
                if stack.pop() is node:
                    break
        elif kind in (EVENT, COUNTER):
            (stack[-1].events if stack else root_events).append(event)
    return roots, root_events


def iter_spans(roots: list[SpanNode]) -> Iterator[SpanNode]:
    """Every span in the forest, depth-first."""
    for root in roots:
        yield from root.walk()


# ---------------------------------------------------------------------------
# Percentiles
# ---------------------------------------------------------------------------


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values``, linearly
    interpolated between order statistics; 0.0 for an empty list."""
    if not 0 <= q <= 100:
        raise SimulationError(f"percentile {q} outside [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    frac = rank - lower
    if lower + 1 >= len(ordered):
        return ordered[-1]
    return ordered[lower] * (1 - frac) + ordered[lower + 1] * frac


# ---------------------------------------------------------------------------
# Span timing statistics (flame-graph rollups)
# ---------------------------------------------------------------------------


@dataclass
class SpanStat:
    """Aggregate simulated-time cost of one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    unclosed: int = 0

    def fold(self, node: SpanNode) -> None:
        self.count += 1
        if not node.closed:
            self.unclosed += 1
        duration = node.duration
        if duration is None:
            return
        child_s = sum(
            child.duration or 0.0 for child in node.children
        )
        self.total_s += duration
        self.self_s += max(0.0, duration - child_s)


def span_time_stats(roots: list[SpanNode]) -> dict[str, SpanStat]:
    """Per-span-name self/total simulated seconds over the forest."""
    stats: dict[str, SpanStat] = {}
    for node in iter_spans(roots):
        stats.setdefault(node.name, SpanStat(node.name)).fold(node)
    return stats


# ---------------------------------------------------------------------------
# Window statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowSpan:
    """One ``sim.window`` span's join-relevant facts."""

    start_t: float
    end_t: float
    kind: str


@dataclass
class WindowStats:
    """Exact percentile statistics over window durations, per kind."""

    durations_by_kind: dict[str, list[float]]

    def kinds(self) -> list[str]:
        return sorted(self.durations_by_kind)

    def row(self, kind: str) -> tuple[int, float, float, float, float]:
        """(count, p50, p90, p99, max) for one window kind."""
        values = self.durations_by_kind[kind]
        return (
            len(values),
            percentile(values, 50),
            percentile(values, 90),
            percentile(values, 99),
            max(values) if values else 0.0,
        )


def window_spans(roots: list[SpanNode]) -> list[WindowSpan]:
    """Every closed ``sim.window`` span, in start order."""
    windows = [
        WindowSpan(
            start_t=node.start_t,
            end_t=node.end_t,
            kind=str(node.attrs.get("kind", "unknown")),
        )
        for node in iter_spans(roots)
        if node.name == "sim.window"
        and node.start_t is not None
        and node.end_t is not None
    ]
    return sorted(windows, key=lambda w: w.start_t)


def window_stats(roots: list[SpanNode]) -> WindowStats:
    """Window-duration distributions keyed by window kind."""
    durations: dict[str, list[float]] = {}
    for window in window_spans(roots):
        durations.setdefault(window.kind, []).append(
            window.end_t - window.start_t
        )
    return WindowStats(durations_by_kind=durations)


# ---------------------------------------------------------------------------
# The energy-attribution ledger
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LedgerRow:
    """Energy attributed to one (component, C-state, window kind)."""

    component: str
    state: str
    window_kind: str
    energy_mj: float


@dataclass
class EnergyLedger:
    """The component x C-state x window-kind energy attribution."""

    rows: list[LedgerRow]
    total_mj: float

    def _rollup(self, key) -> dict[str, float]:
        out: dict[str, float] = {}
        for row in self.rows:
            out[key(row)] = out.get(key(row), 0.0) + row.energy_mj
        return out

    def by_component(self) -> dict[str, float]:
        """Energy per component (the Table 2 aggregate axis)."""
        return self._rollup(lambda r: r.component)

    def by_state(self) -> dict[str, float]:
        """Energy per package C-state."""
        return self._rollup(lambda r: r.state)

    def by_window_kind(self) -> dict[str, float]:
        """Energy per window kind (new_frame / repeat / outside)."""
        return self._rollup(lambda r: r.window_kind)

    def top_rows(self, limit: int | None = None) -> list[LedgerRow]:
        """Non-zero rows, largest energy first."""
        rows = sorted(
            (r for r in self.rows if r.energy_mj > 0.0),
            key=lambda r: (-r.energy_mj, r.component, r.state,
                           r.window_kind),
        )
        return rows if limit is None else rows[:limit]


def energy_ledger(
    run: RunResult,
    windows: list[WindowSpan],
    model: PowerModel | None = None,
) -> EnergyLedger:
    """Attribute every timeline segment's component energies to its
    enclosing window's kind.

    This is the trace/model join: window boundaries and kinds come from
    the captured ``sim.window`` spans, the per-segment component powers
    from :meth:`PowerModel.segment_component_powers` — the same
    composition the model's run-level report integrates, so the ledger
    reconciles with it exactly.

    Summary-only runs (``retain="summary"``) have no per-segment
    timeline to join against; their ledger comes straight from the
    :class:`~repro.pipeline.timeline.TimelineSummary` buckets, whose
    ``window_kind`` axis the simulator recorded online.
    """
    model = model if model is not None else PowerModel()
    if run.timeline is None:
        return _summary_ledger(run, model)
    starts = [w.start_t for w in windows]
    cells: dict[tuple[str, str, str], float] = {}
    total = 0.0
    for segment in run.timeline:
        index = bisect_right(starts, segment.start) - 1
        if 0 <= index < len(windows) and (
            segment.start < windows[index].end_t
        ):
            kind = windows[index].kind
        else:
            kind = OUTSIDE_WINDOWS
        state = state_id(segment.state.reporting_state)
        duration = segment.duration
        for key, power in model.segment_component_powers(
            segment, run.config.panel
        ).items():
            energy = power * duration
            if energy == 0.0:
                continue
            cells[(key, state, kind)] = (
                cells.get((key, state, kind), 0.0) + energy
            )
            total += energy
    rows = [
        LedgerRow(component=c, state=s, window_kind=k, energy_mj=e)
        for (c, s, k), e in sorted(cells.items())
    ]
    return EnergyLedger(rows=rows, total_mj=total)


def _summary_ledger(run: RunResult, model: PowerModel) -> EnergyLedger:
    """The ledger of a summary-only run, folded from its
    :class:`~repro.pipeline.timeline.TimelineSummary` buckets via the
    same per-class composition the model's summary report integrates."""
    if run.summary is None:
        raise SimulationError(
            "run retains neither a timeline nor a summary"
        )
    cells: dict[tuple[str, str, str], float] = {}
    total = 0.0
    for cls_key, totals in run.summary.buckets.items():
        state = state_id(cls_key.state.reporting_state)
        kind = cls_key.window_kind or OUTSIDE_WINDOWS
        for key, energy in model.class_component_energies(
            cls_key, totals, run.config.panel
        ).items():
            if energy == 0.0:
                continue
            cells[(key, state, kind)] = (
                cells.get((key, state, kind), 0.0) + energy
            )
            total += energy
    rows = [
        LedgerRow(component=c, state=s, window_kind=k, energy_mj=e)
        for (c, s, k), e in sorted(cells.items())
    ]
    return EnergyLedger(rows=rows, total_mj=total)


# ---------------------------------------------------------------------------
# Reconciliation against the traced power report
# ---------------------------------------------------------------------------


@dataclass
class Reconciliation:
    """Ledger vs the power model's own traced aggregates."""

    ledger_total_mj: float
    traced_total_mj: float
    max_component_rel_err: float
    worst_component: str

    @property
    def total_rel_err(self) -> float:
        if self.traced_total_mj == 0.0:
            return 0.0 if self.ledger_total_mj == 0.0 else float("inf")
        return abs(
            self.ledger_total_mj - self.traced_total_mj
        ) / self.traced_total_mj

    @property
    def ok(self) -> bool:
        return (
            self.total_rel_err <= RECONCILE_RTOL
            and self.max_component_rel_err <= RECONCILE_RTOL
        )


def traced_component_energies(
    roots: list[SpanNode],
) -> dict[str, float]:
    """Per-component energies summed from ``power.component`` events —
    the run-level Table 2 aggregate the model emitted while tracing.
    Unknown component names are a schema break and raise."""
    energies: dict[str, float] = {}
    for node in iter_spans(roots):
        for event in node.events:
            if event["name"] != "power.component":
                continue
            attrs = event.get("attrs", {})
            key = attrs.get("component", "")
            component_id(key)  # validates against the stable mapping
            energies[key] = (
                energies.get(key, 0.0) + float(attrs.get("energy_mj", 0.0))
            )
    return energies


def reconcile(
    ledger: EnergyLedger, traced: dict[str, float]
) -> Reconciliation:
    """Compare the ledger's per-component totals with the traced
    run-level aggregates (must agree to :data:`RECONCILE_RTOL`)."""
    by_component = ledger.by_component()
    worst_key, worst_err = "", 0.0
    for key in COMPONENT_KEYS:
        want = traced.get(key, 0.0)
        have = by_component.get(key, 0.0)
        if want == 0.0:
            err = 0.0 if abs(have) < 1e-12 else float("inf")
        else:
            err = abs(have - want) / abs(want)
        if err > worst_err:
            worst_key, worst_err = key, err
    return Reconciliation(
        ledger_total_mj=ledger.total_mj,
        traced_total_mj=sum(traced.values()),
        max_component_rel_err=worst_err,
        worst_component=worst_key,
    )


# ---------------------------------------------------------------------------
# The exhibit profile
# ---------------------------------------------------------------------------


@dataclass
class ExhibitProfile:
    """Everything ``repro profile <exhibit>`` reports."""

    exhibit: str
    scheme: str
    duration_s: float
    total_energy_mj: float
    average_power_mw: float
    ledger: EnergyLedger
    reconciliation: Reconciliation
    span_stats: dict[str, SpanStat]
    windows: WindowStats
    latency_quantiles: dict[str, dict[str, float]]
    #: Window-engine and plan-cache counters (``sim.collapse.*``,
    #: ``sim.batch.*``, ``sim.plan_cache.*``, ``cache.plan_*``) at
    #: capture time; empty when none fired (e.g. always-traced runs
    #: fall back to the scalar engine).
    engine_counters: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready view (the ``repro profile --json`` payload)."""
        return {
            "exhibit": self.exhibit,
            "scheme": self.scheme,
            "duration_s": self.duration_s,
            "total_energy_mj": self.total_energy_mj,
            "average_power_mw": self.average_power_mw,
            "ledger": [
                {
                    "component": row.component,
                    "component_id": component_id(row.component),
                    "state": row.state,
                    "window_kind": row.window_kind,
                    "energy_mj": row.energy_mj,
                }
                for row in self.ledger.rows
            ],
            "by_component": self.ledger.by_component(),
            "by_state": self.ledger.by_state(),
            "by_window_kind": self.ledger.by_window_kind(),
            "reconciliation": {
                "ledger_total_mj": self.reconciliation.ledger_total_mj,
                "traced_total_mj": self.reconciliation.traced_total_mj,
                "total_rel_err": self.reconciliation.total_rel_err,
                "max_component_rel_err":
                    self.reconciliation.max_component_rel_err,
                "ok": self.reconciliation.ok,
            },
            "spans": {
                name: {
                    "count": stat.count,
                    "total_s": stat.total_s,
                    "self_s": stat.self_s,
                    "unclosed": stat.unclosed,
                }
                for name, stat in sorted(self.span_stats.items())
            },
            "windows": {
                kind: dict(
                    zip(
                        ("count", "p50_s", "p90_s", "p99_s", "max_s"),
                        self.windows.row(kind),
                    )
                )
                for kind in self.windows.kinds()
            },
            "latency_quantiles": self.latency_quantiles,
            "engine_counters": dict(
                sorted(self.engine_counters.items())
            ),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def registry_latency_quantiles(
    registry: obs_metrics.MetricsRegistry | None = None,
    quantiles: tuple[float, ...] = (0.5, 0.9, 0.99),
) -> dict[str, dict[str, float]]:
    """Bucket-interpolated quantiles for every wall-clock histogram
    (``*_s`` suffix) the registry holds — cache latencies, exhibit
    wall-clock — keyed by metric name."""
    registry = (
        registry if registry is not None else obs_metrics.registry()
    )
    out: dict[str, dict[str, float]] = {}
    for name, state in registry.snapshot().items():
        if state.get("type") != "histogram" or not name.endswith("_s"):
            continue
        histogram = registry.histogram(name)
        if histogram.count == 0:
            continue
        out[name] = {
            f"p{q * 100:g}": histogram.quantile(q) for q in quantiles
        }
    return out


#: Counter-name prefixes the profiler folds into ``engine_counters``.
ENGINE_COUNTER_PREFIXES = (
    "sim.collapse.",
    "sim.batch.",
    "sim.plan_cache.",
    "cache.plan_",
)


def registry_engine_counters(
    registry: obs_metrics.MetricsRegistry | None = None,
) -> dict[str, float]:
    """Window-engine and plan-cache counter values, keyed by metric
    name — the profiler's view of how much planning the batch engine
    and the caches avoided."""
    registry = (
        registry if registry is not None else obs_metrics.registry()
    )
    out: dict[str, float] = {}
    for name, state in registry.snapshot().items():
        if state.get("type") != "counter":
            continue
        if any(name.startswith(p) for p in ENGINE_COUNTER_PREFIXES):
            out[name] = state.get("value", 0.0)
    return out


def profile_capture(
    exhibit: str, tracer: Tracer, run: RunResult
) -> ExhibitProfile:
    """Profile an already-captured ``(tracer, run)`` pair."""
    roots, _ = build_span_forest(tracer.events)
    windows = window_spans(roots)
    ledger = energy_ledger(run, windows)
    traced = traced_component_energies(roots)
    recon = reconcile(ledger, traced)
    report = PowerModel().report(run)
    return ExhibitProfile(
        exhibit=exhibit,
        scheme=run.scheme,
        duration_s=run.duration,
        total_energy_mj=report.total_energy_mj,
        average_power_mw=report.average_power_mw,
        ledger=ledger,
        reconciliation=recon,
        span_stats=span_time_stats(roots),
        windows=window_stats(roots),
        latency_quantiles=registry_latency_quantiles(),
        engine_counters=registry_engine_counters(),
    )


def profile_exhibit(
    exhibit: str, retain: str = "full"
) -> ExhibitProfile:
    """Capture one canonical exhibit and profile it end to end.

    ``retain="summary"`` profiles the streaming-aggregation path: the
    run keeps no per-segment timeline and the ledger folds from the
    online summary's buckets instead of the trace/timeline join."""
    from .golden import capture_trace

    tracer, run = capture_trace(exhibit, retain=retain)
    return profile_capture(exhibit, tracer, run)


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def render_profile(profile: ExhibitProfile) -> str:
    """The aligned-text report ``repro profile <exhibit>`` prints."""
    from ..analysis.report import format_table

    total = profile.ledger.total_mj or 1.0
    sections = [
        f"{profile.exhibit}: {profile.scheme} — "
        f"{profile.duration_s:.4f}s simulated, "
        f"{profile.total_energy_mj:.1f} mJ, "
        f"{profile.average_power_mw:.0f} mW average",
    ]

    ledger_rows = [
        (
            row.component,
            row.state,
            row.window_kind,
            f"{row.energy_mj:.3f}",
            f"{row.energy_mj / total * 100:.1f}%",
        )
        for row in profile.ledger.top_rows()
    ]
    sections.append(
        "Energy attribution (component x C-state x window kind):\n"
        + format_table(
            ("component", "state", "window", "mJ", "share"),
            ledger_rows,
        )
    )

    for title, rollup in (
        ("By component:", profile.ledger.by_component()),
        ("By C-state:", profile.ledger.by_state()),
        ("By window kind:", profile.ledger.by_window_kind()),
    ):
        rows = [
            (name, f"{energy:.3f}", f"{energy / total * 100:.1f}%")
            for name, energy in sorted(
                rollup.items(), key=lambda kv: -kv[1]
            )
            if energy > 0.0
        ]
        sections.append(
            title + "\n" + format_table(("key", "mJ", "share"), rows)
        )

    span_rows = [
        (
            stat.name,
            str(stat.count),
            f"{stat.total_s:.6f}",
            f"{stat.self_s:.6f}",
            str(stat.unclosed) if stat.unclosed else "",
        )
        for stat in sorted(
            profile.span_stats.values(), key=lambda s: -s.total_s
        )
    ]
    sections.append(
        "Span timings (simulated seconds, self excludes child spans):\n"
        + format_table(
            ("span", "count", "total s", "self s", "unclosed"),
            span_rows,
        )
    )

    if profile.windows.kinds():
        window_rows = []
        for kind in profile.windows.kinds():
            count, p50, p90, p99, worst = profile.windows.row(kind)
            window_rows.append(
                (kind, str(count), f"{p50 * 1e3:.3f}",
                 f"{p90 * 1e3:.3f}", f"{p99 * 1e3:.3f}",
                 f"{worst * 1e3:.3f}")
            )
        sections.append(
            "Window durations (ms):\n"
            + format_table(
                ("kind", "n", "p50", "p90", "p99", "max"), window_rows
            )
        )

    if profile.latency_quantiles:
        latency_rows = [
            (name,) + tuple(
                f"{quantiles[q] * 1e3:.3f}"
                for q in ("p50", "p90", "p99")
            )
            for name, quantiles in sorted(
                profile.latency_quantiles.items()
            )
        ]
        sections.append(
            "Wall-clock histograms (ms, process-wide):\n"
            + format_table(
                ("metric", "p50", "p90", "p99"), latency_rows
            )
        )

    if profile.engine_counters:
        engine_rows = [
            (name, f"{value:g}")
            for name, value in sorted(
                profile.engine_counters.items()
            )
        ]
        sections.append(
            "Window engine / plan cache (process-wide counters):\n"
            + format_table(("counter", "value"), engine_rows)
        )

    recon = profile.reconciliation
    sections.append(
        f"reconciliation: ledger {recon.ledger_total_mj:.3f} mJ vs "
        f"traced power report {recon.traced_total_mj:.3f} mJ "
        f"(total err {recon.total_rel_err * 100:.4f}%, worst component "
        f"err {recon.max_component_rel_err * 100:.4f}%) "
        f"[{'OK' if recon.ok else 'MISMATCH'}]"
    )
    return "\n\n".join(sections)
