"""The live telemetry plane: ``repro serve``.

Every other observability surface in this repo is post-mortem — trace,
profile, and ``repro metrics --prom`` all print after a batch run ends.
This module turns the streaming substrate into a long-lived *power
advisor* service:

* **Sessions** connect over a local TCP socket speaking
  newline-delimited JSON, open a (scheme, resolution, fps) stream, and
  push frames (explicit descriptors or analytic stream chunks).  Each
  session advances a :class:`~repro.pipeline.sim.StreamingSimulator`
  incrementally — exactly the scalar ``retain="summary"`` code path, so
  the final cumulative summary is byte-identical to the same stream
  simulated offline.  Live observation never perturbs the simulation.
* **Rolling metrics** — per-window digests are priced through the
  analytical power model and fed into
  :class:`~repro.obs.metrics.RollingGauge` series windowed over the
  last N *simulated* seconds: panel/DRAM/eDP/total mW, deep C-state
  residency, effective fps, collapse hit rate — one labelled series
  per session in the process registry.
* **An embedded HTTP endpoint** serves ``GET /metrics`` (live
  Prometheus text exposition, correct ``text/plain; version=0.0.4``
  content type), ``GET /healthz``, and ``GET /sessions``.
* **The heartbeat plane** — a :class:`HeartbeatWatcher` tails
  ``*.hb.jsonl`` files in the directory ``REPRO_HEARTBEAT_DIR`` pins,
  so a concurrent ``repro figures --jobs N`` or ``repro fleet run``
  publishes live shard-progress series to the same ``/metrics``
  endpoint.
* **A leveled JSONL event log** records the service's lifecycle
  (``session.open``/``session.close``, ``source.exhausted``,
  ``backpressure.stall``) with the tracer's append/flush/fsync write
  discipline and no wall-clock values — ordering is a sequence
  ordinal, timestamps are simulated.

The service core (:class:`PowerAdvisorService`) is synchronous and
socket-free; the asyncio TCP/HTTP servers are thin shells around it,
which is what keeps the whole plane unit-testable.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..errors import ConfigurationError, ReproError
from ..pipeline.sim import StreamingSimulator, StreamingWindow
from ..pipeline.timeline import TimelineSummary
from ..power.model import PowerModel
from ..video.source import (
    AnalyticContentModel,
    ContentClass,
    descriptor_from_payload,
)
from . import metrics as obs_metrics
from .dist import _append_jsonl, tail_complete_lines
from .export import prometheus_text
from .metrics import labelled

#: Event-log severity levels, least to most severe.
LOG_LEVELS = ("debug", "info", "warn", "error")

#: Default rolling-window width in simulated seconds.
DEFAULT_WINDOW_S = 10.0

#: Prometheus text exposition content type (format 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: The fan-out namespaces the heartbeat watcher expects to see (others
#: are surfaced too, under their own label).
KNOWN_NAMESPACES = ("task", "exhibits", "fleet")


# ---------------------------------------------------------------------------
# The structured event log
# ---------------------------------------------------------------------------


class EventLog:
    """A leveled, structured JSONL event log.

    Writes reuse the shard protocol's append/flush/fsync discipline
    (:func:`repro.obs.dist._append_jsonl`), so a concurrent reader
    using :func:`tail_complete_lines` never sees a torn record.  No
    wall-clock value enters an event: ordering is the ``seq`` ordinal
    and any timestamp fields callers attach are simulated seconds —
    the same determinism contract the tracer keeps.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        level: str = "info",
    ) -> None:
        if level not in LOG_LEVELS:
            raise ConfigurationError(
                f"unknown log level {level!r} (choose from {LOG_LEVELS})"
            )
        self.path = Path(path) if path is not None else None
        self.level = level
        self.seq = 0
        #: Recent records kept in memory (tests and /sessions debugging
        #: read these; bounded so the service never grows unboundedly).
        self.recent: list[dict[str, Any]] = []
        self._recent_cap = 256

    def _passes(self, level: str) -> bool:
        return LOG_LEVELS.index(level) >= LOG_LEVELS.index(self.level)

    def emit(
        self, event: str, level: str = "info", **fields: Any
    ) -> dict[str, Any] | None:
        """Record one event; returns the record (or ``None`` when the
        level filtered it out)."""
        if level not in LOG_LEVELS:
            raise ConfigurationError(f"unknown log level {level!r}")
        if not self._passes(level):
            return None
        record = {
            "seq": self.seq,
            "level": level,
            "event": event,
            **fields,
        }
        self.seq += 1
        self.recent.append(record)
        if len(self.recent) > self._recent_cap:
            del self.recent[: -self._recent_cap]
        if self.path is not None:
            try:
                _append_jsonl(
                    self.path, [json.dumps(record, sort_keys=True)]
                )
            except OSError:
                # The log is advisory; a full disk must not kill serve.
                pass
        return record


# ---------------------------------------------------------------------------
# Per-window pricing for the rolling series
# ---------------------------------------------------------------------------


class _DigestPricer:
    """Prices one-window digests into (panel, dram, edp, total) mJ.

    Pricing is a pure read of the digest — it never touches the
    simulator — and is memoized by digest *object*: collapse hits
    replay the memo entry's digest object, so a long repeat run prices
    once.  The digest reference is held alongside the cached price,
    keeping ``id()`` keys valid for the session's lifetime.
    """

    def __init__(self, model: PowerModel, panel: Any) -> None:
        self.model = model
        self.panel = panel
        self._cache: dict[int, tuple[TimelineSummary, tuple]] = {}

    def price(
        self, digest: TimelineSummary
    ) -> tuple[float, float, float, float]:
        cached = self._cache.get(id(digest))
        if cached is not None:
            return cached[1]  # type: ignore[return-value]
        panel_mj = dram_mj = edp_mj = total_mj = 0.0
        for cls_key, totals in digest.buckets.items():
            energies = self.model.class_component_energies(
                cls_key, totals, self.panel
            )
            panel_mj += energies["panel"]
            dram_mj += (
                energies["dram_background"] + energies["dram_traffic"]
            )
            edp_mj += energies["edp"]
            total_mj += sum(energies.values())
        price = (panel_mj, dram_mj, edp_mj, total_mj)
        self._cache[id(digest)] = (digest, price)
        return price


def _deep_fraction(digest: TimelineSummary) -> float:
    """Fraction of the digest's time below package C0 (deep states)."""
    total = 0.0
    deep = 0.0
    for cls_key, totals in digest.buckets.items():
        total += totals.seconds
        if cls_key.state.name != "C0":
            deep += totals.seconds
    return deep / total if total > 0 else 0.0


# ---------------------------------------------------------------------------
# Sessions
# ---------------------------------------------------------------------------


@dataclass
class Session:
    """One connected stream being simulated and observed live."""

    sid: str
    scheme_label: str
    resolution_label: str
    fps: float
    sim: StreamingSimulator
    pricer: _DigestPricer
    window_s: float = DEFAULT_WINDOW_S
    frames_pushed: int = 0
    ended: bool = False
    closed: bool = False

    #: Labelled rolling gauges, created on first window.
    _gauges: dict[str, obs_metrics.RollingGauge] = field(
        default_factory=dict, repr=False
    )

    def _gauge(self, name: str, help_text: str) -> obs_metrics.RollingGauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = obs_metrics.registry().rolling_gauge(
                labelled(name, {"sid": self.sid}),
                help_text,
                window_s=self.window_s,
            )
            self._gauges[name] = gauge
        return gauge

    def observe_windows(self, windows: list[StreamingWindow]) -> None:
        """Fold freshly advanced windows into the rolling series."""
        for window in windows:
            duration = window.plan.duration
            if duration <= 0:
                continue
            t = window.plan.start
            panel_mj, dram_mj, edp_mj, total_mj = self.pricer.price(
                window.digest
            )
            # mJ over one window / window seconds = mW.
            self._gauge(
                "serve.win.panel_mw",
                "rolling panel power over the session window (mW)",
            ).observe(t, panel_mj / duration)
            self._gauge(
                "serve.win.dram_mw",
                "rolling DRAM power over the session window (mW)",
            ).observe(t, dram_mj / duration)
            self._gauge(
                "serve.win.edp_mw",
                "rolling eDP link power over the session window (mW)",
            ).observe(t, edp_mj / duration)
            self._gauge(
                "serve.win.total_mw",
                "rolling total platform power over the session "
                "window (mW)",
            ).observe(t, total_mj / duration)
            self._gauge(
                "serve.win.deep_residency",
                "rolling fraction of time below package C0",
            ).observe(t, _deep_fraction(window.digest))
            self._gauge(
                "serve.win.fps",
                "rolling effective frames per second",
            ).observe(
                t,
                (1.0 / duration) if window.effective_new_frame else 0.0,
            )
            self._gauge(
                "serve.win.collapse_hit",
                "rolling repeat-window collapse hit rate",
            ).observe(t, 1.0 if window.collapsed else 0.0)

    def rolling_values(self) -> dict[str, float]:
        return {
            name.rsplit(".", 1)[-1]: gauge.value
            for name, gauge in sorted(self._gauges.items())
        }

    def status(self) -> dict[str, Any]:
        """The per-session JSON ``GET /sessions`` serves."""
        return {
            "session": self.sid,
            "scheme": self.scheme_label,
            "resolution": self.resolution_label,
            "fps": self.fps,
            "frames": self.frames_pushed,
            "windows": self.sim.windows_simulated,
            "simulated_s": self.sim.summary.duration,
            "ended": self.ended,
            "finished": self.sim.finished,
            "stalled": self.sim.stalled,
            "rolling": self.rolling_values(),
        }

    def retire_metrics(self) -> int:
        """Drop this session's labelled series from the registry."""
        registry = obs_metrics.registry()
        removed = 0
        for name in list(self._gauges):
            removed += int(
                registry.remove(labelled(name, {"sid": self.sid}))
            )
        self._gauges.clear()
        return removed


# ---------------------------------------------------------------------------
# The heartbeat watcher: fan-out progress on the same /metrics plane
# ---------------------------------------------------------------------------


class HeartbeatWatcher:
    """Tails ``*.hb.jsonl`` shard-protocol heartbeat files in one
    directory and publishes live progress series.

    Any fan-out running with ``REPRO_HEARTBEAT_DIR`` pointed at the
    watched directory (``repro figures --jobs N``, ``repro fleet run``)
    lands here: ``start``/``done`` records become
    ``serve.progress.started`` / ``serve.progress.done`` counters and a
    ``serve.progress.active`` gauge, labelled by fan-out namespace
    (``exhibits`` for figures, ``fleet`` for fleet shards).  Torn
    trailing lines from mid-write workers are left for the next poll
    (:func:`tail_complete_lines`).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self._offsets: dict[Path, int] = {}

    def poll(self) -> int:
        """Ingest new heartbeat records; returns how many."""
        handled = 0
        if not self.directory.is_dir():
            return 0
        registry = obs_metrics.registry()
        for path in sorted(self.directory.glob("*.hb.jsonl")):
            records, offset = tail_complete_lines(
                path, self._offsets.get(path, 0)
            )
            self._offsets[path] = offset
            for record in records:
                event = record.get("event")
                if event not in ("start", "done"):
                    continue
                ns = str(record.get("ns", "task"))
                handled += 1
                if event == "start":
                    registry.counter(
                        labelled("serve.progress.started", {"ns": ns}),
                        "fan-out tasks started, by namespace",
                    ).inc()
                    registry.gauge(
                        labelled("serve.progress.active", {"ns": ns}),
                        "fan-out tasks currently running, by namespace",
                    ).inc()
                else:
                    registry.counter(
                        labelled("serve.progress.done", {"ns": ns}),
                        "fan-out tasks completed, by namespace",
                    ).inc()
                    registry.gauge(
                        labelled("serve.progress.active", {"ns": ns}),
                        "fan-out tasks currently running, by namespace",
                    ).dec()
        return handled


# ---------------------------------------------------------------------------
# The service core (synchronous, socket-free)
# ---------------------------------------------------------------------------


def _stats_payload(stats: Any) -> dict[str, Any]:
    return dataclasses.asdict(stats)


class PowerAdvisorService:
    """Session bookkeeping and op dispatch for the serve plane.

    One instance per server process.  Every wire op is a JSON object
    with an ``"op"`` key; :meth:`handle` returns the JSON-safe response
    object (``{"ok": true, ...}`` or ``{"ok": false, "error": ...}``).
    """

    def __init__(
        self,
        events: EventLog | None = None,
        heartbeat_watcher: HeartbeatWatcher | None = None,
        window_s: float = DEFAULT_WINDOW_S,
    ) -> None:
        self.events = events if events is not None else EventLog()
        self.heartbeats = heartbeat_watcher
        self.window_s = window_s
        self.sessions: dict[str, Session] = {}
        self._session_counter = 0
        self.shutting_down = False

    # -- op dispatch --------------------------------------------------------

    def handle(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one wire op; errors come back as ``ok: false``."""
        if not isinstance(payload, dict):
            return {"ok": False, "error": "request must be an object"}
        op = payload.get("op")
        handlers: dict[str, Callable[[dict[str, Any]], dict[str, Any]]] = {
            "ping": self._op_ping,
            "open": self._op_open,
            "frames": self._op_frames,
            "stream": self._op_stream,
            "end": self._op_end,
            "report": self._op_report,
            "close": self._op_close,
            "shutdown": self._op_shutdown,
        }
        handler = handlers.get(op)  # type: ignore[arg-type]
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(payload)
        except ReproError as error:
            return {"ok": False, "error": str(error)}

    # -- individual ops -----------------------------------------------------

    def _op_ping(self, payload: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, "pong": True, "sessions": len(self.sessions)}

    def _op_open(self, payload: dict[str, Any]) -> dict[str, Any]:
        # Imported lazily: cli imports serve for cmd_serve, so serve
        # importing cli at module level would be a cycle.
        from ..cli._helpers import _RESOLUTIONS, _SCHEMES, _config_for

        scheme_label = str(payload.get("scheme", "burstlink"))
        if scheme_label not in _SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {scheme_label!r} "
                f"(choose from {sorted(_SCHEMES)})"
            )
        resolution_label = str(payload.get("resolution", "FHD"))
        if resolution_label not in _RESOLUTIONS:
            raise ConfigurationError(
                f"unknown resolution {resolution_label!r} "
                f"(choose from {sorted(_RESOLUTIONS)})"
            )
        fps = float(payload.get("fps", 30.0))
        if fps <= 0:
            raise ConfigurationError("fps must be > 0")
        sid = str(payload.get("session", "")) or self._mint_sid()
        if sid in self.sessions:
            raise ConfigurationError(f"session {sid!r} already open")
        factory, needs_drfb = _SCHEMES[scheme_label]
        config = _config_for(
            _RESOLUTIONS[resolution_label], needs_drfb
        )
        max_windows = payload.get("max_windows")
        sim = StreamingSimulator(
            config,
            factory(),
            fps,
            max_windows=(
                int(max_windows) if max_windows is not None else None
            ),
        )
        window_s = float(payload.get("window_s", self.window_s))
        session = Session(
            sid=sid,
            scheme_label=scheme_label,
            resolution_label=resolution_label,
            fps=fps,
            sim=sim,
            pricer=_DigestPricer(PowerModel(), config.panel),
            window_s=window_s,
        )
        self.sessions[sid] = session
        self.events.emit(
            "session.open",
            session=sid,
            scheme=scheme_label,
            resolution=resolution_label,
            fps=fps,
        )
        return {"ok": True, "session": sid}

    def _op_frames(self, payload: dict[str, Any]) -> dict[str, Any]:
        session = self._session(payload)
        frames = payload.get("frames")
        if not isinstance(frames, list) or not frames:
            raise ConfigurationError(
                "frames op needs a non-empty frames list"
            )
        windows: list[StreamingWindow] = []
        for frame_payload in frames:
            windows.extend(
                session.sim.push(descriptor_from_payload(frame_payload))
            )
        session.frames_pushed += len(frames)
        return self._advanced(session, windows)

    def _op_stream(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Push a chunk of analytically generated frames.

        ``seed``/``start`` let a session extend its stream in chunks
        while staying byte-identical to one offline generation: the
        model re-generates ``start + count`` frames and pushes the last
        ``count`` (one RNG draw per frame in index order, so a re-walk
        is exact).
        """
        session = self._session(payload)
        from ..cli._helpers import _RESOLUTIONS

        count = int(payload.get("count", 0))
        if count <= 0:
            raise ConfigurationError("stream op needs count > 0")
        start = int(payload.get("start", session.frames_pushed))
        content_label = str(payload.get("content", "natural")).upper()
        try:
            content = ContentClass[content_label]
        except KeyError:
            raise ConfigurationError(
                f"unknown content class {content_label!r}"
            ) from None
        model = AnalyticContentModel(
            content=content,
            variability=float(payload.get("variability", 0.18)),
        )
        resolution = _RESOLUTIONS[session.resolution_label]
        seed = int(payload.get("seed", 0))
        windows: list[StreamingWindow] = []
        pushed = 0
        for frame in model.iter_frames(
            resolution, start + count, seed=seed
        ):
            if frame.index < start:
                continue
            windows.extend(session.sim.push(frame))
            pushed += 1
        session.frames_pushed += pushed
        return self._advanced(session, windows, pushed=pushed)

    def _op_end(self, payload: dict[str, Any]) -> dict[str, Any]:
        session = self._session(payload)
        if session.ended:
            raise ConfigurationError(
                f"session {session.sid!r} already ended"
            )
        windows = session.sim.end()
        session.ended = True
        self.events.emit(
            "source.exhausted",
            session=session.sid,
            frames=session.frames_pushed,
            t=session.sim.summary.end,
        )
        return self._advanced(session, windows)

    def _op_report(self, payload: dict[str, Any]) -> dict[str, Any]:
        session = self._session(payload)
        return {"ok": True, **session.status()}

    def _op_close(self, payload: dict[str, Any]) -> dict[str, Any]:
        session = self._session(payload)
        if not session.ended:
            session.sim.end()
            session.ended = True
        run = session.sim.result()
        artifact = {
            "summary": run.summary.to_payload(),
            "stats": _stats_payload(run.stats),
            "scheme": session.scheme_label,
            "resolution": session.resolution_label,
            "fps": session.fps,
        }
        self.events.emit(
            "session.close",
            session=session.sid,
            windows=run.stats.windows,
            frames=session.frames_pushed,
            t=run.summary.end,
        )
        if payload.get("retire"):
            session.retire_metrics()
        session.closed = True
        del self.sessions[session.sid]
        return {"ok": True, "session": session.sid, "final": artifact}

    def _op_shutdown(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.shutting_down = True
        return {"ok": True, "shutting_down": True}

    # -- shared helpers -----------------------------------------------------

    def _mint_sid(self) -> str:
        self._session_counter += 1
        return f"s{self._session_counter}"

    def _session(self, payload: dict[str, Any]) -> Session:
        sid = str(payload.get("session", ""))
        session = self.sessions.get(sid)
        if session is None:
            raise ConfigurationError(f"no open session {sid!r}")
        return session

    def _advanced(
        self,
        session: Session,
        windows: list[StreamingWindow],
        **extra: Any,
    ) -> dict[str, Any]:
        session.observe_windows(windows)
        if not windows and session.sim.stalled:
            self.events.emit(
                "backpressure.stall",
                level="debug",
                session=session.sid,
                frames=session.frames_pushed,
                windows=session.sim.windows_simulated,
            )
        return {
            "ok": True,
            "session": session.sid,
            "advanced": len(windows),
            "windows": session.sim.windows_simulated,
            "stalled": session.sim.stalled,
            "finished": session.sim.finished,
            **extra,
        }

    # -- the read-only HTTP surface ----------------------------------------

    def poll_heartbeats(self) -> int:
        if self.heartbeats is None:
            return 0
        return self.heartbeats.poll()

    def healthz(self) -> dict[str, Any]:
        return {
            "ok": True,
            "sessions": len(self.sessions),
            "events": self.events.seq,
        }

    def sessions_payload(self) -> dict[str, Any]:
        return {
            "sessions": [
                self.sessions[sid].status()
                for sid in sorted(self.sessions)
            ]
        }

    def metrics_text(self) -> str:
        self.poll_heartbeats()
        return prometheus_text(obs_metrics.registry())


# ---------------------------------------------------------------------------
# The asyncio shells: NDJSON session server + HTTP scrape endpoint
# ---------------------------------------------------------------------------


async def _handle_session_conn(
    service: PowerAdvisorService,
    stop: asyncio.Event,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            text = line.strip()
            if not text:
                continue
            try:
                payload = json.loads(text.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                response: dict[str, Any] = {
                    "ok": False,
                    "error": "request is not valid JSON",
                }
            else:
                response = service.handle(payload)
            writer.write(
                (json.dumps(response, sort_keys=True) + "\n").encode(
                    "utf-8"
                )
            )
            await writer.drain()
            if service.shutting_down:
                stop.set()
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _http_response(
    status: str, content_type: str, body: bytes
) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("utf-8") + body


async def _handle_http_conn(
    service: PowerAdvisorService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        request_line = await reader.readline()
        # Drain headers; the endpoints are all GET with no body.
        while True:
            header = await reader.readline()
            if not header or header in (b"\r\n", b"\n"):
                break
        parts = request_line.decode("latin-1").split()
        method = parts[0] if parts else ""
        target = parts[1] if len(parts) > 1 else "/"
        path = target.split("?", 1)[0]
        if method != "GET":
            payload = _http_response(
                "405 Method Not Allowed",
                "application/json",
                b'{"ok": false, "error": "GET only"}',
            )
        elif path == "/metrics":
            payload = _http_response(
                "200 OK",
                PROMETHEUS_CONTENT_TYPE,
                service.metrics_text().encode("utf-8"),
            )
        elif path == "/healthz":
            payload = _http_response(
                "200 OK",
                "application/json",
                json.dumps(
                    service.healthz(), sort_keys=True
                ).encode("utf-8"),
            )
        elif path == "/sessions":
            payload = _http_response(
                "200 OK",
                "application/json",
                json.dumps(
                    service.sessions_payload(), sort_keys=True
                ).encode("utf-8"),
            )
        else:
            payload = _http_response(
                "404 Not Found",
                "application/json",
                b'{"ok": false, "error": "unknown endpoint"}',
            )
        writer.write(payload)
        await writer.drain()
    except (ConnectionError, OSError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_async(
    service: PowerAdvisorService,
    host: str = "127.0.0.1",
    port: int = 7070,
    http_port: int = 7071,
    ready: Callable[[dict[str, Any]], None] | None = None,
    poll_interval: float = 0.2,
) -> None:
    """Run the session and HTTP servers until a ``shutdown`` op.

    ``port``/``http_port`` of 0 bind ephemeral ports; ``ready`` (when
    given) receives ``{"port": ..., "http_port": ...}`` once both
    listeners are up — tests and the CI smoke use it to rendezvous.
    """
    stop = asyncio.Event()

    async def session_conn(reader, writer):
        await _handle_session_conn(service, stop, reader, writer)

    async def http_conn(reader, writer):
        await _handle_http_conn(service, reader, writer)

    session_server = await asyncio.start_server(
        session_conn, host=host, port=port
    )
    http_server = await asyncio.start_server(
        http_conn, host=host, port=http_port
    )
    bound = {
        "port": session_server.sockets[0].getsockname()[1],
        "http_port": http_server.sockets[0].getsockname()[1],
    }
    if ready is not None:
        ready(bound)
    service.events.emit("serve.start", **bound)
    try:
        while not stop.is_set():
            service.poll_heartbeats()
            try:
                await asyncio.wait_for(
                    stop.wait(), timeout=poll_interval
                )
            except asyncio.TimeoutError:
                continue
    finally:
        # One last sweep so final done-heartbeats land before exit.
        service.poll_heartbeats()
        service.events.emit("serve.stop", sessions=len(service.sessions))
        session_server.close()
        http_server.close()
        await session_server.wait_closed()
        await http_server.wait_closed()


def run_server(
    host: str = "127.0.0.1",
    port: int = 7070,
    http_port: int = 7071,
    events_path: str | Path | None = None,
    heartbeat_dir: str | Path | None = None,
    window_s: float = DEFAULT_WINDOW_S,
    log_level: str = "info",
    ready: Callable[[dict[str, Any]], None] | None = None,
) -> PowerAdvisorService:
    """Blocking entry point (what ``repro serve`` calls).

    Returns the service after shutdown, so callers can inspect final
    state (tests assert on the event log).
    """
    watcher = (
        HeartbeatWatcher(heartbeat_dir)
        if heartbeat_dir is not None
        else None
    )
    service = PowerAdvisorService(
        events=EventLog(events_path, level=log_level),
        heartbeat_watcher=watcher,
        window_s=window_s,
    )
    asyncio.run(
        serve_async(
            service,
            host=host,
            port=port,
            http_port=http_port,
            ready=ready,
        )
    )
    return service


# ---------------------------------------------------------------------------
# A minimal synchronous client (tests, CI smoke, scripting)
# ---------------------------------------------------------------------------


class SessionClient:
    """Blocking NDJSON client for the session socket."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        import socket

        self._sock = socket.create_connection(
            (host, port), timeout=timeout
        )
        self._file = self._sock.makefile("rwb")

    def call(self, **payload: Any) -> dict[str, Any]:
        """Send one op and wait for its response line."""
        self._file.write(
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConfigurationError(
                "serve connection closed mid-call"
            )
        return json.loads(line.decode("utf-8"))

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "SessionClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "DEFAULT_WINDOW_S",
    "EventLog",
    "HeartbeatWatcher",
    "LOG_LEVELS",
    "PROMETHEUS_CONTENT_TYPE",
    "PowerAdvisorService",
    "Session",
    "SessionClient",
    "run_server",
    "serve_async",
]
