"""The process-wide metrics registry: counters, gauges, histograms.

Where the tracer (:mod:`repro.obs.trace`) records *what happened in
order*, the registry accumulates *how much, in total*: windows planned,
cache hits, frames coded, report energies.  Metrics are always on —
each update is an attribute increment on a long-lived object, far below
the noise floor of any simulated run — and are reported on demand via
:func:`metrics_table` (aligned text) or :meth:`MetricsRegistry.to_json`.

Instrument-once, read-anywhere: library code calls
``metrics.registry().counter("sim.windows").inc(n)``; the CLI's
``repro trace --metrics`` and tests read the same registry back.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError

#: Default histogram bucket upper bounds (values land in the first
#: bucket whose bound is >= the observation; beyond the last is +Inf).
DEFAULT_BUCKETS = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)

#: Bucket bounds for wall-clock latency histograms (seconds): cache
#: load/store round trips sit in the µs-to-ms range, exhibit
#: regenerations in the ms-to-seconds range.
LATENCY_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def linear_buckets(
    start: float, width: float, count: int
) -> tuple[float, ...]:
    """``count`` evenly spaced bucket upper bounds from ``start``.

    Population distributions (fleet power draw, battery hours) want
    uniform resolution across a known physical range rather than the
    decade spacing of :data:`DEFAULT_BUCKETS`; uniform bounds also give
    :meth:`Histogram.quantile` a constant worst-case error of one
    bucket width.  Bounds are computed as ``start + i * width`` (not a
    running sum) so the same arguments always produce bit-identical
    edges.
    """
    if count < 1:
        raise ConfigurationError(
            f"linear_buckets needs count >= 1, got {count}"
        )
    if width <= 0:
        raise ConfigurationError(
            f"linear_buckets needs width > 0, got {width}"
        )
    return tuple(start + index * width for index in range(count))


def labelled(name: str, labels: dict[str, str]) -> str:
    """The registry key for ``name`` carrying a Prometheus label set.

    The registry itself is label-agnostic — a labelled series is just a
    metric whose *key* renders the label set inline, pre-escaped per
    the exposition format (backslash, double quote, newline).  The
    exporter splits the key on the first ``{`` to group every labelled
    key of one family under a single ``# HELP`` / ``# TYPE`` header.
    Keys sort labels by name so one label set always produces one key.
    """
    if not labels:
        return name
    rendered = ",".join(
        '{}="{}"'.format(
            key,
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"),
        )
        for key, value in sorted(labels.items())
    )
    return f"{name}{{{rendered}}}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    help: str = ""
    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease"
            )
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"type": "counter", "value": self.value}

    def merge_snapshot(self, state: dict) -> None:
        """Fold another process's snapshot in (counts sum)."""
        self.inc(float(state["value"]))

    def render(self) -> str:
        return f"{self.value:g}"


@dataclass
class Gauge:
    """A value that goes up and down (last write wins)."""

    name: str
    help: str = ""
    value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, object]:
        return {"type": "gauge", "value": self.value}

    def merge_snapshot(self, state: dict) -> None:
        """Fold another process's snapshot in (contributions sum —
        worker gauges are treated as additive shares of one total)."""
        self.value += float(state["value"])

    def render(self) -> str:
        return f"{self.value:g}"


@dataclass
class RollingGauge:
    """A gauge windowed over the last ``window_s`` *simulated* seconds.

    Each :meth:`observe` carries its own timestamp (the serve plane
    feeds simulated window starts, never wall clock), and samples older
    than ``window_s`` behind the newest are evicted on every update —
    memory is bounded by the sample rate times the window, independent
    of how long the session runs.  ``value`` is the mean of the
    surviving samples, which is the right reading for rates expressed
    per second (rolling mW, residency fractions, effective fps).
    """

    name: str
    help: str = ""
    window_s: float = 10.0
    samples: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ConfigurationError(
                f"rolling gauge {self.name!r} needs window_s > 0"
            )

    def observe(self, t: float, value: float) -> None:
        """Record ``value`` at simulated time ``t`` and evict samples
        that have fallen out of the window.

        Out-of-order timestamps are tolerated (a merged snapshot can
        interleave two streams): eviction always keys on the newest
        timestamp seen so far.
        """
        self.samples.append((t, value))
        self._evict()

    def _evict(self) -> None:
        if not self.samples:
            return
        horizon = max(t for t, _ in self.samples) - self.window_s
        while self.samples and self.samples[0][0] <= horizon:
            self.samples.popleft()

    @property
    def value(self) -> float:
        """Mean of the in-window samples (0 when empty)."""
        if not self.samples:
            return 0.0
        return sum(v for _, v in self.samples) / len(self.samples)

    @property
    def latest(self) -> float:
        """The newest sample's value (0 when empty)."""
        return self.samples[-1][1] if self.samples else 0.0

    def __len__(self) -> int:
        return len(self.samples)

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "rolling",
            "window_s": self.window_s,
            "value": self.value,
            "samples": [[t, v] for t, v in self.samples],
        }

    def merge_snapshot(self, state: dict) -> None:
        """Fold another process's snapshot in: sample streams
        interleave by timestamp, then the shared window re-evicts."""
        if float(state.get("window_s", self.window_s)) != self.window_s:
            raise ConfigurationError(
                f"rolling gauge {self.name!r} window differs: "
                f"{self.window_s} vs {state.get('window_s')}"
            )
        merged = sorted(
            [(float(t), float(v)) for t, v in self.samples]
            + [(float(t), float(v)) for t, v in state.get("samples", [])]
        )
        self.samples = deque(merged)
        self._evict()

    def render(self) -> str:
        if not self.samples:
            return "n=0"
        return f"n={len(self.samples)} mean={self.value:g}"


@dataclass
class Histogram:
    """Bucketed observations with count/sum/min/max."""

    name: str
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float | None = None
    maximum: float | None = None

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ConfigurationError(
                f"histogram {self.name!r} buckets must be sorted"
            )
        if not self.bucket_counts:
            # One slot per bound plus the +Inf overflow slot.
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.minimum = (
            value if self.minimum is None else min(self.minimum, value)
        )
        self.maximum = (
            value if self.maximum is None else max(self.maximum, value)
        )
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    def observe_many(self, value: float, count: int) -> None:
        """Record ``count`` identical observations in O(1).

        The batch window engine lands thousands of equal window
        durations per run; folding them in one update keeps metrics
        overhead independent of window count.  The sum accumulates as
        ``value * count`` (float re-association versus repeated
        :meth:`observe`, far below reporting precision).
        """
        if count < 0:
            raise ConfigurationError(
                f"histogram {self.name!r} observation count < 0"
            )
        if count == 0:
            return
        self.count += count
        self.total += value * count
        self.minimum = (
            value if self.minimum is None else min(self.minimum, value)
        )
        self.maximum = (
            value if self.maximum is None else max(self.maximum, value)
        )
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += count
                return
        self.bucket_counts[-1] += count

    @property
    def mean(self) -> float:
        """Average observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), linearly interpolated inside the
        bucket the target rank lands in.

        Bucket edges bound the estimate; the observed ``min``/``max``
        tighten the first and last occupied buckets (and the +Inf
        overflow bucket, which has no upper edge).  Returns 0.0 for an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile {q} outside [0, 1]"
            )
        if self.count == 0:
            return 0.0
        assert self.minimum is not None and self.maximum is not None
        rank = q * self.count
        seen = 0
        for index, occupancy in enumerate(self.bucket_counts):
            if occupancy == 0:
                continue
            if seen + occupancy < rank:
                seen += occupancy
                continue
            lower = (
                self.buckets[index - 1]
                if index > 0 else self.minimum
            )
            upper = (
                self.buckets[index]
                if index < len(self.buckets) else self.maximum
            )
            lower = max(lower, self.minimum)
            upper = min(upper, self.maximum)
            if upper <= lower:
                return lower
            frac = (rank - seen) / occupancy
            return lower + (upper - lower) * min(max(frac, 0.0), 1.0)
        return self.maximum

    def snapshot(self) -> dict[str, object]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "bounds": list(self.buckets),
            "bucket_counts": list(self.bucket_counts),
            "buckets": {
                (f"le_{bound:g}" if index < len(self.buckets)
                 else "le_inf"): count
                for index, (bound, count) in enumerate(
                    zip(self.buckets + (float("inf"),),
                        self.bucket_counts)
                )
            },
        }

    def merge_snapshot(self, state: dict) -> None:
        """Fold another process's snapshot in: bucket occupancies add
        element-wise, count/sum add, min/max widen.  The two histograms
        must share bucket bounds — merging incompatible layouts would
        silently misfile observations."""
        bounds = tuple(state.get("bounds", ()))
        if bounds != self.buckets:
            raise ConfigurationError(
                f"histogram {self.name!r} bucket bounds differ: "
                f"{self.buckets} vs {bounds}"
            )
        incoming = state.get("bucket_counts", [])
        if len(incoming) != len(self.bucket_counts):
            raise ConfigurationError(
                f"histogram {self.name!r} has {len(self.bucket_counts)}"
                f" buckets, snapshot has {len(incoming)}"
            )
        self.bucket_counts = [
            mine + int(theirs)
            for mine, theirs in zip(self.bucket_counts, incoming)
        ]
        self.count += int(state["count"])
        self.total += float(state["sum"])
        for bound_key, fold in (("min", min), ("max", max)):
            theirs = state.get(bound_key)
            if theirs is None:
                continue
            mine = getattr(
                self, "minimum" if bound_key == "min" else "maximum"
            )
            merged = (
                float(theirs) if mine is None
                else fold(mine, float(theirs))
            )
            setattr(
                self,
                "minimum" if bound_key == "min" else "maximum",
                merged,
            )

    def render(self) -> str:
        if not self.count:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:g} "
            f"min={self.minimum:g} max={self.maximum:g}"
        )


Metric = Counter | Gauge | RollingGauge | Histogram


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def _get_or_create(
        self, name: str, factory, kind: type, help: str
    ) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter called ``name``, created on first use."""
        return self._get_or_create(
            name, lambda: Counter(name, help), Counter, help
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge called ``name``, created on first use."""
        return self._get_or_create(
            name, lambda: Gauge(name, help), Gauge, help
        )

    def rolling_gauge(
        self, name: str, help: str = "", window_s: float = 10.0
    ) -> RollingGauge:
        """The rolling gauge called ``name``, created on first use."""
        return self._get_or_create(
            name,
            lambda: RollingGauge(name, help, window_s=window_s),
            RollingGauge,
            help,
        )

    def remove(self, name: str) -> bool:
        """Drop one metric (a closed serve session retires its
        labelled series).  Returns whether it existed."""
        return self._metrics.pop(name, None) is not None

    def remove_prefix(self, prefix: str) -> int:
        """Drop every metric whose key starts with ``prefix``; returns
        how many were removed."""
        doomed = [
            name for name in self._metrics if name.startswith(prefix)
        ]
        for name in doomed:
            del self._metrics[name]
        return len(doomed)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """The histogram called ``name``, created on first use."""
        return self._get_or_create(
            name,
            lambda: Histogram(name, help, buckets=buckets),
            Histogram,
            help,
        )

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Metric:
        """The metric called ``name`` (must exist)."""
        try:
            return self._metrics[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {name!r}"
            ) from None

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Every metric's state, keyed by name (sorted)."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }

    # -- cross-process merging ----------------------------------------------

    def merge_snapshot(
        self, snapshot: dict[str, dict[str, object]]
    ) -> int:
        """Fold a :meth:`snapshot` (possibly JSON-round-tripped from
        another process) into this registry.

        Counters and gauges sum; histograms add bucket-wise (same
        bounds required).  Metrics absent here are created, so merging
        into an empty registry reconstructs the snapshot exactly.
        Merging is commutative and associative — the worker shard
        merge in :mod:`repro.obs.dist` relies on both.  Returns the
        number of metrics merged.
        """
        for name in sorted(snapshot):
            state = snapshot[name]
            kind = state.get("type")
            if kind == "counter":
                self.counter(name).merge_snapshot(state)
            elif kind == "gauge":
                self.gauge(name).merge_snapshot(state)
            elif kind == "rolling":
                window = float(state.get("window_s", 10.0))
                self.rolling_gauge(
                    name, window_s=window
                ).merge_snapshot(state)
            elif kind == "histogram":
                bounds = tuple(state.get("bounds", DEFAULT_BUCKETS))
                self.histogram(
                    name, buckets=bounds
                ).merge_snapshot(state)
            else:
                raise ConfigurationError(
                    f"metric {name!r} has unknown type {kind!r}"
                )
        return len(snapshot)

    def merge(self, other: "MetricsRegistry") -> int:
        """Fold another registry in (see :meth:`merge_snapshot`)."""
        return self.merge_snapshot(other.snapshot())

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def table(self) -> str:
        """An aligned ``metrics_table()``-style text report."""
        from ..analysis.report import format_table

        rows = [
            (
                name,
                type(self._metrics[name]).__name__.lower(),
                self._metrics[name].render(),
            )
            for name in sorted(self._metrics)
        ]
        return format_table(("metric", "type", "value"), rows)

    def reset(self) -> None:
        """Drop every metric (tests isolate through this)."""
        self._metrics.clear()


#: The process-wide registry every instrumentation site writes to.
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def metrics_table() -> str:
    """The process-wide registry as an aligned text report."""
    return _registry.table()
