"""The event tracer: spans and counters over *simulated* time.

A :class:`Tracer` records a flat, strictly ordered stream of events —
span starts/ends, point events, counter bumps — each stamped with an
ordinal sequence number and, where the emitting site has one, a
*simulated* timestamp.  Wall-clock never enters an event, so a trace of
a deterministic run is itself deterministic: regenerating it produces
byte-identical JSONL, which is what lets traces serve as golden
regression artifacts (see ``tests/golden/``).

Tracing is opt-in and off by default.  Instrumentation sites follow the
pattern::

    tracer = trace.active()
    ...
    if tracer is not None:
        span = tracer.begin_span("sim.window", t=plan.start, index=3)

so the disabled cost is one module-global read and a ``None`` check —
tier-1 runtime is unaffected.

Profiling hooks:

* ``REPRO_TRACE=out.jsonl`` in the environment installs a process-wide
  tracer at import and writes the trace on interpreter exit;
* ``repro trace <exhibit>`` renders a per-window span tree from a
  canonical run (see :mod:`repro.obs.golden`);
* ``repro figures --trace out.jsonl`` traces a figure regeneration.
"""

from __future__ import annotations

import enum
import json
from contextlib import contextmanager
from typing import Any, Iterator

from ..errors import ConfigurationError

#: Event kinds, in the order they may appear for one span.
SPAN_START = "B"
SPAN_END = "E"
EVENT = "I"
COUNTER = "C"


def _sanitize(value: Any) -> Any:
    """``value`` reduced to a deterministic, JSON-safe form."""
    if isinstance(value, bool) or value is None or isinstance(
        value, (int, str, float)
    ):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _sanitize(item) for key, item in value.items()}
    return str(value)


class Tracer:
    """Collects one run's trace events in memory."""

    __slots__ = ("events", "_seq", "_stack")

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._seq = 0
        self._stack: list[int] = []

    # -- emission -----------------------------------------------------------

    def _emit(
        self,
        kind: str,
        name: str,
        t: float | None,
        attrs: dict[str, Any],
        span: int | None = None,
    ) -> int:
        seq = self._seq
        self._seq += 1
        event: dict[str, Any] = {"seq": seq, "kind": kind, "name": name}
        if span is not None:
            event["span"] = span
        if self._stack:
            event["parent"] = self._stack[-1]
        if t is not None:
            event["t"] = float(t)
        if attrs:
            event["attrs"] = {
                key: _sanitize(value) for key, value in attrs.items()
            }
        self.events.append(event)
        return seq

    def begin_span(
        self, name: str, t: float | None = None, **attrs: Any
    ) -> int:
        """Open a span; returns its id (the start event's sequence
        number), to be passed to :meth:`end_span`."""
        span_id = self._emit(SPAN_START, name, t, attrs)
        self._stack.append(span_id)
        return span_id

    def end_span(
        self, span_id: int, t: float | None = None, **attrs: Any
    ) -> None:
        """Close the innermost open span (which must be ``span_id`` —
        spans are strictly nested)."""
        if not self._stack or self._stack[-1] != span_id:
            raise ConfigurationError(
                f"span {span_id} is not the innermost open span"
            )
        self._stack.pop()
        self._emit(SPAN_END, "", t, attrs, span=span_id)

    @contextmanager
    def span(
        self, name: str, t: float | None = None, **attrs: Any
    ) -> Iterator[int]:
        """Context-manager form of :meth:`begin_span`/:meth:`end_span`."""
        span_id = self.begin_span(name, t=t, **attrs)
        try:
            yield span_id
        finally:
            self.end_span(span_id)

    def event(
        self, name: str, t: float | None = None, **attrs: Any
    ) -> None:
        """A point event inside the currently open span (if any)."""
        self._emit(EVENT, name, t, attrs)

    def counter(self, name: str, value: float = 1, **attrs: Any) -> None:
        """A counter bump (``value`` is the delta, not the total)."""
        attrs["value"] = value
        self._emit(COUNTER, name, None, attrs)

    # -- inspection ---------------------------------------------------------

    @property
    def open_spans(self) -> int:
        """Number of spans begun but not yet ended."""
        return len(self._stack)

    @property
    def next_seq(self) -> int:
        """The sequence number the next emitted event will get — the
        base :func:`repro.obs.dist.absorb_trace` renumbers worker
        shards against."""
        return self._seq

    @property
    def innermost_open_span(self) -> int | None:
        """The id of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def ingest(self, events: list[dict[str, Any]]) -> None:
        """Append pre-renumbered events (a merged worker shard).

        Every event's ``seq`` must continue this tracer's own
        numbering — the shard merger renumbers against
        :attr:`next_seq` before calling this, so the combined stream
        stays one strictly ordered sequence.
        """
        for event in events:
            if event.get("seq") != self._seq:
                raise ConfigurationError(
                    f"ingested event seq {event.get('seq')!r} does not "
                    f"continue the stream at {self._seq}"
                )
            self.events.append(event)
            self._seq += 1

    def to_jsonl(self) -> str:
        """The trace as JSON Lines (one event per line, keys sorted —
        the canonical byte-stable golden format)."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            + "\n"
            for event in self.events
        )

    def write(self, path: str) -> None:
        """Write the JSONL trace to ``path`` atomically.

        The payload lands in a temp file (same directory, so the rename
        stays on one filesystem), is fsynced, then published with
        ``os.replace`` — a reader (or a golden-trace diff) never sees a
        half-written trace, and a crash mid-write leaves the previous
        file intact.
        """
        import os
        import tempfile

        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w",
            dir=directory,
            prefix=f".{os.path.basename(path)}-",
            suffix=".tmp",
            delete=False,
            encoding="utf-8",
        )
        tmp_name = handle.name
        try:
            with handle:
                handle.write(self.to_jsonl())
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            tmp_name = None
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass


# ---------------------------------------------------------------------------
# The process-wide tracer slot
# ---------------------------------------------------------------------------

_active: Tracer | None = None


def active() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is off (the
    default — instrumentation sites must treat ``None`` as a no-op)."""
    return _active


def enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _active is not None


def install(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` process-wide; returns the previous one (pass
    ``None`` to disable tracing)."""
    global _active
    previous = _active
    _active = tracer
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Run a block with ``tracer`` (or a fresh one) installed."""
    installed = tracer if tracer is not None else Tracer()
    previous = install(installed)
    try:
        yield installed
    finally:
        install(previous)


# ---------------------------------------------------------------------------
# Span-tree rendering (the `repro trace` output)
# ---------------------------------------------------------------------------


def _format_attrs(attrs: dict[str, Any]) -> str:
    parts = []
    for key, value in attrs.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        elif isinstance(value, dict):
            continue  # nested payloads don't fit a tree line
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def render_span_tree(tracer: Tracer, events_inline: bool = True) -> str:
    """The trace as an indented span tree, one line per event.

    Spans show ``name [t0 -> t1]`` with their start and end attributes;
    point events and counters render inline at their nesting depth when
    ``events_inline`` is set.
    """
    lines: list[str] = []
    ends: dict[int, dict[str, Any]] = {
        event["span"]: event
        for event in tracer.events
        if event["kind"] == SPAN_END
    }
    depth = 0
    for event in tracer.events:
        kind = event["kind"]
        if kind == SPAN_END:
            depth = max(0, depth - 1)
            continue
        indent = "  " * depth
        attrs = _format_attrs(event.get("attrs", {}))
        if kind == SPAN_START:
            end = ends.get(event["seq"], {})
            t0, t1 = event.get("t"), end.get("t")
            window = (
                f" [{t0:.6f}s -> {t1:.6f}s]"
                if t0 is not None and t1 is not None
                else ""
            )
            closing = _format_attrs(end.get("attrs", {}))
            tail = " | ".join(part for part in (attrs, closing) if part)
            lines.append(
                f"{indent}{event['name']}{window}"
                + (f"  {tail}" if tail else "")
            )
            depth += 1
        elif events_inline and kind == EVENT:
            stamp = (
                f" @{event['t']:.6f}s" if event.get("t") is not None
                else ""
            )
            lines.append(
                f"{indent}. {event['name']}{stamp}"
                + (f"  {attrs}" if attrs else "")
            )
        elif events_inline and kind == COUNTER:
            lines.append(f"{indent}+ {event['name']}  {attrs}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The REPRO_TRACE environment hook
# ---------------------------------------------------------------------------

_env_hook_registered = False


def install_env_tracer() -> Tracer | None:
    """If ``REPRO_TRACE`` names a file, install a process-wide tracer
    that writes there at interpreter exit (idempotent)."""
    global _env_hook_registered
    import atexit
    import os

    path = os.environ.get("REPRO_TRACE")
    if not path or _env_hook_registered:
        return active()
    tracer = Tracer()
    install(tracer)
    _env_hook_registered = True

    @atexit.register
    def _flush() -> None:  # pragma: no cover - interpreter teardown
        # Interpreter teardown can fail in ways beyond plain I/O errors
        # (modules partially unloaded, cwd gone); a best-effort flush
        # must never turn a clean exit into a traceback.  The write
        # itself is atomic, so a failed flush cannot corrupt an
        # existing trace either.
        try:
            tracer.write(path)
        except Exception:
            pass

    return tracer
