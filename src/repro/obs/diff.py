"""Structural diffing of traces and profiles — "what changed?".

``repro obs diff <a> <b>`` answers the question the drift gate only
scores: *which* spans appeared, vanished, or shifted between two runs,
and how the counters moved.  Inputs are either JSONL traces (from
``repro trace --jsonl``, ``repro figures --trace``, or ``REPRO_TRACE``)
or profile JSON files (from ``repro profile --json``); the artifact
kind is sniffed from the payload, and both sides must be the same kind.

Traces are :func:`repro.obs.dist.normalize_events`-normalized first, so
a merged ``--jobs N`` trace diffs clean against the sequential trace of
the same work — the parallel-trace CI smoke pins exactly that.  The
diff is *structural*: span/event multisets by name, counter totals by
name, and per-name simulated-duration sums (shift-checked against a
relative tolerance, since simulated time is deterministic).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from .dist import normalize_events
from .trace import COUNTER, EVENT, SPAN_END, SPAN_START

#: Default relative tolerance for duration / numeric shifts.
DEFAULT_TOLERANCE = 1e-9


# ---------------------------------------------------------------------------
# Artifact loading
# ---------------------------------------------------------------------------


def load_artifact(path: str | Path) -> tuple[str, Any]:
    """Load ``path`` as ``("trace", events)``, ``("profile", dict)``,
    ``("fleet", dict)``, or ``("summary", dict)``.

    A JSONL trace parses line-by-line into event dictionaries; a single
    JSON object with a ``ledger`` key is a ``repro profile --json``
    payload; one with a ``fleet`` key is a ``repro fleet`` report; one
    with a ``summary`` key is a serve-session run summary (the shape
    ``repro serve`` reports on session close).
    """
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        raise ConfigurationError(f"{path} is empty")
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict):
        if "ledger" in payload:
            return "profile", payload
        if "fleet" in payload:
            return "fleet", payload
        if "summary" in payload:
            return "summary", payload
        raise ConfigurationError(
            f"{path} is JSON but not a trace, profile, fleet, or "
            "summary report"
        )
    events = []
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError:
            raise ConfigurationError(
                f"{path}:{number} is not valid JSON"
            ) from None
        if not isinstance(event, dict) or "kind" not in event:
            raise ConfigurationError(
                f"{path}:{number} is not a trace event"
            )
        events.append(event)
    return "trace", events


# ---------------------------------------------------------------------------
# Trace diffing
# ---------------------------------------------------------------------------


@dataclass
class NameDelta:
    """One name's presence on each side."""

    name: str
    count_a: int
    count_b: int

    @property
    def changed(self) -> bool:
        return self.count_a != self.count_b


@dataclass
class DurationShift:
    """A span name whose total simulated duration moved."""

    name: str
    total_a: float
    total_b: float

    @property
    def delta(self) -> float:
        return self.total_b - self.total_a


@dataclass
class CounterDelta:
    """A counter whose summed bumps differ."""

    name: str
    total_a: float
    total_b: float

    @property
    def delta(self) -> float:
        return self.total_b - self.total_a


@dataclass
class TraceDiff:
    """The structural difference between two traces."""

    events_a: int
    events_b: int
    spans: list[NameDelta] = field(default_factory=list)
    events: list[NameDelta] = field(default_factory=list)
    counters: list[CounterDelta] = field(default_factory=list)
    duration_shifts: list[DurationShift] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def structural_changes(self) -> int:
        """Multiset / counter mismatches (duration shifts excluded)."""
        return (
            sum(1 for d in self.spans if d.changed)
            + sum(1 for d in self.events if d.changed)
            + len(self.counters)
        )

    @property
    def ok(self) -> bool:
        """No structural drift and no duration shift past tolerance."""
        return not self.structural_changes and not self.duration_shifts

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "trace",
            "ok": self.ok,
            "events": {"a": self.events_a, "b": self.events_b},
            "spans": {
                d.name: {"a": d.count_a, "b": d.count_b}
                for d in self.spans
                if d.changed
            },
            "point_events": {
                d.name: {"a": d.count_a, "b": d.count_b}
                for d in self.events
                if d.changed
            },
            "counters": {
                d.name: {
                    "a": d.total_a,
                    "b": d.total_b,
                    "delta": d.delta,
                }
                for d in self.counters
            },
            "duration_shifts": {
                d.name: {
                    "a_s": d.total_a,
                    "b_s": d.total_b,
                    "delta_s": d.delta,
                }
                for d in self.duration_shifts
            },
        }

    def summary(self) -> str:
        lines = [
            f"trace diff: {self.events_a} events vs {self.events_b} "
            "events (normalized)"
        ]
        changed_spans = [d for d in self.spans if d.changed]
        changed_events = [d for d in self.events if d.changed]
        for label, deltas in (
            ("span", changed_spans),
            ("event", changed_events),
        ):
            for d in deltas:
                if d.count_a == 0:
                    lines.append(
                        f"  + {label} {d.name}: added x{d.count_b}"
                    )
                elif d.count_b == 0:
                    lines.append(
                        f"  - {label} {d.name}: removed x{d.count_a}"
                    )
                else:
                    lines.append(
                        f"  ~ {label} {d.name}: {d.count_a} -> "
                        f"{d.count_b}"
                    )
        for d in self.counters:
            lines.append(
                f"  ~ counter {d.name}: {d.total_a:g} -> "
                f"{d.total_b:g} ({d.delta:+g})"
            )
        for d in self.duration_shifts:
            lines.append(
                f"  ~ duration {d.name}: {d.total_a:.6g}s -> "
                f"{d.total_b:.6g}s ({d.delta:+.3g}s)"
            )
        if self.ok:
            lines.append("  no structural drift")
        else:
            lines.append(
                f"  {self.structural_changes} structural change(s), "
                f"{len(self.duration_shifts)} duration shift(s)"
            )
        return "\n".join(lines)


def _trace_tallies(
    events: list[dict[str, Any]],
) -> tuple[
    dict[str, int], dict[str, int], dict[str, float], dict[str, float]
]:
    """Per-name span counts, event counts, counter sums, and summed
    span durations for one normalized stream."""
    span_counts: dict[str, int] = {}
    event_counts: dict[str, int] = {}
    counter_sums: dict[str, float] = {}
    durations: dict[str, float] = {}
    starts: dict[int, dict[str, Any]] = {}
    for event in events:
        kind = event["kind"]
        if kind == SPAN_START:
            name = event["name"]
            span_counts[name] = span_counts.get(name, 0) + 1
            starts[event["seq"]] = event
        elif kind == SPAN_END:
            begin = starts.get(event.get("span"))
            if begin is None:
                continue
            t0, t1 = begin.get("t"), event.get("t")
            if t0 is not None and t1 is not None:
                name = begin["name"]
                durations[name] = (
                    durations.get(name, 0.0) + float(t1) - float(t0)
                )
        elif kind == EVENT:
            name = event["name"]
            event_counts[name] = event_counts.get(name, 0) + 1
        elif kind == COUNTER:
            name = event["name"]
            value = float(event.get("attrs", {}).get("value", 1))
            counter_sums[name] = counter_sums.get(name, 0.0) + value
    return span_counts, event_counts, counter_sums, durations


def _shifted(a: float, b: float, tolerance: float) -> bool:
    scale = max(abs(a), abs(b), 1e-12)
    return abs(a - b) > tolerance * scale


def diff_traces(
    a: list[dict[str, Any]],
    b: list[dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> TraceDiff:
    """Structurally compare two event streams (normalized first)."""
    a = normalize_events(a)
    b = normalize_events(b)
    spans_a, events_a, counters_a, durations_a = _trace_tallies(a)
    spans_b, events_b, counters_b, durations_b = _trace_tallies(b)
    diff = TraceDiff(
        events_a=len(a), events_b=len(b), tolerance=tolerance
    )
    for name in sorted(set(spans_a) | set(spans_b)):
        diff.spans.append(
            NameDelta(
                name, spans_a.get(name, 0), spans_b.get(name, 0)
            )
        )
    for name in sorted(set(events_a) | set(events_b)):
        diff.events.append(
            NameDelta(
                name, events_a.get(name, 0), events_b.get(name, 0)
            )
        )
    for name in sorted(set(counters_a) | set(counters_b)):
        total_a = counters_a.get(name, 0.0)
        total_b = counters_b.get(name, 0.0)
        if _shifted(total_a, total_b, tolerance):
            diff.counters.append(
                CounterDelta(name, total_a, total_b)
            )
    for name in sorted(set(durations_a) | set(durations_b)):
        total_a = durations_a.get(name, 0.0)
        total_b = durations_b.get(name, 0.0)
        if _shifted(total_a, total_b, tolerance):
            diff.duration_shifts.append(
                DurationShift(name, total_a, total_b)
            )
    return diff


# ---------------------------------------------------------------------------
# Profile diffing
# ---------------------------------------------------------------------------


@dataclass
class ValueDelta:
    """One numeric leaf that differs between two profiles."""

    path: str
    value_a: float | None
    value_b: float | None

    @property
    def delta(self) -> float | None:
        if self.value_a is None or self.value_b is None:
            return None
        return self.value_b - self.value_a


@dataclass
class ProfileDiff:
    """Numeric-leaf differences between two profile payloads."""

    deltas: list[ValueDelta] = field(default_factory=list)
    tolerance: float = DEFAULT_TOLERANCE

    @property
    def ok(self) -> bool:
        return not self.deltas

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "profile",
            "ok": self.ok,
            "deltas": {
                d.path: {
                    "a": d.value_a,
                    "b": d.value_b,
                    "delta": d.delta,
                }
                for d in self.deltas
            },
        }

    def summary(self) -> str:
        lines = ["profile diff:"]
        for d in self.deltas:
            if d.value_a is None:
                lines.append(f"  + {d.path}: added ({d.value_b:g})")
            elif d.value_b is None:
                lines.append(f"  - {d.path}: removed ({d.value_a:g})")
            else:
                lines.append(
                    f"  ~ {d.path}: {d.value_a:g} -> {d.value_b:g} "
                    f"({d.delta:+g})"
                )
        if self.ok:
            lines.append("  no drift")
        else:
            lines.append(f"  {len(self.deltas)} value(s) moved")
        return "\n".join(lines)


def _numeric_leaves(
    payload: Any, prefix: str = ""
) -> dict[str, float]:
    leaves: dict[str, float] = {}
    if isinstance(payload, bool):
        return {prefix: float(payload)} if prefix else {}
    if isinstance(payload, (int, float)):
        return {prefix: float(payload)} if prefix else {}
    if isinstance(payload, dict):
        for key in payload:
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(payload[key], path))
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            leaves.update(
                _numeric_leaves(item, f"{prefix}[{index}]")
            )
    return leaves


def diff_profiles(
    a: dict[str, Any],
    b: dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> ProfileDiff:
    """Compare two ``repro profile --json`` payloads leaf-by-leaf."""
    leaves_a = _numeric_leaves(a)
    leaves_b = _numeric_leaves(b)
    diff = ProfileDiff(tolerance=tolerance)
    for path in sorted(set(leaves_a) | set(leaves_b)):
        value_a = leaves_a.get(path)
        value_b = leaves_b.get(path)
        if value_a is None or value_b is None:
            diff.deltas.append(ValueDelta(path, value_a, value_b))
        elif _shifted(value_a, value_b, tolerance):
            diff.deltas.append(ValueDelta(path, value_a, value_b))
    return diff


# ---------------------------------------------------------------------------
# The CLI entry
# ---------------------------------------------------------------------------


def diff_artifacts(
    path_a: str | Path,
    path_b: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> TraceDiff | ProfileDiff:
    """Diff two files of the same artifact kind (trace, profile,
    fleet report, or serve-session summary).  Non-trace kinds compare
    numeric-leaf-wise like profiles — a resumed fleet run diffs clean
    against an uninterrupted one, and a live-served session diffs
    clean against its offline reference."""
    kind_a, payload_a = load_artifact(path_a)
    kind_b, payload_b = load_artifact(path_b)
    if kind_a != kind_b:
        raise ConfigurationError(
            f"cannot diff a {kind_a} against a {kind_b}"
        )
    if kind_a == "trace":
        return diff_traces(payload_a, payload_b, tolerance=tolerance)
    return diff_profiles(payload_a, payload_b, tolerance=tolerance)
