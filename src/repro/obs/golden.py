"""Canonical traced runs — the golden-trace exhibits.

Each exhibit here is a small, fully deterministic simulator run traced
end-to-end (window planning, per-segment C-state occupancy, power-model
accounting).  The JSONL these produce is byte-stable across processes
and platforms: simulated timestamps only, ordinal sequence numbers, no
wall-clock, memoization disabled for the duration of the capture.

``repro trace <exhibit>`` renders these as span trees;
``tests/obs/test_golden_traces.py`` pins their JSONL bytes under
``tests/golden/`` as regression artifacts.
"""

from __future__ import annotations

from typing import Callable

from ..config import FHD, skylake_tablet
from ..errors import ConfigurationError
from ..pipeline.sim import (
    FrameWindowSimulator,
    RunResult,
    install_run_memo,
    set_default_retain,
)
from ..power.model import PowerModel
from ..video.source import AnalyticContentModel
from .trace import Tracer, tracing

#: Frames per canonical run — enough windows to show the steady-state
#: oscillation while keeping golden files reviewably small.
GOLDEN_FRAMES = 4
#: Content seed shared by the planar exhibits.
GOLDEN_SEED = 7


def _planar_run(scheme_factory, with_drfb: bool) -> RunResult:
    config = skylake_tablet(FHD)
    if with_drfb:
        config = config.with_drfb()
    frames = AnalyticContentModel().frames(
        FHD, GOLDEN_FRAMES, seed=GOLDEN_SEED
    )
    return FrameWindowSimulator(config, scheme_factory()).run(frames, 30.0)


def _conventional_run() -> RunResult:
    from ..pipeline import ConventionalScheme

    return _planar_run(ConventionalScheme, with_drfb=False)


def _burstlink_run() -> RunResult:
    from ..core import BurstLinkScheme

    return _planar_run(BurstLinkScheme, with_drfb=True)


def _vr_run() -> RunResult:
    from ..core import BurstLinkScheme
    from ..workloads.vr import VR_WORKLOADS, vr_streaming_run

    return vr_streaming_run(
        VR_WORKLOADS["Elephant"],
        BurstLinkScheme(),
        frame_count=GOLDEN_FRAMES,
        with_drfb=True,
    )


#: Exhibit name -> canonical run builder.
GOLDEN_EXHIBITS: dict[str, Callable[[], RunResult]] = {
    "conventional": _conventional_run,
    "burstlink": _burstlink_run,
    "vr": _vr_run,
}


def capture_trace(
    exhibit: str, retain: str = "full"
) -> tuple[Tracer, RunResult]:
    """Trace one canonical exhibit: simulate it and evaluate the power
    model with a fresh tracer installed and memoization disabled, so
    the captured event stream is complete and reproducible.

    Full timeline retention is pinned for the capture by default: the
    golden JSONL bytes must not depend on whatever retain default the
    surrounding process happens to run with.  Pass
    ``retain="summary"`` to capture the streaming-aggregation path
    instead (``repro profile --retain summary``)."""
    if exhibit not in GOLDEN_EXHIBITS:
        raise ConfigurationError(
            f"unknown trace exhibit {exhibit!r}; "
            f"known: {', '.join(GOLDEN_EXHIBITS)}"
        )
    previous_memo = install_run_memo(None)
    previous_retain = set_default_retain(retain)
    try:
        with tracing() as tracer:
            run = GOLDEN_EXHIBITS[exhibit]()
            PowerModel().report(run)
    finally:
        install_run_memo(previous_memo)
        set_default_retain(previous_retain)
    return tracer, run


def golden_trace_jsonl(exhibit: str) -> str:
    """The canonical JSONL trace for ``exhibit`` (the golden bytes)."""
    tracer, _ = capture_trace(exhibit)
    return tracer.to_jsonl()
